#!/usr/bin/env bash
# Tier-1 verification, exactly as the driver runs it. The workspace is
# hermetic (path-only dependencies), so every step runs --offline: a
# reappearing registry dependency fails here instead of at first use on an
# air-gapped machine.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --all-targets --offline -- -D warnings

# Every example must run end to end (quick payloads, release build).
for example in quickstart covert_channel noisy_channel prime_probe_failure \
               reverse_engineer wide_channel faulty_channel; do
  echo "== example: ${example}"
  cargo run --release --offline --example "${example}" >/dev/null
done

# The invariant registry: exhaustive model-checking-lite tier at the full
# budget, then the fixed-seed property tier. Any counterexample prints a
# one-line replay recipe and exits 1, failing CI here. Both tiers run on
# the event-driven scheduler core (the MachineConfig default); the
# cycle-stepped baseline is held bit-identical to it by the differential
# tier (tests/engine_equivalence.rs, part of the workspace tests above).
echo "== spec: exhaustive tier"
cargo run --release --offline -p mee-spec -- --tier exhaustive --budget full
echo "== spec: property tier"
cargo run --release --offline -p mee-spec -- --tier property

# Smoke-run the parallel seed-sweep bench (2 sessions via MEE_BENCH_SAMPLES
# has no effect here; scale 1 = 4 sessions, 64 bits each) and hold the
# BENCH_sweep.json aggregate to its schema: a missing key means a consumer
# diffing the trajectory across commits silently loses that series.
echo "== bench-sweep smoke"
cargo run --release --offline -p mee-bench --bin bench-sweep -- 2019 1 --threads 2 >/dev/null
for key in name root_seed sessions threads bits_per_session ber_mean ber_p95 \
           kbps_p50 kbps_p95 probe_p50_cycles probe_p95_cycles host_ns_p50 \
           host_ns_p90 host_ns_p95 host_ns_p99; do
  grep -q "\"${key}\":" BENCH_sweep.json ||
    { echo "BENCH_sweep.json schema drift: missing key '${key}'" >&2; exit 1; }
done

# Smoke-run the resilience bench (2 sessions, off/light/heavy fault plans
# with the full raw/robust/ARQ phase stack) and hold BENCH_resilience.json
# to its schema the same way.
echo "== bench-resilience smoke"
cargo run --release --offline -p mee-bench --bin bench-resilience -- 2019 1 --threads 2 >/dev/null
for key in name root_seed sessions threads bits_per_session raw_ber_off \
           raw_ber_light raw_ber_heavy degradation_x residual_worst \
           retransmissions_heavy window_escalations_heavy goodput_heavy_kbps; do
  grep -q "\"${key}\":" BENCH_resilience.json ||
    { echo "BENCH_resilience.json schema drift: missing key '${key}'" >&2; exit 1; }
done

# The crash-safe campaign smoke: run a reference campaign, kill a second
# one mid-flight with deterministic crash injection (exit 3), resume it at
# a different thread count, and require the resumed artifact to be
# byte-identical to the uninterrupted reference — the kill/resume
# determinism contract, enforced with cmp on every CI run. Then hold
# BENCH_campaign.json to its schema like the other artifacts.
echo "== bench-campaign kill/resume smoke"
CAMPAIGN_TMP=$(mktemp -d)
trap 'rm -rf "${CAMPAIGN_TMP}"' EXIT
cargo run --release --offline -p mee-bench --bin bench-campaign -- 2019 1 --threads 2 \
  --dir "${CAMPAIGN_TMP}/ref" --out BENCH_campaign.json >/dev/null
if cargo run --release --offline -p mee-bench --bin bench-campaign -- 2019 1 --threads 2 \
  --dir "${CAMPAIGN_TMP}/kill" --abort-after 2 \
  --out "${CAMPAIGN_TMP}/aborted.json" >/dev/null 2>&1; then
  echo "bench-campaign: injected abort did not fail the process" >&2; exit 1
else
  status=$?
  [ "${status}" -eq 3 ] ||
    { echo "bench-campaign: expected exit 3 on injected abort, got ${status}" >&2; exit 1; }
fi
cargo run --release --offline -p mee-bench --bin bench-campaign -- 2019 1 --threads 4 \
  --dir "${CAMPAIGN_TMP}/kill" --resume --out "${CAMPAIGN_TMP}/resumed.json" >/dev/null
cmp BENCH_campaign.json "${CAMPAIGN_TMP}/resumed.json" ||
  { echo "bench-campaign: resumed artifact differs from uninterrupted reference" >&2; exit 1; }
for key in name root_seed sessions_planned shards sessions_aggregated \
           quarantined_shards missing_sessions series count mean var min max \
           p10 p50 p90 p95; do
  grep -q "\"${key}\":" BENCH_campaign.json ||
    { echo "BENCH_campaign.json schema drift: missing key '${key}'" >&2; exit 1; }
done

# Smoke-run the traced-session exporter (seed 2019, light fault plan) and
# hold BENCH_trace.json to its schema. The binary itself exits non-zero if
# the four event categories are not all present or if the traced metrics
# do not reconcile exactly with the engine's end-of-run statistics, so
# this also gates the observability invariants.
echo "== bench-trace smoke"
cargo run --release --offline -p mee-bench --bin bench-trace -- 2019 1 >/dev/null
for key in traceEvents displayTimeUnit meta meeMetrics hostProfile; do
  grep -q "\"${key}\":" BENCH_trace.json ||
    { echo "BENCH_trace.json schema drift: missing key '${key}'" >&2; exit 1; }
done
# Smoke-run the establishment microbench (4 samples at scale 1) and hold
# BENCH_establish.json to its schema. The binary replays every sample with
# the translation memo disabled and exits non-zero if any discovered
# eviction set, final clock, or MEE statistic diverges, so this also gates
# the memo's bit-identity contract on every CI run.
echo "== bench-establish smoke"
cargo run --release --offline -p mee-bench --bin bench-establish -- 2019 1 >/dev/null
for key in name root_seed samples candidates reps host_ns_p50 host_ns_p90 \
           host_ns_p99 memo_divergences; do
  grep -q "\"${key}\":" BENCH_establish.json ||
    { echo "BENCH_establish.json schema drift: missing key '${key}'" >&2; exit 1; }
done
echo "ci.sh: all checks passed"

#!/usr/bin/env bash
# Tier-1 verification, exactly as the driver runs it. The workspace is
# hermetic (path-only dependencies), so every step runs --offline: a
# reappearing registry dependency fails here instead of at first use on an
# air-gapped machine.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --all-targets --offline -- -D warnings

//! Criterion benchmarks at the attack level: channel establishment and
//! transmission, one per *figure-generating* code path, so regressions in
//! the expensive experiment drivers are caught early.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mee_attack::channel::{random_bits, ChannelConfig, Session};
use mee_attack::recon::capacity::eviction_trial;
use mee_attack::recon::eviction::find_eviction_set;
use mee_attack::setup::AttackSetup;
use mee_attack::threshold::LatencyClassifier;
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    c.bench_function("recon/algorithm1_find_eviction_set", |b| {
        b.iter_batched(
            || AttackSetup::quiet(11).unwrap(),
            |mut setup| {
                let cls = LatencyClassifier::from_timing(&setup.machine.config().timing);
                let candidates = setup.trojan.candidates(96, 0);
                let mut cpu = setup.trojan_handle();
                black_box(find_eviction_set(&mut cpu, &candidates, &cls, 1).unwrap())
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_capacity_trial(c: &mut Criterion) {
    c.bench_function("recon/capacity_trial_k64", |b| {
        b.iter_batched(
            || AttackSetup::quiet(12).unwrap(),
            |mut setup| {
                let cls = LatencyClassifier::from_timing(&setup.machine.config().timing);
                black_box(eviction_trial(&mut setup, 64, 0, &cls).unwrap())
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_establish(c: &mut Criterion) {
    c.bench_function("channel/establish", |b| {
        b.iter_batched(
            || AttackSetup::quiet(13).unwrap(),
            |mut setup| {
                black_box(Session::establish(&mut setup, &ChannelConfig::default()).unwrap())
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_transmit(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel");
    let bits = 128usize;
    group.throughput(Throughput::Elements(bits as u64));
    group.bench_function("transmit_128_bits", |b| {
        b.iter_batched(
            || {
                let mut setup = AttackSetup::quiet(14).unwrap();
                let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
                (setup, session)
            },
            |(mut setup, session)| {
                let payload = random_bits(bits, 14);
                black_box(session.transmit(&mut setup, &payload).unwrap())
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithm1, bench_capacity_trial, bench_establish, bench_transmit
}
criterion_main!(benches);

//! Criterion micro-benchmarks for the simulator substrate: how fast the
//! model itself runs (simulated cycles are free; host time is not).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mee_cache::policy::{TreePlru, TrueLru};
use mee_cache::{CacheConfig, SetAssocCache};
use mee_engine::Mee;
use mee_machine::{CoreId, Machine, MachineConfig};
use mee_mem::{AddressSpaceKind, DramConfig, DramModel, PhysLayout};
use mee_tree::TreeGeometry;
use mee_types::{LineAddr, TimingConfig, VirtAddr, PAGE_SIZE};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));

    let cfg = CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap();
    for (name, policy) in [
        ("access_plru", Box::new(TreePlru::new()) as Box<dyn mee_cache::ReplacementPolicy>),
        ("access_lru", Box::new(TrueLru::new())),
    ] {
        let mut cache = SetAssocCache::new(cfg, policy);
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = i.wrapping_add(97);
                black_box(cache.access(LineAddr::new(i % 4096)))
            })
        });
    }
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut dram = DramModel::new(DramConfig::default()).unwrap();
    let mut i = 0u64;
    c.bench_function("dram/access", |b| {
        b.iter(|| {
            i = i.wrapping_add(513);
            black_box(dram.access(LineAddr::new(i % (1 << 20))))
        })
    });
}

fn bench_mee_walk(c: &mut Criterion) {
    let layout = PhysLayout::new(1 << 20, 16 << 20).unwrap();
    let geo = TreeGeometry::new(layout.prm_data(), layout.prm_tree()).unwrap();
    let mut dram = DramModel::new(DramConfig::default()).unwrap();
    let mut mee = Mee::new(
        geo,
        1,
        CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap(),
        Box::new(TreePlru::new()),
        TimingConfig::default(),
    );
    let base = layout.prm_data().base().line().raw();
    let lines = layout.prm_data().size() / 64;
    let mut i = 0u64;
    let mut clock = 0u64;
    c.bench_function("mee/protected_read_walk", |b| {
        b.iter(|| {
            i = i.wrapping_add(61);
            clock += 1_000_000;
            black_box(
                mee.read(
                    LineAddr::new(base + (i * 64) % lines),
                    mee_types::Cycles::new(clock),
                    &mut dram,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_machine_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.bench_function("enclave_read_flush_cycle", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(MachineConfig::small()).unwrap();
                let p = m.create_process(AddressSpaceKind::Enclave);
                let base = VirtAddr::new(0x10_0000);
                m.map_pages(p, base, 32).unwrap();
                (m, p, base)
            },
            |(mut m, p, base)| {
                let core = CoreId::new(0);
                for i in 0..32u64 {
                    let va = base + i * PAGE_SIZE as u64;
                    m.read(core, p, va).unwrap();
                    m.clflush(core, p, va).unwrap();
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("machine_construction_small", |b| {
        b.iter(|| black_box(Machine::new(MachineConfig::small()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_dram, bench_mee_walk, bench_machine_ops);
criterion_main!(benches);

//! Runs the eviction-strategy × replacement-policy ablation (§5.3's design
//! rationale).

use mee_attack::experiments::run_ablation;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_ablation(args.seed, 512 * args.scale) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Runs Algorithm 1 end-to-end and reports the reverse-engineered MEE-cache
//! associativity (§4.2: 8 ways).

use mee_attack::recon::eviction::find_eviction_set;
use mee_attack::setup::AttackSetup;
use mee_attack::threshold::LatencyClassifier;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let run = || -> Result<(), mee_types::ModelError> {
        let mut setup = AttackSetup::new(args.seed)?;
        let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);
        let candidates = setup.trojan.candidates(160, 0);
        let mut cpu = setup.trojan_handle();
        let result = find_eviction_set(&mut cpu, &candidates, &classifier, 3)?;
        println!("Algorithm 1 — eviction address set discovery (paper §4.2)");
        println!("candidate addresses : {}", candidates.len());
        println!("index address set   : {}", result.index_set_size);
        println!("eviction address set: {}", result.associativity());
        println!(
            "=> MEE cache associativity: {} ways (paper: 8)",
            result.associativity()
        );
        println!(
            "=> with the 64 KiB capacity of Figure 4: {} sets of 64 B lines",
            64 * 1024 / 64 / result.associativity().max(1)
        );
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("algo1 failed: {e}");
        std::process::exit(1);
    }
}

//! Runs every figure harness in sequence (EXPERIMENTS.md is generated from
//! this output).

use mee_attack::experiments::{
    fig7::PAPER_WINDOWS, run_ablation, run_fig4, run_fig5, run_fig6, run_fig7, run_fig8,
    run_headline, run_mitigation, run_stealth, run_timers, run_wide,
};
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let s = args.scale;
    let seed = args.seed;
    let run = || -> Result<(), mee_types::ModelError> {
        println!("=== seed {seed}, scale {s} ===\n");
        print!("{}\n\n", run_fig4(seed, 100 * s)?);
        print!("{}\n\n", run_fig5(seed, 64 * s, 2)?);
        print!("{}\n\n", run_fig6(seed, 16 * s)?);
        print!("{}\n\n", run_fig7(seed, 1024 * s, &PAPER_WINDOWS)?);
        print!("{}\n\n", run_fig8(seed, 128 * s)?);
        print!("{}\n\n", run_headline(seed, 4096 * s)?);
        print!("{}\n\n", run_timers(seed, 32 * s)?);
        print!("{}\n\n", run_ablation(seed, 512 * s)?);
        print!("{}\n\n", run_mitigation(seed, 512 * s, &[8, 6, 4, 2])?);
        print!("{}\n\n", run_stealth(seed, 512 * s)?);
        print!("{}\n\n", run_wide(seed, 512 * s, &[1, 2, 4, 8])?);
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("experiment run failed: {e}");
        std::process::exit(1);
    }
}

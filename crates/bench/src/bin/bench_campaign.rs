//! The crash-safe campaign benchmark: a sharded, checkpointed channel
//! campaign run through `mee-campaign`, reported as one deterministic
//! JSON artifact.
//!
//! ```text
//! cargo run --release -p mee-bench --bin bench-campaign -- \
//!     [seed] [scale] [--threads N] [--shards N] [--dir PATH] [--resume] \
//!     [--abort-after K] [--out PATH]
//! ```
//!
//! * `scale` multiplies the session count (16×) and shard count (8×);
//! * `--shards` / `MEE_CAMPAIGN_SHARDS` override the shard count;
//! * `--dir` / `MEE_CAMPAIGN_DIR` name the checkpoint directory (no
//!   directory ⇒ no checkpointing);
//! * `--resume` continues a killed campaign from its checkpoints —
//!   bit-identical to an uninterrupted run (ci.sh proves this with `cmp`);
//! * `--abort-after K` injects a crash after K durable checkpoints (exit
//!   status 3), which is how ci.sh kills the campaign deterministically.
//!
//! Exit status: 0 on a complete campaign, 1 when shards were quarantined
//! (the exact missing sessions are on stderr), 2 on usage errors, 3 on an
//! injected abort.

use mee_attack::channel::ChannelConfig;
use mee_attack::experiments::run_channel_campaign;
use mee_bench::campaign::CampaignReport;
use mee_bench::HarnessArgs;
use mee_campaign::{CampaignError, CampaignPlan};

/// The campaign-specific flags, peeled off before the shared
/// [`HarnessArgs`] grammar sees the rest.
struct CampaignArgs {
    shards: Option<usize>,
    dir: Option<std::path::PathBuf>,
    resume: bool,
    abort_after: Option<usize>,
    rest: Vec<String>,
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "{msg} (usage: [seed] [scale] [--threads N] [--shards N>=1] [--dir PATH] \
         [--resume] [--abort-after K>=1] [--out PATH])"
    );
    std::process::exit(2);
}

fn parse_campaign_args<I: IntoIterator<Item = String>>(args: I) -> CampaignArgs {
    let mut out = CampaignArgs {
        shards: None,
        dir: None,
        resume: false,
        abort_after: None,
        rest: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(s) = it.next() {
        match s.as_str() {
            "--shards" => {
                let v = it.next().unwrap_or_else(|| usage_exit("--shards needs a value"));
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => out.shards = Some(n),
                    _ => usage_exit(&format!("invalid --shards value {v:?}")),
                }
            }
            "--dir" => {
                let v = it.next().unwrap_or_else(|| usage_exit("--dir needs a path"));
                out.dir = Some(std::path::PathBuf::from(v));
            }
            "--resume" => out.resume = true,
            "--abort-after" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--abort-after needs a value"));
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => out.abort_after = Some(n),
                    _ => usage_exit(&format!("invalid --abort-after value {v:?}")),
                }
            }
            _ => out.rest.push(s),
        }
    }
    out
}

fn main() {
    let campaign_args = parse_campaign_args(std::env::args().skip(1));
    let args = match HarnessArgs::parse(campaign_args.rest.clone()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let sessions = 16 * args.scale;
    // Precedence mirrors the rest of the workspace: explicit flag beats
    // environment knob beats scale-derived default. Both knobs go through
    // the strict-parse grammar (a malformed value panics loudly there).
    let shards = campaign_args
        .shards
        .or_else(mee_campaign::shards_from_env)
        .unwrap_or(8 * args.scale);
    let dir = campaign_args.dir.clone().or_else(mee_campaign::dir_from_env);
    let bits = 16 * args.scale;

    let mut plan = CampaignPlan::new("channel/campaign", args.seed, sessions, shards)
        .resume(campaign_args.resume);
    plan.threads = args.threads;
    plan.dir = dir;
    plan.abort_after = campaign_args.abort_after;

    let cfg = ChannelConfig::sweep_setup();
    let outcome = match run_channel_campaign(plan, &cfg, bits) {
        Ok(outcome) => outcome,
        Err(CampaignError::Aborted { checkpointed }) => {
            eprintln!(
                "campaign aborted by injection after {checkpointed} checkpointed shard(s); \
                 rerun with --resume to continue"
            );
            std::process::exit(3);
        }
        Err(e @ (CampaignError::InvalidPlan(_) | CampaignError::Threads(_))) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let complete = outcome.is_complete();
    let report = CampaignReport {
        name: "channel/campaign".into(),
        root_seed: args.seed,
        sessions_planned: sessions,
        shards,
        outcome,
    };
    report.emit();
    let path = args.out_or("BENCH_campaign.json");
    if let Err(e) = report.write(&path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    if !complete {
        // Graceful degradation is still a failed invocation: the numbers
        // are published, the exact missing sessions are on stderr, and the
        // exit status says so.
        std::process::exit(1);
    }
}

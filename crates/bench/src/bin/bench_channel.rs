//! Micro-benchmarks at the attack level: channel establishment and
//! transmission, one per *figure-generating* code path, so regressions in
//! the expensive experiment drivers are caught early.
//!
//! One JSON line per benchmark on stdout; `--out <path>` mirrors the
//! lines to a file. Replaces the former criterion `channel` bench with
//! the in-tree harness so the suite builds offline.

use mee_attack::channel::{random_bits, ChannelConfig, Session};
use mee_attack::recon::capacity::eviction_trial;
use mee_attack::recon::eviction::find_eviction_set;
use mee_attack::setup::AttackSetup;
use mee_attack::threshold::LatencyClassifier;
use mee_bench::harness::Bench;
use mee_bench::output::JsonlWriter;
use mee_bench::HarnessArgs;
use mee_sweep::Sweep;

fn bench_algorithm1(w: &mut JsonlWriter) {
    let r = Bench::new("recon/algorithm1_find_eviction_set")
        .samples(10)
        .run_batched(
            || AttackSetup::quiet(11).unwrap(),
            |mut setup| {
                let cls = LatencyClassifier::from_timing(&setup.machine.config().timing);
                let candidates = setup.trojan.candidates(96, 0);
                let mut cpu = setup.trojan_handle();
                find_eviction_set(&mut cpu, &candidates, &cls, 1).unwrap()
            },
        );
    w.line_or_exit(&r.json_line());
}

fn bench_capacity_trial(w: &mut JsonlWriter) {
    let r = Bench::new("recon/capacity_trial_k64")
        .samples(10)
        .run_batched(
            || AttackSetup::quiet(12).unwrap(),
            |mut setup| {
                let cls = LatencyClassifier::from_timing(&setup.machine.config().timing);
                eviction_trial(&mut setup, 64, 0, &cls).unwrap()
            },
        );
    w.line_or_exit(&r.json_line());
}

fn bench_establish(w: &mut JsonlWriter) {
    let r = Bench::new("channel/establish")
        .samples(10)
        .run_batched(
            || AttackSetup::quiet(13).unwrap(),
            |mut setup| Session::establish(&mut setup, &ChannelConfig::default()).unwrap(),
        );
    w.line_or_exit(&r.json_line());
}

fn bench_transmit(w: &mut JsonlWriter) {
    let bits = 128usize;
    let r = Bench::new("channel/transmit_128_bits")
        .samples(10)
        .run_batched(
            || {
                let mut setup = AttackSetup::quiet(14).unwrap();
                let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
                (setup, session)
            },
            |(mut setup, session)| {
                let payload = random_bits(bits, 14);
                session.transmit(&mut setup, &payload).unwrap()
            },
        );
    w.line_or_exit(&r.json_line());
}

fn bench_establish_sweep(w: &mut JsonlWriter) {
    // Four full establishments dispatched through the parallel sweep
    // runner (thread count from MEE_SWEEP_THREADS or the host). Compare
    // against 4× `channel/establish` to read off the parallel speedup;
    // results are bit-identical to serial regardless.
    let runner = Sweep::new();
    let r = Bench::new(format!(
        "sweep/establish_x4_threads_{}",
        runner.thread_count()
    ))
    .samples(5)
    .run(|| {
        runner.seed_sweep(15, 4, |spec| {
            let mut setup = AttackSetup::quiet(spec.seed).unwrap();
            Session::establish(&mut setup, &ChannelConfig::sweep_setup()).unwrap();
            spec.index
        })
    });
    w.line_or_exit(&r.json_line());
}

fn main() {
    let args = HarnessArgs::from_env();
    let mut w = JsonlWriter::create_or_exit(args.out.as_deref());
    bench_algorithm1(&mut w);
    bench_capacity_trial(&mut w);
    bench_establish(&mut w);
    bench_transmit(&mut w);
    bench_establish_sweep(&mut w);
}

//! Micro-benchmarks at the attack level: channel establishment and
//! transmission, one per *figure-generating* code path, so regressions in
//! the expensive experiment drivers are caught early.
//!
//! One JSON line per benchmark on stdout. Replaces the former criterion
//! `channel` bench with the in-tree harness so the suite builds offline.

use mee_attack::channel::{random_bits, ChannelConfig, Session};
use mee_attack::recon::capacity::eviction_trial;
use mee_attack::recon::eviction::find_eviction_set;
use mee_attack::setup::AttackSetup;
use mee_attack::threshold::LatencyClassifier;
use mee_bench::harness::Bench;
use mee_sweep::Sweep;

fn bench_algorithm1() {
    Bench::new("recon/algorithm1_find_eviction_set")
        .samples(10)
        .run_batched(
            || AttackSetup::quiet(11).unwrap(),
            |mut setup| {
                let cls = LatencyClassifier::from_timing(&setup.machine.config().timing);
                let candidates = setup.trojan.candidates(96, 0);
                let mut cpu = setup.trojan_handle();
                find_eviction_set(&mut cpu, &candidates, &cls, 1).unwrap()
            },
        )
        .emit();
}

fn bench_capacity_trial() {
    Bench::new("recon/capacity_trial_k64")
        .samples(10)
        .run_batched(
            || AttackSetup::quiet(12).unwrap(),
            |mut setup| {
                let cls = LatencyClassifier::from_timing(&setup.machine.config().timing);
                eviction_trial(&mut setup, 64, 0, &cls).unwrap()
            },
        )
        .emit();
}

fn bench_establish() {
    Bench::new("channel/establish")
        .samples(10)
        .run_batched(
            || AttackSetup::quiet(13).unwrap(),
            |mut setup| Session::establish(&mut setup, &ChannelConfig::default()).unwrap(),
        )
        .emit();
}

fn bench_transmit() {
    let bits = 128usize;
    Bench::new("channel/transmit_128_bits")
        .samples(10)
        .run_batched(
            || {
                let mut setup = AttackSetup::quiet(14).unwrap();
                let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
                (setup, session)
            },
            |(mut setup, session)| {
                let payload = random_bits(bits, 14);
                session.transmit(&mut setup, &payload).unwrap()
            },
        )
        .emit();
}

fn bench_establish_sweep() {
    // Four full establishments dispatched through the parallel sweep
    // runner (thread count from MEE_SWEEP_THREADS or the host). Compare
    // against 4× `channel/establish` to read off the parallel speedup;
    // results are bit-identical to serial regardless.
    let runner = Sweep::new();
    Bench::new(format!(
        "sweep/establish_x4_threads_{}",
        runner.thread_count()
    ))
    .samples(5)
    .run(|| {
        runner.seed_sweep(15, 4, |spec| {
            let mut setup = AttackSetup::quiet(spec.seed).unwrap();
            Session::establish(&mut setup, &ChannelConfig::sweep_setup()).unwrap();
            spec.index
        })
    })
    .emit();
}

fn main() {
    bench_algorithm1();
    bench_capacity_trial();
    bench_establish();
    bench_transmit();
    bench_establish_sweep();
}

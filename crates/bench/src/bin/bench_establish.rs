//! Establishment-phase microbench: isolates Algorithm 1 (the paper's
//! eviction-set construction, §4.2) and reports host-time percentiles for
//! it, the way `bench-sweep` does for whole sessions.
//!
//! Establishment drives the machine directly through `CoreHandle` — no
//! scheduler involved — so its host cost is a separate series from the
//! transmit-phase numbers, and the one the translation memo and batched
//! sweep paths target. Each sample builds a fresh noisy `AttackSetup`
//! from a derived seed and times `find_eviction_set` over the default
//! 160-candidate pool with 3-vote majorities (the `algo1` workload).
//!
//! Every sample is run twice: once on the default machine (translation
//! memo on) and once with `tlb_entries = 0` (memo off, the pre-memo
//! translate-per-op behaviour). The two runs must agree on the discovered
//! eviction set, the final core clock, and the end-of-run MEE statistics;
//! any divergence prints the offending sample and exits 1, mirroring
//! `bench-trace`'s metrics/engine reconciliation. Host time is measured
//! on the memo-on runs only.
//!
//! Output: one JSON line per sample plus an aggregate line, mirrored to
//! `BENCH_establish.json` (or `--out`).

use std::time::Instant;

use mee_attack::recon::eviction::{find_eviction_set, EvictionSetResult};
use mee_attack::setup::AttackSetup;
use mee_attack::threshold::LatencyClassifier;
use mee_bench::output::JsonlWriter;
use mee_bench::HarnessArgs;
use mee_engine::MeeStats;
use mee_machine::MachineConfig;
use mee_rng::stream_seed;
use mee_types::{Cycles, ModelError};

const CANDIDATES: usize = 160;
const REPS: usize = 3;

/// Everything the memo must not change: the discovered set, the simulated
/// clock it cost, and the MEE cache's end-of-run statistics.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    eviction_set: Vec<u64>,
    test_address: u64,
    index_set_size: usize,
    final_clock: Cycles,
    mee_stats: MeeStats,
}

/// Runs one establishment sample and returns its fingerprint plus the
/// host nanoseconds spent inside `find_eviction_set`.
fn run_sample(seed: u64, cfg: MachineConfig) -> Result<(Fingerprint, u128), ModelError> {
    let mut setup = AttackSetup::with_config(cfg, seed)?;
    let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);
    let candidates = setup.trojan.candidates(CANDIDATES, 0);
    let trojan_core = setup.trojan.core;
    let mut cpu = setup.trojan_handle();
    let start = Instant::now();
    let result: EvictionSetResult = find_eviction_set(&mut cpu, &candidates, &classifier, REPS)?;
    let host_ns = start.elapsed().as_nanos();
    let fp = Fingerprint {
        eviction_set: result.eviction_set.iter().map(|a| a.raw()).collect(),
        test_address: result.test_address.raw(),
        index_set_size: result.index_set_size,
        final_clock: setup.machine.core_now(trojan_core),
        mee_stats: setup.machine.mee().stats(),
    };
    Ok((fp, host_ns))
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args = HarnessArgs::from_env();
    let samples = 4 * args.scale;
    let mut writer = JsonlWriter::create_or_exit(Some(&args.out_or("BENCH_establish.json")));
    let mut host_ns: Vec<u128> = Vec::with_capacity(samples);
    let mut divergences = 0usize;
    for i in 0..samples {
        let seed = stream_seed(args.seed, i as u64);
        let timed = match run_sample(seed, MachineConfig::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-establish: sample {i} (seed {seed}) failed: {e}");
                std::process::exit(1);
            }
        };
        let mut memo_off = MachineConfig::default();
        memo_off.tlb_entries = 0;
        let reference = match run_sample(seed, memo_off) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench-establish: memo-off replay {i} (seed {seed}) failed: {e}");
                std::process::exit(1);
            }
        };
        if timed.0 != reference.0 {
            eprintln!(
                "bench-establish: memo divergence at sample {i} (seed {seed}):\n  \
                 memo-on : {:?}\n  memo-off: {:?}",
                timed.0, reference.0
            );
            divergences += 1;
        }
        writer.line_or_exit(&format!(
            "{{\"sample\":{i},\"seed\":{seed},\"eviction_set_len\":{},\
             \"index_set_size\":{},\"final_clock\":{},\"host_ns\":{}}}",
            timed.0.eviction_set.len(),
            timed.0.index_set_size,
            timed.0.final_clock.raw(),
            timed.1
        ));
        host_ns.push(timed.1);
    }
    host_ns.sort_unstable();
    writer.line_or_exit(&format!(
        "{{\"name\":\"establish/algo1\",\"root_seed\":{},\"samples\":{samples},\
         \"candidates\":{CANDIDATES},\"reps\":{REPS},\
         \"host_ns_p50\":{},\"host_ns_p90\":{},\"host_ns_p99\":{},\
         \"memo_divergences\":{divergences}}}",
        args.seed,
        percentile(&host_ns, 50.0),
        percentile(&host_ns, 90.0),
        percentile(&host_ns, 99.0),
    ));
    if divergences > 0 {
        eprintln!("bench-establish: {divergences} memo divergence(s) — translation memo changed behaviour");
        std::process::exit(1);
    }
}

//! The resilience benchmark: N independent sessions, each measuring the
//! channel under the off/light/heavy fault plans (raw, self-healing, and
//! full ARQ phases — see `experiments::resilience`), run through the
//! `mee-sweep` work queue.
//!
//! ```text
//! cargo run --release -p mee-bench --bin bench-resilience -- [seed] [scale] [--threads N]
//! ```
//!
//! * one JSON line per (session, intensity) cell on stdout, carrying the
//!   session's split seed so any cell replays standalone via
//!   `run_resilience(seed, bits)`;
//! * one aggregate JSON line, also written to `BENCH_resilience.json` in
//!   the working directory (`--out <path>` overrides the artifact path);
//! * `scale` multiplies the session count (2×); `--threads` /
//!   `MEE_SWEEP_THREADS` pin the worker count, which changes wall time but
//!   never the results.

use mee_attack::experiments::{run_resilience_sweep, SweepPlan};
use mee_bench::resilience::{IntensityRecord, ResilienceReport};
use mee_bench::HarnessArgs;
use mee_sweep::Sweep;

fn main() {
    let args = HarnessArgs::from_env();
    // Validate the environment override the same way bad CLI flags are
    // rejected: a message on stderr and exit status 2.
    if let Err(e) = Sweep::from_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let sessions = 2 * args.scale;
    let bits = 48;

    let mut plan = SweepPlan::new(args.seed, sessions);
    if let Some(t) = args.threads {
        plan = plan.threads(t);
    }
    let results = match run_resilience_sweep(&plan, bits) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("resilience sweep failed: {e}");
            std::process::exit(1);
        }
    };

    let records = results
        .iter()
        .flat_map(|(spec, result)| {
            result.points.iter().map(|p| IntensityRecord {
                index: spec.index,
                seed: spec.seed,
                intensity: p.intensity.label(),
                faults_applied: p.faults_applied,
                raw_ber: p.raw_ber(),
                robust_ber: p.robust_ber(),
                residual_rate: p.residual_rate(),
                retransmissions: p.retransmissions,
                window_escalations: p.window_escalations,
                final_window_cycles: p.final_window.raw(),
                goodput_kbps: p.goodput_kbps,
            })
        })
        .collect();

    let report = ResilienceReport {
        name: "resilience/fault_sweep".into(),
        root_seed: args.seed,
        threads: plan.runner().thread_count(),
        bits_per_session: bits,
        records,
    };
    report.emit();
    let path = args.out_or("BENCH_resilience.json");
    let path = path.as_path();
    if let Err(e) = report.write(path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

//! Micro-benchmarks for the simulator substrate: how fast the model
//! itself runs (simulated cycles are free; host time is not).
//!
//! One JSON line per benchmark on stdout; `--out <path>` mirrors the
//! lines to a file. Replaces the former criterion `simulator` bench with
//! the in-tree harness so the suite builds offline.

use mee_bench::harness::Bench;
use mee_bench::output::JsonlWriter;
use mee_bench::HarnessArgs;
use mee_cache::policy::{TreePlru, TrueLru};
use mee_cache::{CacheConfig, ReplacementPolicy, SetAssocCache};
use mee_engine::Mee;
use mee_machine::{CoreId, Machine, MachineConfig};
use mee_mem::{AddressSpaceKind, DramConfig, DramModel, PhysLayout};
use mee_tree::TreeGeometry;
use mee_types::{Cycles, LineAddr, TimingConfig, VirtAddr, PAGE_SIZE};

fn bench_cache(w: &mut JsonlWriter) {
    let cfg = CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap();
    for (name, policy) in [
        ("cache/access_plru", Box::new(TreePlru::new()) as Box<dyn ReplacementPolicy>),
        ("cache/access_lru", Box::new(TrueLru::new())),
    ] {
        let mut cache = SetAssocCache::new(cfg, policy);
        let mut i = 0u64;
        let r = Bench::new(name).inner(4096).run(|| {
            i = i.wrapping_add(97);
            cache.access(LineAddr::new(i % 4096))
        });
        w.line_or_exit(&r.json_line());
    }
}

fn bench_dram(w: &mut JsonlWriter) {
    let mut dram = DramModel::new(DramConfig::default()).unwrap();
    let mut i = 0u64;
    let r = Bench::new("dram/access").inner(4096).run(|| {
        i = i.wrapping_add(513);
        dram.access(LineAddr::new(i % (1 << 20)))
    });
    w.line_or_exit(&r.json_line());
}

fn bench_mee_walk(w: &mut JsonlWriter) {
    let layout = PhysLayout::new(1 << 20, 16 << 20).unwrap();
    let geo = TreeGeometry::new(layout.prm_data(), layout.prm_tree()).unwrap();
    let mut dram = DramModel::new(DramConfig::default()).unwrap();
    let mut mee = Mee::new(
        geo,
        1,
        CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap(),
        TreePlru::new(),
        TimingConfig::default(),
    );
    let base = layout.prm_data().base().line().raw();
    let lines = layout.prm_data().size() / 64;
    let mut i = 0u64;
    let mut clock = 0u64;
    let r = Bench::new("mee/protected_read_walk").inner(1024).run(|| {
        i = i.wrapping_add(61);
        clock += 1_000_000;
        mee.read(
            LineAddr::new(base + (i * 64) % lines),
            Cycles::new(clock),
            &mut dram,
        )
        .unwrap()
    });
    w.line_or_exit(&r.json_line());
}

fn bench_machine_ops(w: &mut JsonlWriter) {
    let r = Bench::new("machine/enclave_read_flush_cycle").run_batched(
        || {
            let mut m = Machine::new(MachineConfig::small()).unwrap();
            let p = m.create_process(AddressSpaceKind::Enclave);
            let base = VirtAddr::new(0x10_0000);
            m.map_pages(p, base, 32).unwrap();
            (m, p, base)
        },
        |(mut m, p, base)| {
            let core = CoreId::new(0);
            for i in 0..32u64 {
                let va = base + i * PAGE_SIZE as u64;
                m.read(core, p, va).unwrap();
                m.clflush(core, p, va).unwrap();
            }
            m
        },
    );
    w.line_or_exit(&r.json_line());
    let r = Bench::new("machine/construction_small")
        .run(|| Machine::new(MachineConfig::small()).unwrap());
    w.line_or_exit(&r.json_line());
}

fn bench_machine_build_sweep(w: &mut JsonlWriter) {
    // Eight independent machine constructions through the parallel sweep
    // runner — the substrate cost of every multi-session experiment.
    let runner = mee_sweep::Sweep::new();
    let r = Bench::new(format!(
        "sweep/machine_build_x8_threads_{}",
        runner.thread_count()
    ))
    .samples(10)
    .run(|| {
        runner.seed_sweep(2019, 8, |spec| {
            let cfg = MachineConfig {
                alloc_seed: spec.seed,
                ..MachineConfig::small()
            };
            Machine::new(cfg).unwrap();
            spec.index
        })
    });
    w.line_or_exit(&r.json_line());
}

fn main() {
    let args = HarnessArgs::from_env();
    let mut w = JsonlWriter::create_or_exit(args.out.as_deref());
    bench_cache(&mut w);
    bench_dram(&mut w);
    bench_mee_walk(&mut w);
    bench_machine_ops(&mut w);
    bench_machine_build_sweep(&mut w);
}

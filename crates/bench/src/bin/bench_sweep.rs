//! The parallel seed-sweep benchmark: N independent channel sessions
//! (establish + transmit on a fresh noisy machine each) run through the
//! `mee-sweep` work queue, with per-session host timing.
//!
//! ```text
//! cargo run --release -p mee-bench --bin bench-sweep -- [seed] [scale] [--threads N]
//! ```
//!
//! * one JSON line per session on stdout (carrying the session's split
//!   seed, so a suspicious session replays standalone — see
//!   EXPERIMENTS.md "Running sweeps");
//! * one aggregate JSON line, also written to `BENCH_sweep.json` in the
//!   working directory (`--out <path>` overrides the artifact path);
//! * `scale` multiplies both the session count (4×) and the payload
//!   (64 bits ×); `--threads` / `MEE_SWEEP_THREADS` pin the worker count,
//!   which changes wall time but never the results.

use std::time::Instant;

use mee_attack::channel::{random_bits, ChannelConfig, Session};
use mee_attack::setup::AttackSetup;
use mee_bench::sweep::{SessionRecord, SweepReport};
use mee_bench::HarnessArgs;
use mee_sweep::Sweep;

fn percentile_raw(sorted: &[u64], p: f64) -> u64 {
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = HarnessArgs::from_env();
    // Validate the environment override the same way bad CLI flags are
    // rejected: a message on stderr and exit status 2, not a panic.
    let runner = match Sweep::from_env() {
        Ok(r) => r.threads(args.threads),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sessions = 4 * args.scale;
    let bits = 64 * args.scale;
    let cfg = ChannelConfig::sweep_setup();

    let records = runner.seed_sweep(args.seed, sessions, |spec| {
        let start = Instant::now();
        let mut setup = AttackSetup::new(spec.seed).expect("machine construction");
        let session = Session::establish(&mut setup, &cfg).expect("channel establishment");
        let payload = random_bits(bits, spec.seed);
        let out = session.transmit(&mut setup, &payload).expect("transmission");
        let host_ns = start.elapsed().as_nanos() as f64;
        let mut probes: Vec<u64> = out.probe_times.iter().map(|t| t.raw()).collect();
        probes.sort_unstable();
        SessionRecord {
            index: spec.index,
            seed: spec.seed,
            bits,
            bit_errors: out.errors.count(),
            kbps: out.kbps,
            probe_p50_cycles: percentile_raw(&probes, 50.0),
            probe_p95_cycles: percentile_raw(&probes, 95.0),
            host_ns,
        }
    });

    let report = SweepReport {
        name: "channel/seed_sweep".into(),
        root_seed: args.seed,
        threads: runner.thread_count(),
        bits_per_session: bits,
        records,
    };
    report.emit();
    let path = args.out_or("BENCH_sweep.json");
    let path = path.as_path();
    if let Err(e) = report.write(path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

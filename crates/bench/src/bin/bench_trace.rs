//! The traced-session exporter: one full covert-channel session (noisy
//! machine, light fault plan, establish + transmit) recorded by `mee-obs`
//! and exported as a Chrome `trace_event` document.
//!
//! ```text
//! cargo run --release -p mee-bench --bin bench-trace -- [seed] [scale] [--out PATH] [--trace EVENTS]
//! ```
//!
//! * the Chrome trace (load it at `ui.perfetto.dev`) is written to
//!   `BENCH_trace.json` in the working directory (`--out <path>`
//!   overrides the artifact path);
//! * one summary JSON line on stdout: event/category counts, ring drops,
//!   and the metrics-vs-engine reconciliation verdict;
//! * `scale` multiplies the payload (32 bits ×); `--trace` / `MEE_TRACE`
//!   size the event ring (default 2²⁰ events — tracing is the point of
//!   this binary, so `--trace 0` is rejected);
//! * exits 1 if the traced session does not cover all four event
//!   categories (memory, tree, fault, channel) or if the per-core metric
//!   counters disagree with the engine's own end-of-run statistics.
//!
//! Everything sim-time in the artifact is a pure function of the seed:
//! same seed ⇒ byte-identical `"traceEvents"` and `"meeMetrics"`. Only
//! the embedded `"hostProfile"` (host nanoseconds) varies run to run.

use std::collections::BTreeSet;
use std::io::Write as _;

use mee_attack::channel::{random_bits, ChannelConfig, Session};
use mee_attack::experiments::session_fault_targets;
use mee_attack::setup::AttackSetup;
use mee_bench::output::JsonlWriter;
use mee_bench::HarnessArgs;
use mee_faults::{FaultInjector, FaultIntensity, FaultPlan};
use mee_obs::{chrome_trace, ChromeTraceOptions};
use mee_rng::stream_seed;
use mee_types::Cycles;

fn main() {
    let args = HarnessArgs::from_env();
    let capacity = match args.trace_capacity() {
        Some(n) => n,
        None if args.trace.is_none() && mee_obs::env_capacity().is_none() => {
            mee_obs::DEFAULT_RING_CAPACITY
        }
        None => {
            eprintln!(
                "bench-trace exports a trace; enable tracing (--trace N>0, or unset MEE_TRACE=0)"
            );
            std::process::exit(2);
        }
    };
    let bits = 32 * args.scale;

    // Tracing goes on before the first memory op, so the metrics registry
    // sees every walk the engine sees and the reconciliation below can
    // demand exact equality.
    let mut setup = AttackSetup::new(args.seed).expect("machine construction");
    setup.machine.enable_tracing(capacity);

    let cfg = ChannelConfig::sweep_setup();
    let session = Session::establish(&mut setup, &cfg).expect("channel establishment");

    // A light fault plan over the transmission span puts the `fault`
    // category on the timeline without drowning the channel.
    let targets = session_fault_targets(&setup, &session).expect("fault targets");
    let start = setup
        .machine
        .core_now(session.sender.core)
        .max(setup.machine.core_now(session.receiver.core));
    let span = Cycles::new(bits as u64 * cfg.window.raw() * 4 + 2_000_000);
    let plan = FaultPlan::generate(
        FaultIntensity::Light,
        &targets,
        start,
        span,
        stream_seed(args.seed, 0xFA),
    );
    let mut injector = FaultInjector::new(plan);

    let payload = random_bits(bits, args.seed);
    let out = session
        .transmit_hooked(&mut setup, &payload, &mut [], &mut injector)
        .expect("transmission");

    let machine = &setup.machine;
    let events = machine.obs().events();
    let categories: BTreeSet<&'static str> = events.iter().map(|e| e.kind.category()).collect();
    let dropped = machine.obs().ring().map_or(0, |r| r.dropped());

    // Reconcile the tracer's view against the engine's own counters: the
    // per-core mee-hit histograms summed over cores must equal the MEE's
    // end-of-run walk statistics exactly.
    let metrics = machine.obs().metrics.as_ref().expect("tracing is enabled");
    let traced_hits = metrics.mee_hits_total();
    let engine_hits = machine.mee().stats().hits_by_level;
    let reconciled = traced_hits == engine_hits;

    let trace = chrome_trace(
        &events,
        &ChromeTraceOptions {
            seed: args.seed,
            cores: machine.config().cores,
            dropped,
            metrics: Some(metrics),
            host: Some(&machine.obs().host),
        },
    );
    let path = args.out_or("BENCH_trace.json");
    let write = std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(trace.as_bytes()).and_then(|()| writeln!(f)));
    if let Err(e) = write {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }

    let cats: Vec<String> = categories.iter().map(|c| format!("\"{c}\"")).collect();
    let mut w = JsonlWriter::stdout_only();
    w.line_or_exit(&format!(
        "{{\"name\":\"trace/session\",\"seed\":{},\"bits\":{},\"bit_errors\":{},\
         \"events\":{},\"dropped\":{},\"categories\":[{}],\"faults_applied\":{},\
         \"metrics_reconciled\":{},\"out\":{:?}}}",
        args.seed,
        bits,
        out.errors.count(),
        events.len(),
        dropped,
        cats.join(","),
        injector.applied().len(),
        reconciled,
        path.display().to_string(),
    ));

    if !reconciled {
        eprintln!(
            "metrics diverged from engine stats: traced {traced_hits:?} vs engine {engine_hits:?}"
        );
        std::process::exit(1);
    }
    for want in ["memory", "tree", "fault", "channel"] {
        if !categories.contains(want) {
            eprintln!("trace is missing the {want:?} category (got {categories:?})");
            std::process::exit(1);
        }
    }
}

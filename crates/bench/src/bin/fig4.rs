//! Regenerates Figure 4: eviction probability vs candidate-set size.

use mee_attack::experiments::run_fig4;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let trials = 100 * args.scale; // the paper's 100 trials per point
    match run_fig4(args.seed, trials) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates Figure 5: access-latency histogram by MEE hit level.

use mee_attack::experiments::run_fig5;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_fig5(args.seed, 64 * args.scale, 2) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates Figure 6: Prime+Probe (a) vs this work (b), sending 0101…

use mee_attack::experiments::run_fig6;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    // Panel (a) shows 16 bits, (b) shows ~30 probes in the paper.
    match run_fig6(args.seed, 16 * args.scale) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates Figure 7: bit rate / error rate vs timing window size.

use mee_attack::experiments::fig7::PAPER_WINDOWS;
use mee_attack::experiments::run_fig7;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_fig7(args.seed, 1024 * args.scale, &PAPER_WINDOWS) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}

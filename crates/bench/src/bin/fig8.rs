//! Regenerates Figure 8: the 128-bit '100100…' sequence under four noise
//! environments.

use mee_attack::experiments::run_fig8;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_fig8(args.seed, 128 * args.scale) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates the headline numbers: ~35 KBps at ~1.7% error (no error
//! handling), plus the Hamming-coded extension.

use mee_attack::experiments::run_headline;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_headline(args.seed, 4096 * args.scale) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("headline failed: {e}");
            std::process::exit(1);
        }
    }
}

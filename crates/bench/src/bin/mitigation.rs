//! Runs the §5.5 way-partitioning mitigation sketch.

use mee_attack::experiments::run_mitigation;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_mitigation(args.seed, 512 * args.scale, &[8, 6, 4, 2]) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("mitigation failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Runs the full §4 reverse-engineering pipeline and prints the inferred
//! MEE cache organization.

use mee_attack::recon::profile_mee_cache;
use mee_attack::setup::AttackSetup;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let run = || -> Result<(), mee_types::ModelError> {
        let mut setup = AttackSetup::new(args.seed)?;
        let profile = profile_mee_cache(&mut setup, 20 * args.scale, 3)?;
        println!("Reverse-engineered MEE cache organization (paper §4):");
        println!("  {profile}");
        println!("  paper's answer: 64 KiB, 8-way set-associative, 128 sets of 64 B lines");
        if let Some(k) = profile.sweep_saturation {
            println!(
                "  Figure-4 sweep saturated at {k} candidates (consistency: {:?})",
                profile.sweep_consistent()
            );
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("profile failed: {e}");
        std::process::exit(1);
    }
}

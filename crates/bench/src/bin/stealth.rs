//! Runs the stealth comparison: MEE channel vs classic LLC Prime+Probe,
//! by LLC footprint.

use mee_attack::experiments::run_stealth;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_stealth(args.seed, 512 * args.scale) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("stealth failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerates the §3 timing-primitive comparison (Figure 2's approaches).

use mee_attack::experiments::run_timers;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_timers(args.seed, 32 * args.scale) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("timers failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Runs the wide-channel throughput sweep (extension).

use mee_attack::experiments::run_wide;
use mee_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    match run_wide(args.seed, 512 * args.scale, &[1, 2, 4, 8]) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("wide failed: {e}");
            std::process::exit(1);
        }
    }
}

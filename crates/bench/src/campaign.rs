//! Campaign-level benchmark reporting: the constant-memory aggregate of a
//! crash-safe [`mee_campaign`] run as one deterministic JSON object,
//! written to `BENCH_campaign.json` (ci.sh checks the schema **and**, via
//! its kill/resume smoke, that an interrupted-and-resumed campaign's
//! artifact is byte-identical to an uninterrupted reference).
//!
//! The artifact deliberately contains **only deterministic fields** — no
//! host nanoseconds, no thread counts, no resumed-shard counts — so two
//! runs of the same campaign compare with `cmp` no matter how they were
//! scheduled or interrupted. Host timing still reaches stdout through
//! [`CampaignReport::emit`], clearly separated.

use std::io::Write as _;
use std::path::Path;

use mee_campaign::CampaignOutcome;

/// The deterministic report of a finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name (`group/case`).
    pub name: String,
    /// Root seed of the session seed space.
    pub root_seed: u64,
    /// Sessions the plan asked for (aggregated + missing).
    pub sessions_planned: usize,
    /// Shard count of the partition.
    pub shards: usize,
    /// The outcome being reported.
    pub outcome: CampaignOutcome,
}

impl CampaignReport {
    /// One deterministic JSON object — the `BENCH_campaign.json` schema.
    /// Every field is a pure function of (campaign identity, session
    /// bodies): byte-identical across thread counts and across
    /// kill/resume, which ci.sh enforces with `cmp`.
    pub fn aggregate_json(&self) -> String {
        let agg = &self.outcome.aggregate;
        let mut series = String::new();
        for (name, s) in &agg.series {
            if !series.is_empty() {
                series.push(',');
            }
            let q = |p: f64| {
                s.sketch
                    .quantile(p)
                    .map_or_else(|| "null".to_owned(), |v| format!("{v:.6}"))
            };
            series.push_str(&format!(
                "{{\"name\":{name:?},\"count\":{},\"mean\":{:.6},\"var\":{:.6},\
                 \"min\":{:.6},\"max\":{:.6},\"p10\":{},\"p50\":{},\"p90\":{},\"p95\":{}}}",
                s.stats.count,
                s.stats.mean,
                s.stats.variance(),
                s.stats.min,
                s.stats.max,
                q(10.0),
                q(50.0),
                q(90.0),
                q(95.0),
            ));
        }
        format!(
            "{{\"name\":{:?},\"root_seed\":{},\"sessions_planned\":{},\"shards\":{},\
             \"sessions_aggregated\":{},\"quarantined_shards\":{},\"missing_sessions\":{},\
             \"series\":[{series}]}}",
            self.name,
            self.root_seed,
            self.sessions_planned,
            self.shards,
            agg.sessions,
            self.outcome.quarantined.len(),
            self.outcome.missing_sessions().len(),
        )
    }

    /// Prints the campaign event log, host spans, and the aggregate object
    /// to stdout (the non-deterministic parts stay here, never in the
    /// artifact), then returns `self` for chaining.
    pub fn emit(&self) -> &Self {
        print!("{}", self.outcome.log.render());
        if !self.outcome.resumed.is_empty() {
            println!("resumed {} shard(s) from checkpoints", self.outcome.resumed.len());
        }
        for (span, stats) in self.outcome.host.spans() {
            println!(
                "host {span}: count {} total_ns {}",
                stats.count,
                stats.total.as_nanos()
            );
        }
        if !self.outcome.is_complete() {
            eprint!("{}", self.outcome.quarantine_report());
        }
        println!("{}", self.aggregate_json());
        self
    }

    /// Writes the aggregate object (with a trailing newline) to `path` —
    /// conventionally `BENCH_campaign.json` in the repository root.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.aggregate_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_campaign::{Campaign, CampaignPlan};

    fn outcome(threads: usize) -> CampaignOutcome {
        let plan = CampaignPlan::new("bench/test", 2019, 10, 4).threads(threads);
        Campaign::new(plan, vec!["v".into()], "t/v1")
            .unwrap()
            .run(|spec, _| Ok(vec![(spec.seed % 1000) as f64]))
            .unwrap()
    }

    fn report(threads: usize) -> CampaignReport {
        CampaignReport {
            name: "bench/test".into(),
            root_seed: 2019,
            sessions_planned: 10,
            shards: 4,
            outcome: outcome(threads),
        }
    }

    #[test]
    fn schema_keys_are_present() {
        let json = report(2).aggregate_json();
        for key in [
            "\"name\"",
            "\"root_seed\"",
            "\"sessions_planned\"",
            "\"shards\"",
            "\"sessions_aggregated\"",
            "\"quarantined_shards\"",
            "\"missing_sessions\"",
            "\"series\"",
            "\"count\"",
            "\"mean\"",
            "\"var\"",
            "\"min\"",
            "\"max\"",
            "\"p10\"",
            "\"p50\"",
            "\"p90\"",
            "\"p95\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"sessions_aggregated\":10"));
    }

    #[test]
    fn artifact_is_thread_count_invariant() {
        // The whole point of the deterministic-fields-only schema.
        assert_eq!(report(1).aggregate_json(), report(8).aggregate_json());
    }

    #[test]
    fn write_emits_one_json_object() {
        let r = report(2);
        let dir = std::env::temp_dir().join("mee_campaign_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_campaign.json");
        r.write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim(), r.aggregate_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! A zero-dependency micro-benchmark harness.
//!
//! Replaces the registry-provided criterion benches with the minimum that
//! the perf trajectory actually needs: warmup, a fixed number of timed
//! samples, robust order statistics (median / p95 of the per-operation
//! nanoseconds), and one JSON object per line on stdout so results can be
//! appended to a `BENCH_*.json` trajectory and diffed across commits.
//!
//! Two measurement shapes cover every benchmark in the workspace:
//!
//! * [`Bench::run`] — a hot operation cheap enough to repeat inside a
//!   batch; each sample times `inner` back-to-back calls and divides.
//! * [`Bench::run_batched`] — an operation that consumes fresh state
//!   (e.g. a whole channel establishment); setup runs outside the timed
//!   region and each sample times exactly one call.
//!
//! Env knob: `MEE_BENCH_SAMPLES` overrides the sample count of every
//! benchmark (useful for quick smoke runs: `MEE_BENCH_SAMPLES=3`).

use std::hint::black_box;
use std::time::Instant;

/// Configuration for one benchmark: name, warmup, samples, batch size.
#[derive(Debug, Clone)]
pub struct Bench {
    name: String,
    warmup_iters: u64,
    samples: usize,
    inner: u64,
}

impl Bench {
    /// A benchmark named `name` with harness defaults (16 warmup
    /// iterations, 50 samples, 1 operation per sample).
    ///
    /// # Panics
    ///
    /// Panics if `MEE_BENCH_SAMPLES` is set but not a positive integer
    /// (zero would produce an empty sample vector and fail much later
    /// with a confusing "no samples" message).
    pub fn new(name: impl Into<String>) -> Self {
        let samples =
            mee_rng::env_knob::positive_from_env::<usize>("MEE_BENCH_SAMPLES").unwrap_or(50);
        Bench {
            name: name.into(),
            warmup_iters: 16,
            samples,
            inner: 1,
        }
    }

    /// Sets the number of warmup iterations (untimed).
    pub fn warmup(mut self, iters: u64) -> Self {
        self.warmup_iters = iters;
        self
    }

    /// Sets the number of timed samples.
    ///
    /// `MEE_BENCH_SAMPLES` still takes precedence so one env var can
    /// shrink a whole suite.
    pub fn samples(mut self, samples: usize) -> Self {
        if std::env::var("MEE_BENCH_SAMPLES").is_err() {
            self.samples = samples;
        }
        self
    }

    /// Sets how many operations each sample batches together — use a
    /// large value for nanosecond-scale operations so clock granularity
    /// does not dominate.
    pub fn inner(mut self, inner: u64) -> Self {
        assert!(inner > 0, "inner batch size must be positive");
        self.inner = inner;
        self
    }

    /// Benchmarks a repeatable hot operation. Each sample times `inner`
    /// calls of `op` back to back and records the mean per-call time.
    pub fn run<R>(self, mut op: impl FnMut() -> R) -> Report {
        for _ in 0..self.warmup_iters {
            black_box(op());
        }
        let mut per_op_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.inner {
                black_box(op());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            per_op_ns.push(elapsed / self.inner as f64);
        }
        Report::from_samples(self.name, self.inner * self.samples as u64, per_op_ns)
    }

    /// Benchmarks an operation that consumes fresh state. `setup` runs
    /// untimed before every sample (and before every warmup iteration);
    /// each sample times exactly one `op(state)` call.
    pub fn run_batched<S, R>(
        self,
        mut setup: impl FnMut() -> S,
        mut op: impl FnMut(S) -> R,
    ) -> Report {
        for _ in 0..self.warmup_iters.min(2) {
            let s = setup();
            black_box(op(s));
        }
        let mut per_op_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let s = setup();
            let start = Instant::now();
            black_box(op(s));
            per_op_ns.push(start.elapsed().as_nanos() as f64);
        }
        Report::from_samples(self.name, self.samples as u64, per_op_ns)
    }
}

/// Summary statistics of one benchmark, in nanoseconds per operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Total timed operations across all samples.
    pub iters: u64,
    /// Minimum per-operation time.
    pub min_ns: f64,
    /// Arithmetic mean per-operation time.
    pub mean_ns: f64,
    /// Median (p50) per-operation time.
    pub median_ns: f64,
    /// 95th-percentile per-operation time.
    pub p95_ns: f64,
}

impl Report {
    fn from_samples(name: String, iters: u64, mut ns: Vec<f64>) -> Self {
        assert!(!ns.is_empty(), "benchmark produced no samples");
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min_ns = ns[0];
        let mean_ns = ns.iter().sum::<f64>() / ns.len() as f64;
        Report {
            name,
            iters,
            min_ns,
            mean_ns,
            median_ns: percentile(&ns, 50.0),
            p95_ns: percentile(&ns, 95.0),
        }
    }

    /// The result as one JSON object (no trailing newline), e.g.
    /// `{"name":"cache/access_plru","iters":50000,"min_ns":8.1,...}`.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":{:?},\"iters\":{},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"p95_ns\":{:.1}}}",
            self.name, self.iters, self.min_ns, self.mean_ns, self.median_ns, self.p95_ns
        )
    }

    /// Prints the JSON line to stdout and returns `self` for chaining.
    pub fn emit(self) -> Self {
        println!("{}", self.json_line());
        self
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_reports_sane_statistics() {
        let r = Bench::new("test/spin")
            .warmup(2)
            .samples(20)
            .inner(100)
            .run(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert_eq!(r.iters, 2000);
        assert!(r.min_ns >= 0.0);
        assert!(r.median_ns >= r.min_ns);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.mean_ns > 0.0);
    }

    #[test]
    fn run_batched_excludes_setup() {
        // Setup is vastly more expensive than the op; if it leaked into
        // the timed region the per-op time would exceed 1ms.
        let r = Bench::new("test/batched").samples(5).run_batched(
            || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                42u64
            },
            |x| x + 1,
        );
        assert!(
            r.median_ns < 1_000_000.0,
            "setup leaked into timing: {} ns",
            r.median_ns
        );
    }

    #[test]
    fn json_line_shape() {
        let r = Report {
            name: "group/case".into(),
            iters: 10,
            min_ns: 1.04,
            mean_ns: 2.0,
            median_ns: 1.96,
            p95_ns: 3.0,
        };
        assert_eq!(
            r.json_line(),
            "{\"name\":\"group/case\",\"iters\":10,\"min_ns\":1.0,\"mean_ns\":2.0,\"median_ns\":2.0,\"p95_ns\":3.0}"
        );
    }

    #[test]
    fn percentile_endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_inner_rejected() {
        let _ = Bench::new("bad").inner(0);
    }
}

#![warn(missing_docs)]
//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts `[seed] [scale]` positional arguments:
//!
//! * `seed` (default 2019) — all machine RNGs derive from it;
//! * `scale` (default 1) — multiplies trial counts / payload sizes, so
//!   `cargo run -p mee-bench --bin fig7 -- 7 4` runs a 4× heavier sweep.

/// Parsed command-line arguments for a figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// RNG seed for the whole experiment.
    pub seed: u64,
    /// Work multiplier (≥ 1).
    pub scale: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            seed: 2019, // the paper's year
            scale: 1,
        }
    }
}

impl HarnessArgs {
    /// Parses `[seed] [scale]` from an iterator of arguments (typically
    /// `std::env::args().skip(1)`); malformed values fall back to defaults.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        if let Some(s) = it.next() {
            if let Ok(seed) = s.parse() {
                out.seed = seed;
            }
        }
        if let Some(s) = it.next() {
            if let Ok(scale) = s.parse::<usize>() {
                out.scale = scale.max(1);
            }
        }
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = HarnessArgs::parse(Vec::<String>::new());
        assert_eq!(a, HarnessArgs { seed: 2019, scale: 1 });
    }

    #[test]
    fn parses_seed_and_scale() {
        let a = HarnessArgs::parse(vec!["7".into(), "3".into()]);
        assert_eq!(a, HarnessArgs { seed: 7, scale: 3 });
    }

    #[test]
    fn malformed_values_fall_back() {
        let a = HarnessArgs::parse(vec!["x".into(), "0".into()]);
        assert_eq!(a.seed, 2019);
        assert_eq!(a.scale, 1);
    }
}

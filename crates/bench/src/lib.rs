#![warn(missing_docs)]
//! Shared plumbing for the figure-regeneration binaries and the in-tree
//! micro-benchmark harness.
//!
//! Every binary accepts `[seed] [scale]` positional arguments:
//!
//! * `seed` (default 2019, the paper's year) — all machine RNGs derive
//!   from it;
//! * `scale` (default 1) — multiplies trial counts / payload sizes, so
//!   `cargo run -p mee-bench --bin fig7 -- 7 4` runs a 4× heavier sweep.
//!
//! Malformed arguments are hard errors: a typo'd sweep must never
//! masquerade as the default run.
//!
//! The [`harness`] module replaces the previous registry-provided
//! criterion benches with a zero-dependency measurement loop (warmup +
//! timed samples, median/p95 in nanoseconds, one JSON line per benchmark
//! on stdout). Run it with `cargo run --release -p mee-bench --bin
//! bench-simulator` / `--bin bench-channel`.

pub mod harness;
pub mod resilience;
pub mod sweep;

/// Parsed command-line arguments for a figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// RNG seed for the whole experiment.
    pub seed: u64,
    /// Work multiplier (≥ 1).
    pub scale: usize,
    /// Worker threads for sweep-based binaries (`--threads N`); `None`
    /// defers to `MEE_SWEEP_THREADS` or the host's available parallelism.
    pub threads: Option<usize>,
}

/// A rejected command-line argument: which position, and the bad value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// Name of the argument that failed to parse (`seed` or `scale`).
    pub arg: &'static str,
    /// The offending raw value.
    pub value: String,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} argument {:?} (usage: [seed:u64] [scale:usize>=1] [--threads N>=1])",
            self.arg, self.value
        )
    }
}

impl std::error::Error for ArgError {}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            seed: 2019, // the paper's year
            scale: 1,
            threads: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `[seed] [scale] [--threads N]` from an iterator of arguments
    /// (typically `std::env::args().skip(1)`). The `--threads` flag may
    /// appear anywhere; the positionals keep their order.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] naming the offending argument when `seed`
    /// is not a `u64`, `scale` is not a positive integer, or `--threads`
    /// is missing/zero/non-numeric. Omitted arguments take their defaults.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut out = HarnessArgs::default();
        let mut positionals = Vec::new();
        let mut it = args.into_iter();
        while let Some(s) = it.next() {
            if s == "--threads" {
                let v = it.next().ok_or(ArgError {
                    arg: "threads",
                    value: "<missing>".into(),
                })?;
                let threads: usize = v.parse().map_err(|_| ArgError {
                    arg: "threads",
                    value: v.clone(),
                })?;
                if threads == 0 {
                    return Err(ArgError {
                        arg: "threads",
                        value: v,
                    });
                }
                out.threads = Some(threads);
            } else {
                positionals.push(s);
            }
        }
        let mut it = positionals.into_iter();
        if let Some(s) = it.next() {
            out.seed = s.parse().map_err(|_| ArgError {
                arg: "seed",
                value: s,
            })?;
        }
        if let Some(s) = it.next() {
            let scale: usize = s.parse().map_err(|_| ArgError {
                arg: "scale",
                value: s.clone(),
            })?;
            if scale == 0 {
                return Err(ArgError {
                    arg: "scale",
                    value: s,
                });
            }
            out.scale = scale;
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with a message on
    /// stderr (status 2) if they are malformed.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = HarnessArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a, HarnessArgs { seed: 2019, scale: 1, threads: None });
    }

    #[test]
    fn parses_seed_and_scale() {
        let a = HarnessArgs::parse(vec!["7".into(), "3".into()]).unwrap();
        assert_eq!(a, HarnessArgs { seed: 7, scale: 3, threads: None });
    }

    #[test]
    fn seed_alone_is_accepted() {
        let a = HarnessArgs::parse(vec!["99".into()]).unwrap();
        assert_eq!(a, HarnessArgs { seed: 99, scale: 1, threads: None });
    }

    #[test]
    fn threads_flag_parses_anywhere() {
        let a = HarnessArgs::parse(vec!["--threads".into(), "4".into()]).unwrap();
        assert_eq!(a, HarnessArgs { seed: 2019, scale: 1, threads: Some(4) });
        let b =
            HarnessArgs::parse(vec!["7".into(), "--threads".into(), "2".into(), "3".into()])
                .unwrap();
        assert_eq!(b, HarnessArgs { seed: 7, scale: 3, threads: Some(2) });
    }

    #[test]
    fn threads_flag_rejects_garbage() {
        for bad in [vec!["--threads".into()], vec!["--threads".into(), "zero".into()], vec!["--threads".into(), "0".into()]] {
            let e = HarnessArgs::parse(bad).unwrap_err();
            assert_eq!(e.arg, "threads");
        }
    }

    #[test]
    fn malformed_seed_is_an_error() {
        let e = HarnessArgs::parse(vec!["x".into()]).unwrap_err();
        assert_eq!(e.arg, "seed");
        assert_eq!(e.value, "x");
        assert!(e.to_string().contains("seed"));
    }

    #[test]
    fn malformed_scale_is_an_error() {
        let e = HarnessArgs::parse(vec!["7".into(), "wide".into()]).unwrap_err();
        assert_eq!(e.arg, "scale");
        assert_eq!(e.value, "wide");
    }

    #[test]
    fn zero_scale_is_an_error() {
        // Previously clamped to 1 silently; a zero-work sweep is a typo.
        let e = HarnessArgs::parse(vec!["7".into(), "0".into()]).unwrap_err();
        assert_eq!(e.arg, "scale");
        assert_eq!(e.value, "0");
    }

    #[test]
    fn negative_seed_is_an_error() {
        let e = HarnessArgs::parse(vec!["-3".into()]).unwrap_err();
        assert_eq!(e.arg, "seed");
    }
}

#![warn(missing_docs)]
//! Shared plumbing for the figure-regeneration binaries and the in-tree
//! micro-benchmark harness.
//!
//! Every binary accepts `[seed] [scale]` positional arguments:
//!
//! * `seed` (default 2019, the paper's year) — all machine RNGs derive
//!   from it;
//! * `scale` (default 1) — multiplies trial counts / payload sizes, so
//!   `cargo run -p mee-bench --bin fig7 -- 7 4` runs a 4× heavier sweep.
//!
//! Malformed arguments are hard errors: a typo'd sweep must never
//! masquerade as the default run.
//!
//! The [`harness`] module replaces the previous registry-provided
//! criterion benches with a zero-dependency measurement loop (warmup +
//! timed samples, median/p95 in nanoseconds, one JSON line per benchmark
//! on stdout). Run it with `cargo run --release -p mee-bench --bin
//! bench-simulator` / `--bin bench-channel`.

pub mod campaign;
pub mod harness;
pub mod output;
pub mod resilience;
pub mod sweep;

/// Parsed command-line arguments for a figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// RNG seed for the whole experiment.
    pub seed: u64,
    /// Work multiplier (≥ 1).
    pub scale: usize,
    /// Worker threads for sweep-based binaries (`--threads N`); `None`
    /// defers to `MEE_SWEEP_THREADS` or the host's available parallelism.
    pub threads: Option<usize>,
    /// Output artifact path override (`--out <path>`); `None` keeps each
    /// binary's default (stdout only, or its conventional `BENCH_*.json`).
    pub out: Option<std::path::PathBuf>,
    /// Trace-ring capacity request (`--trace <events>`); `0` forces
    /// tracing off, `None` defers to the `MEE_TRACE` environment knob.
    pub trace: Option<u64>,
}

/// A rejected command-line argument: which position, and the bad value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// Name of the argument that failed to parse (`seed` or `scale`).
    pub arg: &'static str,
    /// The offending raw value.
    pub value: String,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} argument {:?} (usage: [seed:u64] [scale:usize>=1] \
             [--threads N>=1] [--out PATH] [--trace EVENTS])",
            self.arg, self.value
        )
    }
}

impl std::error::Error for ArgError {}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            seed: 2019, // the paper's year
            scale: 1,
            threads: None,
            out: None,
            trace: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `[seed] [scale] [--threads N] [--out PATH] [--trace EVENTS]`
    /// from an iterator of arguments (typically
    /// `std::env::args().skip(1)`). Flags may appear anywhere; the
    /// positionals keep their order.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] naming the offending argument when `seed`
    /// is not a `u64`, `scale` is not a positive integer, `--threads` is
    /// missing/zero/non-numeric, `--out` is missing its path, or `--trace`
    /// is missing/non-numeric (`--trace 0` is valid: it forces tracing
    /// off). Omitted arguments take their defaults.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut out = HarnessArgs::default();
        let mut positionals = Vec::new();
        let mut it = args.into_iter();
        while let Some(s) = it.next() {
            if s == "--threads" {
                let v = it.next().ok_or(ArgError {
                    arg: "threads",
                    value: "<missing>".into(),
                })?;
                let threads: usize = v.parse().map_err(|_| ArgError {
                    arg: "threads",
                    value: v.clone(),
                })?;
                if threads == 0 {
                    return Err(ArgError {
                        arg: "threads",
                        value: v,
                    });
                }
                out.threads = Some(threads);
            } else if s == "--out" {
                let v = it.next().ok_or(ArgError {
                    arg: "out",
                    value: "<missing>".into(),
                })?;
                out.out = Some(std::path::PathBuf::from(v));
            } else if s == "--trace" {
                let v = it.next().ok_or(ArgError {
                    arg: "trace",
                    value: "<missing>".into(),
                })?;
                let trace: u64 = v.parse().map_err(|_| ArgError {
                    arg: "trace",
                    value: v.clone(),
                })?;
                out.trace = Some(trace);
            } else {
                positionals.push(s);
            }
        }
        let mut it = positionals.into_iter();
        if let Some(s) = it.next() {
            out.seed = s.parse().map_err(|_| ArgError {
                arg: "seed",
                value: s,
            })?;
        }
        if let Some(s) = it.next() {
            let scale: usize = s.parse().map_err(|_| ArgError {
                arg: "scale",
                value: s.clone(),
            })?;
            if scale == 0 {
                return Err(ArgError {
                    arg: "scale",
                    value: s,
                });
            }
            out.scale = scale;
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with a message on
    /// stderr (status 2) if they are malformed.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The output artifact path: `--out` if given, else `default` — the
    /// binary's conventional `BENCH_*.json` name in the working directory.
    pub fn out_or(&self, default: &str) -> std::path::PathBuf {
        self.out
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from(default))
    }

    /// The effective trace-ring capacity: the `--trace` flag beats the
    /// `MEE_TRACE` environment knob; a value of `0` from either source —
    /// or neither being set — disables tracing (`None`).
    ///
    /// # Panics
    ///
    /// Panics if `MEE_TRACE` is consulted and set to a malformed value
    /// (the workspace-wide strict-knob policy: a typo'd override must
    /// never silently fall back to a default).
    pub fn trace_capacity(&self) -> Option<usize> {
        let raw = match self.trace {
            Some(n) => usize::try_from(n).expect("trace capacity fits usize"),
            None => mee_obs::env_capacity()?,
        };
        (raw > 0).then_some(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = HarnessArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a, HarnessArgs::default());
        assert_eq!((a.seed, a.scale), (2019, 1));
        assert_eq!(a.threads, None);
        assert_eq!(a.out, None);
        assert_eq!(a.trace, None);
    }

    #[test]
    fn parses_seed_and_scale() {
        let a = HarnessArgs::parse(vec!["7".into(), "3".into()]).unwrap();
        assert_eq!(a, HarnessArgs { seed: 7, scale: 3, ..HarnessArgs::default() });
    }

    #[test]
    fn seed_alone_is_accepted() {
        let a = HarnessArgs::parse(vec!["99".into()]).unwrap();
        assert_eq!(a, HarnessArgs { seed: 99, ..HarnessArgs::default() });
    }

    #[test]
    fn threads_flag_parses_anywhere() {
        let a = HarnessArgs::parse(vec!["--threads".into(), "4".into()]).unwrap();
        assert_eq!(a, HarnessArgs { threads: Some(4), ..HarnessArgs::default() });
        let b =
            HarnessArgs::parse(vec!["7".into(), "--threads".into(), "2".into(), "3".into()])
                .unwrap();
        assert_eq!(
            b,
            HarnessArgs { seed: 7, scale: 3, threads: Some(2), ..HarnessArgs::default() }
        );
    }

    #[test]
    fn out_flag_parses_and_defaults() {
        let a = HarnessArgs::parse(vec!["--out".into(), "/tmp/x.json".into()]).unwrap();
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
        assert_eq!(a.out_or("BENCH_x.json"), std::path::PathBuf::from("/tmp/x.json"));
        let b = HarnessArgs::default();
        assert_eq!(b.out_or("BENCH_x.json"), std::path::PathBuf::from("BENCH_x.json"));
    }

    #[test]
    fn out_flag_requires_a_path() {
        let e = HarnessArgs::parse(vec!["--out".into()]).unwrap_err();
        assert_eq!(e.arg, "out");
        assert_eq!(e.value, "<missing>");
    }

    #[test]
    fn trace_flag_parses_and_zero_disables() {
        let a = HarnessArgs::parse(vec!["--trace".into(), "4096".into()]).unwrap();
        assert_eq!(a.trace, Some(4096));
        assert_eq!(a.trace_capacity(), Some(4096));
        let b = HarnessArgs::parse(vec!["--trace".into(), "0".into()]).unwrap();
        assert_eq!(b.trace, Some(0));
        assert_eq!(b.trace_capacity(), None, "--trace 0 forces tracing off");
    }

    #[test]
    fn trace_flag_rejects_garbage() {
        for bad in [vec!["--trace".into()], vec!["--trace".into(), "big".into()]] {
            let e = HarnessArgs::parse(bad).unwrap_err();
            assert_eq!(e.arg, "trace");
        }
    }

    #[test]
    fn threads_flag_rejects_garbage() {
        for bad in [vec!["--threads".into()], vec!["--threads".into(), "zero".into()], vec!["--threads".into(), "0".into()]] {
            let e = HarnessArgs::parse(bad).unwrap_err();
            assert_eq!(e.arg, "threads");
        }
    }

    #[test]
    fn malformed_seed_is_an_error() {
        let e = HarnessArgs::parse(vec!["x".into()]).unwrap_err();
        assert_eq!(e.arg, "seed");
        assert_eq!(e.value, "x");
        assert!(e.to_string().contains("seed"));
    }

    #[test]
    fn malformed_scale_is_an_error() {
        let e = HarnessArgs::parse(vec!["7".into(), "wide".into()]).unwrap_err();
        assert_eq!(e.arg, "scale");
        assert_eq!(e.value, "wide");
    }

    #[test]
    fn zero_scale_is_an_error() {
        // Previously clamped to 1 silently; a zero-work sweep is a typo.
        let e = HarnessArgs::parse(vec!["7".into(), "0".into()]).unwrap_err();
        assert_eq!(e.arg, "scale");
        assert_eq!(e.value, "0");
    }

    #[test]
    fn negative_seed_is_an_error() {
        let e = HarnessArgs::parse(vec!["-3".into()]).unwrap_err();
        assert_eq!(e.arg, "seed");
    }
}

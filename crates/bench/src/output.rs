//! The shared JSON-lines output writer every `bench-*` binary routes its
//! results through.
//!
//! Benchmarks print one JSON object per line on stdout so runs can be
//! piped and diffed; `--out <path>` additionally mirrors every line to a
//! file so CI can archive an artifact without scraping stdout. This module
//! is that policy in one place: [`JsonlWriter::line`] always prints to
//! stdout and appends to the mirror file when one is open, so the two
//! views of a run can never disagree.

use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// A JSON-lines sink: stdout, plus an optional mirror file.
#[derive(Debug)]
pub struct JsonlWriter {
    file: Option<(PathBuf, File)>,
}

impl JsonlWriter {
    /// A writer that prints to stdout only.
    #[must_use]
    pub fn stdout_only() -> Self {
        JsonlWriter { file: None }
    }

    /// A writer that prints to stdout and mirrors every line to `out`
    /// (truncating an existing file), or stdout only when `out` is `None`
    /// — pass `args.out.as_deref()` straight through.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(out: Option<&Path>) -> io::Result<Self> {
        let file = match out {
            Some(p) => Some((p.to_path_buf(), File::create(p)?)),
            None => None,
        };
        Ok(JsonlWriter { file })
    }

    /// Like [`JsonlWriter::create`], but exits with the error on stderr
    /// (status 1) instead of returning it — the uniform `bench-*` policy
    /// for an unwritable `--out` path.
    #[must_use]
    pub fn create_or_exit(out: Option<&Path>) -> Self {
        Self::create(out).unwrap_or_else(|e| {
            let shown = out.map_or_else(|| "<stdout>".into(), |p| p.display().to_string());
            eprintln!("failed to open {shown}: {e}");
            std::process::exit(1);
        })
    }

    /// The mirror-file path, when one is open.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.file.as_ref().map(|(p, _)| p.as_path())
    }

    /// Writes one JSON line: to stdout always, and to the mirror file when
    /// one is open. `line` must not contain a newline of its own.
    ///
    /// # Errors
    ///
    /// Propagates the mirror file's write error (stdout errors abort the
    /// process the way `println!` does).
    pub fn line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "one JSON object per line");
        println!("{line}");
        if let Some((_, f)) = &mut self.file {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }

    /// [`JsonlWriter::line`] with the uniform exit-on-error policy: a
    /// failed mirror write reports the path on stderr and exits 1.
    pub fn line_or_exit(&mut self, line: &str) {
        if let Err(e) = self.line(line) {
            let shown = self.path().map_or_else(|| "<stdout>".into(), |p| p.display().to_string());
            eprintln!("failed to write {shown}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdout_only_has_no_path() {
        let mut w = JsonlWriter::stdout_only();
        assert_eq!(w.path(), None);
        w.line("{\"ok\":true}").unwrap();
    }

    #[test]
    fn mirrors_every_line_to_the_file() {
        let dir = std::env::temp_dir().join("mee_jsonl_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let mut w = JsonlWriter::create(Some(&path)).unwrap();
        assert_eq!(w.path(), Some(path.as_path()));
        w.line("{\"a\":1}").unwrap();
        w.line("{\"b\":2}").unwrap();
        drop(w);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn create_truncates_a_previous_run() {
        let dir = std::env::temp_dir().join("mee_jsonl_writer_truncate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        std::fs::write(&path, "stale\n").unwrap();
        let mut w = JsonlWriter::create(Some(&path)).unwrap();
        w.line("{\"fresh\":1}").unwrap();
        drop(w);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"fresh\":1}\n");
    }

    #[test]
    fn create_none_is_stdout_only() {
        let w = JsonlWriter::create(None).unwrap();
        assert_eq!(w.path(), None);
    }

    #[test]
    fn unwritable_path_is_an_error() {
        let bad = Path::new("/nonexistent-dir-mee/out.jsonl");
        assert!(JsonlWriter::create(Some(bad)).is_err());
    }
}

//! Resilience-sweep benchmark reporting: one JSON line per
//! (session, intensity) cell plus one aggregate object, written both to
//! stdout and to `BENCH_resilience.json` so the fault-tolerance trajectory
//! can be diffed across commits (ci.sh checks the schema).
//!
//! A cell line carries everything needed to replay it alone: the session's
//! split seed (feed it to `run_resilience`) and the fault intensity label.
//! The aggregate pools the three intensities across sessions and reports
//! the headline robustness numbers: how hard the heavy plan degrades the
//! raw channel, and what the recovering stack still delivers.

use std::io::Write as _;
use std::path::Path;

/// One (session, intensity) cell of a resilience sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityRecord {
    /// Session position in the sweep.
    pub index: usize,
    /// The session's split seed (replayable standalone).
    pub seed: u64,
    /// Fault-plan intensity label (`off` / `light` / `heavy`).
    pub intensity: &'static str,
    /// Fault events that actually fired across the session's phases.
    pub faults_applied: usize,
    /// Raw (non-recovering) bit error rate.
    pub raw_ber: f64,
    /// Bit error rate after session-level self-healing (no ARQ).
    pub robust_ber: f64,
    /// Residual error rate of the recovering ARQ stack.
    pub residual_rate: f64,
    /// ARQ retransmissions.
    pub retransmissions: usize,
    /// Times the ARQ widened its timing window.
    pub window_escalations: usize,
    /// The timing window the ARQ finished on, in cycles.
    pub final_window_cycles: u64,
    /// Honest measured goodput of the ARQ transfer.
    pub goodput_kbps: f64,
}

impl IntensityRecord {
    /// The cell as one JSON line.
    pub fn json_line(&self, sweep_name: &str) -> String {
        format!(
            "{{\"name\":\"{sweep_name}/cell\",\"index\":{},\"seed\":{},\"intensity\":\"{}\",\
             \"faults_applied\":{},\"raw_ber\":{:.4},\"robust_ber\":{:.4},\
             \"residual_rate\":{:.4},\"retransmissions\":{},\"window_escalations\":{},\
             \"final_window_cycles\":{},\"goodput_kbps\":{:.2}}}",
            self.index,
            self.seed,
            self.intensity,
            self.faults_applied,
            self.raw_ber,
            self.robust_ber,
            self.residual_rate,
            self.retransmissions,
            self.window_escalations,
            self.final_window_cycles,
            self.goodput_kbps,
        )
    }
}

/// A finished resilience sweep: plan parameters plus per-cell records.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Sweep name (`group/case`).
    pub name: String,
    /// Root seed the session seeds were split from.
    pub root_seed: u64,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Payload bits per phase per session.
    pub bits_per_session: usize,
    /// Per-cell records, session-major, intensities in plan order.
    pub records: Vec<IntensityRecord>,
}

impl ResilienceReport {
    fn pooled_ber(&self, intensity: &str) -> f64 {
        let cells: Vec<&IntensityRecord> = self
            .records
            .iter()
            .filter(|r| r.intensity == intensity)
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|r| r.raw_ber).sum::<f64>() / cells.len() as f64
    }

    /// How many times worse the heavy plan makes the raw channel,
    /// relative to the unfaulted baseline. A clean baseline is floored at
    /// one pooled error-rate quantum so the ratio stays finite.
    pub fn degradation_x(&self) -> f64 {
        let floor = 1.0 / (self.bits_per_session.max(1) as f64);
        self.pooled_ber("heavy") / self.pooled_ber("off").max(floor)
    }

    /// The worst residual error rate of the recovering stack anywhere in
    /// the sweep.
    pub fn residual_worst(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.residual_rate)
            .fold(0.0, f64::max)
    }

    /// The aggregate as one JSON object — the `BENCH_resilience.json`
    /// schema.
    pub fn aggregate_json(&self) -> String {
        let sessions = self
            .records
            .iter()
            .map(|r| r.index)
            .max()
            .map_or(0, |m| m + 1);
        let heavy: Vec<&IntensityRecord> = self
            .records
            .iter()
            .filter(|r| r.intensity == "heavy")
            .collect();
        let retx: usize = heavy.iter().map(|r| r.retransmissions).sum();
        let escalations: usize = heavy.iter().map(|r| r.window_escalations).sum();
        let goodput_heavy_mean = if heavy.is_empty() {
            0.0
        } else {
            heavy.iter().map(|r| r.goodput_kbps).sum::<f64>() / heavy.len() as f64
        };
        format!(
            "{{\"name\":{:?},\"root_seed\":{},\"sessions\":{},\"threads\":{},\
             \"bits_per_session\":{},\"raw_ber_off\":{:.4},\"raw_ber_light\":{:.4},\
             \"raw_ber_heavy\":{:.4},\"degradation_x\":{:.2},\"residual_worst\":{:.4},\
             \"retransmissions_heavy\":{},\"window_escalations_heavy\":{},\
             \"goodput_heavy_kbps\":{:.2}}}",
            self.name,
            self.root_seed,
            sessions,
            self.threads,
            self.bits_per_session,
            self.pooled_ber("off"),
            self.pooled_ber("light"),
            self.pooled_ber("heavy"),
            self.degradation_x(),
            self.residual_worst(),
            retx,
            escalations,
            goodput_heavy_mean,
        )
    }

    /// Prints one line per cell followed by the aggregate line.
    pub fn emit(&self) -> &Self {
        for r in &self.records {
            println!("{}", r.json_line(&self.name));
        }
        println!("{}", self.aggregate_json());
        self
    }

    /// Writes the aggregate object (with a trailing newline) to `path` —
    /// conventionally `BENCH_resilience.json` in the repository root.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.aggregate_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ResilienceReport {
        let cell = |index: usize, intensity: &'static str, raw_ber: f64| IntensityRecord {
            index,
            seed: 500 + index as u64,
            intensity,
            faults_applied: if intensity == "off" { 0 } else { 40 },
            raw_ber,
            robust_ber: raw_ber / 2.0,
            residual_rate: 0.0,
            retransmissions: if intensity == "heavy" { 6 } else { 0 },
            window_escalations: usize::from(intensity == "heavy"),
            final_window_cycles: if intensity == "heavy" { 60_000 } else { 15_000 },
            goodput_kbps: if intensity == "heavy" { 2.0 } else { 16.0 },
        };
        ResilienceReport {
            name: "resilience/fault_sweep".into(),
            root_seed: 2019,
            threads: 2,
            bits_per_session: 64,
            records: vec![
                cell(0, "off", 0.02),
                cell(0, "light", 0.03),
                cell(0, "heavy", 0.12),
                cell(1, "off", 0.02),
                cell(1, "light", 0.02),
                cell(1, "heavy", 0.16),
            ],
        }
    }

    #[test]
    fn aggregate_pools_per_intensity() {
        let r = report();
        assert!((r.degradation_x() - 7.0).abs() < 1e-9, "{}", r.degradation_x());
        assert_eq!(r.residual_worst(), 0.0);
        let json = r.aggregate_json();
        for key in [
            "\"name\"",
            "\"root_seed\"",
            "\"sessions\"",
            "\"threads\"",
            "\"bits_per_session\"",
            "\"raw_ber_off\"",
            "\"raw_ber_light\"",
            "\"raw_ber_heavy\"",
            "\"degradation_x\"",
            "\"residual_worst\"",
            "\"retransmissions_heavy\"",
            "\"window_escalations_heavy\"",
            "\"goodput_heavy_kbps\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"sessions\":2"));
        assert!(json.contains("\"retransmissions_heavy\":12"));
    }

    #[test]
    fn degradation_ratio_survives_a_clean_baseline() {
        let mut r = report();
        for rec in r.records.iter_mut().filter(|r| r.intensity == "off") {
            rec.raw_ber = 0.0;
        }
        let d = r.degradation_x();
        assert!(d.is_finite() && d > 0.0, "ratio {d} must stay finite");
    }

    #[test]
    fn cell_lines_carry_the_replay_seed_and_intensity() {
        let r = report();
        let line = r.records[2].json_line(&r.name);
        assert!(line.contains("\"seed\":500"), "line: {line}");
        assert!(line.contains("\"intensity\":\"heavy\""), "line: {line}");
    }

    #[test]
    fn write_emits_one_json_object() {
        let r = report();
        let dir = std::env::temp_dir().join("mee_resilience_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_resilience.json");
        r.write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim(), r.aggregate_json());
    }
}

//! Sweep-level benchmark reporting: one JSON line per session plus one
//! aggregate object, written both to stdout and to `BENCH_sweep.json` so
//! the trajectory can be diffed across commits (ci.sh checks the schema).
//!
//! A session line carries everything needed to replay that session alone:
//! its index, its split seed (feed it to `AttackSetup::new` /
//! `run_channel_sweep` with one session), and the measured statistics. The
//! aggregate pools bit-error rates and host-side wall time across the
//! sweep with nearest-rank percentiles.

use std::io::Write as _;
use std::path::Path;

/// One session of a benchmarked sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Position in the sweep.
    pub index: usize,
    /// The session's split seed (replayable standalone).
    pub seed: u64,
    /// Payload length in bits.
    pub bits: usize,
    /// Positional bit errors.
    pub bit_errors: usize,
    /// Achieved rate in KB/s of simulated time.
    pub kbps: f64,
    /// Median spy probe time in simulated cycles.
    pub probe_p50_cycles: u64,
    /// 95th-percentile spy probe time in simulated cycles.
    pub probe_p95_cycles: u64,
    /// Host wall time of the whole session (establish + transmit).
    pub host_ns: f64,
}

impl SessionRecord {
    /// The session as one JSON line.
    pub fn json_line(&self, sweep_name: &str) -> String {
        format!(
            "{{\"name\":\"{sweep_name}/session\",\"index\":{},\"seed\":{},\"bits\":{},\
             \"bit_errors\":{},\"kbps\":{:.1},\"probe_p50_cycles\":{},\"probe_p95_cycles\":{},\
             \"host_ns\":{:.1}}}",
            self.index,
            self.seed,
            self.bits,
            self.bit_errors,
            self.kbps,
            self.probe_p50_cycles,
            self.probe_p95_cycles,
            self.host_ns
        )
    }
}

/// A finished sweep: plan parameters plus per-session records.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (`group/case`).
    pub name: String,
    /// Root seed the session seeds were split from.
    pub root_seed: u64,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Bits transmitted per session.
    pub bits_per_session: usize,
    /// Per-session records, in session order.
    pub records: Vec<SessionRecord>,
}

/// Nearest-rank percentile of an unsorted sample set.
fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sweep");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl SweepReport {
    /// Pooled bit-error rate across every session.
    pub fn ber_mean(&self) -> f64 {
        let bits: usize = self.records.iter().map(|r| r.bits).sum();
        let errors: usize = self.records.iter().map(|r| r.bit_errors).sum();
        errors as f64 / bits as f64
    }

    /// The `p`-th percentile of per-session bit-error rates.
    pub fn ber_percentile(&self, p: f64) -> f64 {
        let rates: Vec<f64> = self
            .records
            .iter()
            .map(|r| r.bit_errors as f64 / r.bits as f64)
            .collect();
        percentile(&rates, p)
    }

    /// The `p`-th percentile of per-session host wall time.
    pub fn host_ns_percentile(&self, p: f64) -> f64 {
        let ns: Vec<f64> = self.records.iter().map(|r| r.host_ns).collect();
        percentile(&ns, p)
    }

    /// The aggregate as one JSON object — the `BENCH_sweep.json` schema.
    pub fn aggregate_json(&self) -> String {
        let kbps: Vec<f64> = self.records.iter().map(|r| r.kbps).collect();
        let probe_p50: Vec<f64> = self
            .records
            .iter()
            .map(|r| r.probe_p50_cycles as f64)
            .collect();
        let probe_p95: Vec<f64> = self
            .records
            .iter()
            .map(|r| r.probe_p95_cycles as f64)
            .collect();
        format!(
            "{{\"name\":{:?},\"root_seed\":{},\"sessions\":{},\"threads\":{},\
             \"bits_per_session\":{},\"ber_mean\":{:.4},\"ber_p95\":{:.4},\
             \"kbps_p50\":{:.1},\"kbps_p95\":{:.1},\"probe_p50_cycles\":{:.0},\
             \"probe_p95_cycles\":{:.0},\"host_ns_p50\":{:.1},\"host_ns_p90\":{:.1},\
             \"host_ns_p95\":{:.1},\"host_ns_p99\":{:.1}}}",
            self.name,
            self.root_seed,
            self.records.len(),
            self.threads,
            self.bits_per_session,
            self.ber_mean(),
            self.ber_percentile(95.0),
            percentile(&kbps, 50.0),
            percentile(&kbps, 95.0),
            percentile(&probe_p50, 50.0),
            percentile(&probe_p95, 95.0),
            self.host_ns_percentile(50.0),
            self.host_ns_percentile(90.0),
            self.host_ns_percentile(95.0),
            self.host_ns_percentile(99.0),
        )
    }

    /// Prints one line per session followed by the aggregate line.
    pub fn emit(&self) -> &Self {
        for r in &self.records {
            println!("{}", r.json_line(&self.name));
        }
        println!("{}", self.aggregate_json());
        self
    }

    /// Writes the aggregate object (with a trailing newline) to `path` —
    /// conventionally `BENCH_sweep.json` in the repository root.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.aggregate_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SweepReport {
        SweepReport {
            name: "channel/seed_sweep".into(),
            root_seed: 2019,
            threads: 2,
            bits_per_session: 10,
            records: (0..4)
                .map(|i| SessionRecord {
                    index: i,
                    seed: 100 + i as u64,
                    bits: 10,
                    bit_errors: i,
                    kbps: 35.0 + i as f64,
                    probe_p50_cycles: 480,
                    probe_p95_cycles: 700 + i as u64,
                    host_ns: 1000.0 * (i + 1) as f64,
                })
                .collect(),
        }
    }

    #[test]
    fn aggregate_pools_and_ranks() {
        let r = report();
        // 0+1+2+3 errors over 40 bits.
        assert!((r.ber_mean() - 0.15).abs() < 1e-12);
        assert!((r.ber_percentile(95.0) - 0.3).abs() < 1e-12);
        assert_eq!(r.host_ns_percentile(50.0), 3000.0);
        let json = r.aggregate_json();
        for key in [
            "\"name\"",
            "\"root_seed\"",
            "\"sessions\"",
            "\"threads\"",
            "\"bits_per_session\"",
            "\"ber_mean\"",
            "\"ber_p95\"",
            "\"kbps_p50\"",
            "\"kbps_p95\"",
            "\"probe_p50_cycles\"",
            "\"probe_p95_cycles\"",
            "\"host_ns_p50\"",
            "\"host_ns_p90\"",
            "\"host_ns_p95\"",
            "\"host_ns_p99\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"sessions\":4"));
    }

    #[test]
    fn session_lines_carry_the_replay_seed() {
        let r = report();
        let line = r.records[2].json_line(&r.name);
        assert!(line.contains("\"seed\":102"), "line: {line}");
        assert!(line.contains("\"index\":2"), "line: {line}");
    }

    #[test]
    fn write_emits_one_json_object() {
        let r = report();
        let dir = std::env::temp_dir().join("mee_sweep_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sweep.json");
        r.write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim(), r.aggregate_json());
    }
}

//! The set-associative cache model.

use mee_types::{LineAddr, ModelError};

use crate::policy::{Policy, ReplacementPolicy};
use crate::stats::CacheStats;

/// Geometry of a set-associative cache.
///
/// ```
/// use mee_cache::CacheConfig;
///
/// # fn main() -> Result<(), mee_types::ModelError> {
/// let mee = CacheConfig::from_capacity(64 * 1024, 8, 64)?;
/// assert_eq!((mee.sets, mee.ways), (128, 8));
/// assert_eq!(mee.capacity_bytes(), 64 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Number of ways per set.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_size: usize,
}

impl CacheConfig {
    /// Builds a config from total capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if the capacity is not evenly
    /// divisible into power-of-two sets of `ways` lines, or any parameter
    /// is zero.
    pub fn from_capacity(
        capacity_bytes: usize,
        ways: usize,
        line_size: usize,
    ) -> Result<Self, ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        if ways == 0 || line_size == 0 || capacity_bytes == 0 {
            return fail("cache parameters must be non-zero".into());
        }
        if !line_size.is_power_of_two() {
            return fail(format!("line size {line_size} is not a power of two"));
        }
        let lines = capacity_bytes / line_size;
        if lines * line_size != capacity_bytes {
            return fail(format!(
                "capacity {capacity_bytes} is not a multiple of line size {line_size}"
            ));
        }
        let sets = lines / ways;
        if sets * ways != lines {
            return fail(format!("{lines} lines do not divide into {ways} ways"));
        }
        if !sets.is_power_of_two() {
            return fail(format!("set count {sets} is not a power of two"));
        }
        Ok(CacheConfig {
            sets,
            ways,
            line_size,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_size
    }
}

/// Outcome of one [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was already resident.
    pub hit: bool,
    /// The line evicted to make room, when the fill displaced one.
    pub evicted: Option<LineAddr>,
    /// The set the line maps to.
    pub set: usize,
}

/// A physically indexed, physically tagged set-associative cache.
///
/// Stores tags only — the simulator models *where data is*, not the data
/// itself (the functional memory contents live in `mee-mem`/`mee-tree`).
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// `tags[set * cfg.ways + way]`: the resident line encoded as
    /// `raw + 1`, or [`EMPTY`] (`0`) for an empty way. A flat array of
    /// plain words keeps the way scan — the single hottest loop in the
    /// simulator — branchless and vectorizable, and a fresh cache is one
    /// zeroed allocation.
    tags: Vec<u64>,
    policy: Policy,
    stats: CacheStats,
    /// Resident-line count, so empty-cache invalidation sweeps are O(1).
    resident: usize,
    /// Scratch "allowed ways" mask reused across calls.
    allowed: Vec<bool>,
    /// `sets - 1` when the set count is a power of two (the standard
    /// geometry), so [`Self::set_of`] is an AND instead of a hardware
    /// divide — it runs several times per simulated memory op. `None`
    /// falls back to the modulo for exotic hand-built geometries.
    set_mask: Option<u64>,
}

/// Tag encoding of "no line".
const EMPTY: u64 = 0;

/// Encodes a line for tag storage (`raw + 1`, so zero means empty).
#[inline]
fn encode(line: LineAddr) -> u64 {
    line.raw() + 1
}

/// Decodes a non-[`EMPTY`] tag back to its line.
#[inline]
fn decode(tag: u64) -> LineAddr {
    debug_assert_ne!(tag, EMPTY);
    LineAddr::new(tag - 1)
}

impl std::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("cfg", &self.cfg)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and policy.
    ///
    /// Accepts a concrete policy by value (statically dispatched — the fast
    /// path) or a `Box<dyn ReplacementPolicy>` for external policies.
    pub fn new(cfg: CacheConfig, policy: impl Into<Policy>) -> Self {
        let mut policy = policy.into();
        policy.attach(cfg.sets, cfg.ways);
        SetAssocCache {
            tags: vec![EMPTY; cfg.sets * cfg.ways],
            allowed: vec![true; cfg.ways],
            set_mask: cfg
                .sets
                .is_power_of_two()
                .then(|| cfg.sets as u64 - 1),
            cfg,
            policy,
            stats: CacheStats::new(),
            resident: 0,
        }
    }

    /// Returns the cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Returns the set index `line` maps to.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        match self.set_mask {
            Some(mask) => (line.raw() & mask) as usize,
            None => line.set_index(self.cfg.sets),
        }
    }

    /// Accesses `line`: on a miss the line is filled, possibly evicting a
    /// victim chosen by the replacement policy.
    ///
    /// Equivalent to [`Self::access_in_ways`] with an all-`true` mask, but
    /// allocation-free: this is the path every simulated memory op takes.
    pub fn access(&mut self, line: LineAddr) -> AccessResult {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        let tag = encode(line);
        let ways = &self.tags[base..base + self.cfg.ways];

        // One pass finds the hit way and, failing that, the first empty
        // way — the separate empty scan would re-walk the same tags.
        let mut empty = None;
        let mut hit = None;
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                hit = Some(w);
                break;
            }
            if t == EMPTY && empty.is_none() {
                empty = Some(w);
            }
        }
        if let Some(way) = hit {
            self.policy.on_hit(set, way);
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
                set,
            };
        }

        self.stats.misses += 1;
        let (way, evicted) = match empty {
            Some(w) => {
                self.resident += 1;
                (w, None)
            }
            None => {
                // No empty way means every way is occupied, so the victim
                // mask is all-true — take the policy's mask-free path.
                let w = self.policy.victim_all(set, self.cfg.ways);
                self.stats.evictions += 1;
                (w, Some(decode(self.tags[base + w])))
            }
        };
        self.tags[base + way] = tag;
        self.policy.on_fill(set, way);
        AccessResult {
            hit: false,
            evicted,
            set,
        }
    }

    /// Accesses `line`, but restricts fills (and victim selection) to the
    /// ways marked `true` in `way_mask` — the primitive behind way
    /// partitioning (§5.5 mitigation experiments).
    ///
    /// A *hit* in a disallowed way still counts as a hit: partitioning
    /// controls insertion, not lookup.
    ///
    /// # Panics
    ///
    /// Panics if `way_mask.len() != ways` or no way is allowed.
    pub fn access_in_ways(&mut self, line: LineAddr, way_mask: &[bool]) -> AccessResult {
        assert_eq!(way_mask.len(), self.cfg.ways, "way mask length mismatch");
        assert!(way_mask.iter().any(|&b| b), "way mask allows no ways");
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        let tag = encode(line);

        // Hit path.
        if let Some(way) = self.find_way(set, line) {
            self.policy.on_hit(set, way);
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
                set,
            };
        }

        // Miss path: prefer an empty allowed way.
        self.stats.misses += 1;
        let empty =
            (0..self.cfg.ways).find(|&w| way_mask[w] && self.tags[base + w] == EMPTY);
        let (way, evicted) = match empty {
            Some(w) => (w, None),
            None => {
                self.allowed.copy_from_slice(way_mask);
                // Only occupied ways can be victims; merge with the mask.
                for w in 0..self.cfg.ways {
                    self.allowed[w] &= self.tags[base + w] != EMPTY;
                }
                if !self.allowed.iter().any(|&b| b) {
                    // All allowed ways are empty? Impossible here (handled
                    // above), but all *occupied* ways may be disallowed:
                    // evict within the mask regardless.
                    self.allowed.copy_from_slice(way_mask);
                }
                let allowed = std::mem::take(&mut self.allowed);
                let w = self.policy.victim(set, &allowed);
                self.allowed = allowed;
                let old = self.tags[base + w];
                self.tags[base + w] = EMPTY;
                if old != EMPTY {
                    self.stats.evictions += 1;
                    self.resident -= 1;
                }
                (w, (old != EMPTY).then(|| decode(old)))
            }
        };
        if self.tags[base + way] == EMPTY {
            self.resident += 1;
        }
        self.tags[base + way] = tag;
        self.policy.on_fill(set, way);
        AccessResult {
            hit: false,
            evicted,
            set,
        }
    }

    /// [`Self::access`] followed immediately by [`Self::invalidate`] of the
    /// same line — the per-level step of an establishment read-then-`clflush`
    /// sweep, fused so one set lookup and one way scan replace the two of
    /// each. The observable outcome is identical to the split calls: both
    /// policy transitions (`on_hit`/`on_fill`, then `on_invalidate`) fire,
    /// every statistics counter advances the same way, and the filled way
    /// ends empty — the fill's tag write is simply never materialized. The
    /// seeded property test `fused_access_invalidate_matches_split` holds
    /// the two paths together under random interleavings for every policy.
    ///
    /// **The equivalence is local to this cache, with the two halves
    /// adjacent.** Composing the fusion across a multi-level hierarchy
    /// moves this cache's `on_invalidate` ahead of whatever the split
    /// sequence interleaves between the halves — e.g. an inclusive outer
    /// level's victim back-invalidation into the same set — and per-set
    /// replacement-policy updates do not commute in general. That is why
    /// `mee-machine`'s sweep pair issues the split calls in split order
    /// rather than fusing per level.
    ///
    /// Returns the access's [`AccessResult`]; the line is no longer
    /// resident on return.
    #[must_use = "an evicted victim must be back-invalidated by inclusive outer levels"]
    pub fn access_then_invalidate(&mut self, line: LineAddr) -> AccessResult {
        let set = self.set_of(line);
        let base = set * self.cfg.ways;
        let tag = encode(line);
        let ways = &self.tags[base..base + self.cfg.ways];

        // Same fused single-pass scan as [`Self::access`].
        let mut empty = None;
        let mut hit = None;
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                hit = Some(w);
                break;
            }
            if t == EMPTY && empty.is_none() {
                empty = Some(w);
            }
        }
        if let Some(way) = hit {
            // Hit, then invalidate finds the same way.
            self.policy.on_hit(set, way);
            self.stats.hits += 1;
            self.tags[base + way] = EMPTY;
            self.resident -= 1;
            self.policy.on_invalidate(set, way);
            self.stats.invalidations += 1;
            return AccessResult {
                hit: true,
                evicted: None,
                set,
            };
        }

        self.stats.misses += 1;
        let (way, evicted) = match empty {
            // Fill into an empty way then invalidate it: the tag write and
            // the resident `+1`/`-1` cancel exactly.
            Some(w) => (w, None),
            None => {
                let w = self.policy.victim_all(set, self.cfg.ways);
                self.stats.evictions += 1;
                let victim = decode(self.tags[base + w]);
                // The fill replaces the victim (resident unchanged) and the
                // invalidate then empties the way (resident -1).
                self.tags[base + w] = EMPTY;
                self.resident -= 1;
                (w, Some(victim))
            }
        };
        // The tags cancel but the policy sees both transitions — their
        // composition is policy-specific state, not a no-op.
        self.policy.on_fill(set, way);
        self.policy.on_invalidate(set, way);
        self.stats.invalidations += 1;
        AccessResult {
            hit: false,
            evicted,
            set,
        }
    }

    /// Non-destructive residence check (no policy or stats update).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(self.set_of(line), line).is_some()
    }

    /// Invalidates `line` if resident; returns whether it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        if self.resident == 0 {
            // Nothing cached (idle cores' private caches during a clflush
            // broadcast): skip the way scan entirely.
            return false;
        }
        let set = self.set_of(line);
        if let Some(way) = self.find_way(set, line) {
            self.tags[set * self.cfg.ways + way] = EMPTY;
            self.resident -= 1;
            self.policy.on_invalidate(set, way);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Empties the whole cache, keeping statistics.
    pub fn invalidate_all(&mut self) {
        self.tags.fill(EMPTY);
        self.resident = 0;
        // Re-attach to reset policy metadata.
        self.policy.attach(self.cfg.sets, self.cfg.ways);
    }

    /// Invalidates every resident line of one set (a co-runner thrashing
    /// exactly that set); returns how many lines were dropped.
    ///
    /// # Panics
    ///
    /// Panics if `set >= sets`.
    pub fn invalidate_set(&mut self, set: usize) -> usize {
        assert!(set < self.cfg.sets, "set {set} out of range");
        let base = set * self.cfg.ways;
        let mut dropped = 0;
        for way in 0..self.cfg.ways {
            if self.tags[base + way] != EMPTY {
                self.tags[base + way] = EMPTY;
                self.policy.on_invalidate(set, way);
                self.stats.invalidations += 1;
                dropped += 1;
            }
        }
        self.resident -= dropped;
        dropped
    }

    /// Invalidates a contiguous run of `count` lines starting at `first` —
    /// the back-invalidation broadcast of a page-granular event (EPC
    /// eviction, migration) coalesced into one pass over the flat tag
    /// array instead of `count` separate calls. Per-line effects (policy
    /// `on_invalidate` calls, statistics) are identical, in identical
    /// ascending-line order, to calling [`Self::invalidate`] once per
    /// line; only the host cost changes. Returns how many lines were
    /// dropped.
    #[must_use = "the dropped-line count distinguishes a no-op broadcast from real work"]
    pub fn invalidate_range(&mut self, first: LineAddr, count: u64) -> usize {
        if self.resident == 0 {
            // Nothing cached (idle cores' private caches during a page
            // broadcast): skip the whole pass.
            return 0;
        }
        let sets = self.cfg.sets;
        let ways = self.cfg.ways;
        let first_set = self.set_of(first);
        if (count as usize) <= sets && first_set + count as usize <= sets {
            // The run maps to `count` consecutive distinct sets (always
            // true for a page-aligned 64-line run once `sets >= 64`, i.e.
            // every on-chip cache of the default machine): one linear
            // pass over the contiguous tag window, at most one match per
            // set, stopping early once the cache drains.
            let mut dropped = 0;
            for i in 0..count as usize {
                let set = first_set + i;
                let tag = encode(LineAddr::new(first.raw() + i as u64));
                let base = set * ways;
                if let Some(way) = self.tags[base..base + ways].iter().position(|&t| t == tag) {
                    self.tags[base + way] = EMPTY;
                    self.resident -= 1;
                    self.policy.on_invalidate(set, way);
                    self.stats.invalidations += 1;
                    dropped += 1;
                    if self.resident == 0 {
                        break;
                    }
                }
            }
            dropped
        } else {
            // A run longer than the set count (or crossing the set-index
            // wrap) can alias several lines into one set: fall back to
            // per-line invalidation, which handles aliasing exactly.
            (0..count)
                .filter(|&i| self.invalidate(LineAddr::new(first.raw() + i)))
                .count()
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.resident
    }

    /// Number of resident lines in one set.
    ///
    /// # Panics
    ///
    /// Panics if `set >= sets`.
    pub fn set_occupancy(&self, set: usize) -> usize {
        assert!(set < self.cfg.sets, "set {set} out of range");
        let base = set * self.cfg.ways;
        self.tags[base..base + self.cfg.ways]
            .iter()
            .filter(|&&t| t != EMPTY)
            .count()
    }

    /// Iterates over all resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.tags
            .iter()
            .filter(|&&t| t != EMPTY)
            .map(|&t| decode(t))
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    #[inline]
    fn find_way(&self, set: usize, line: LineAddr) -> Option<usize> {
        let base = set * self.cfg.ways;
        let tag = encode(line);
        self.tags[base..base + self.cfg.ways]
            .iter()
            .position(|&t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{TreePlru, TrueLru};
    use mee_rng::prop::{check, pick, vec_of, PropConfig};

    fn small_lru() -> SetAssocCache {
        let cfg = CacheConfig::from_capacity(4 * 64, 2, 64).unwrap(); // 2 sets x 2 ways
        SetAssocCache::new(cfg, TrueLru::new())
    }

    #[test]
    fn config_from_capacity() {
        let cfg = CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap();
        assert_eq!(cfg.sets, 128);
        assert_eq!(cfg.capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn config_rejects_bad_shapes() {
        assert!(CacheConfig::from_capacity(0, 8, 64).is_err());
        assert!(CacheConfig::from_capacity(64 * 1024, 0, 64).is_err());
        assert!(CacheConfig::from_capacity(64 * 1024, 8, 0).is_err());
        assert!(CacheConfig::from_capacity(64 * 1024, 8, 96).is_err());
        assert!(CacheConfig::from_capacity(100, 1, 64).is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig::from_capacity(3 * 2 * 64, 2, 64).is_err());
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_lru();
        let line = LineAddr::new(0);
        let first = c.access(line);
        assert!(!first.hit);
        assert_eq!(first.evicted, None);
        assert!(c.access(line).hit);
        assert!(c.contains(line));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_in_lru_order() {
        let mut c = small_lru(); // 2 sets
        // Lines 0, 2, 4 all map to set 0.
        let l0 = LineAddr::new(0);
        let l2 = LineAddr::new(2);
        let l4 = LineAddr::new(4);
        c.access(l0);
        c.access(l2);
        let r = c.access(l4);
        assert_eq!(r.evicted, Some(l0));
        assert!(!c.contains(l0));
        assert!(c.contains(l2));
        assert!(c.contains(l4));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_set_empties_only_that_set() {
        let mut c = small_lru();
        c.access(LineAddr::new(0)); // set 0
        c.access(LineAddr::new(2)); // set 0
        c.access(LineAddr::new(1)); // set 1
        assert_eq!(c.invalidate_set(0), 2);
        assert_eq!(c.set_occupancy(0), 0);
        assert_eq!(c.set_occupancy(1), 1);
        assert!(c.contains(LineAddr::new(1)));
        assert_eq!(c.stats().invalidations, 2);
        // Idempotent on an already-empty set.
        assert_eq!(c.invalidate_set(0), 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small_lru();
        c.access(LineAddr::new(0)); // set 0
        c.access(LineAddr::new(1)); // set 1
        c.access(LineAddr::new(2)); // set 0
        c.access(LineAddr::new(3)); // set 1
        assert_eq!(c.occupancy(), 4);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.set_occupancy(0), 2);
        assert_eq!(c.set_occupancy(1), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_lru();
        let line = LineAddr::new(6);
        c.access(line);
        assert!(c.invalidate(line));
        assert!(!c.contains(line));
        assert!(!c.invalidate(line));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = small_lru();
        for i in 0..4 {
            c.access(LineAddr::new(i));
        }
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.resident_lines().count(), 0);
    }

    #[test]
    fn contains_does_not_perturb_state() {
        let mut c = small_lru();
        let l0 = LineAddr::new(0);
        let l2 = LineAddr::new(2);
        c.access(l0);
        c.access(l2);
        let before = c.stats();
        // Probing l0 must NOT refresh it in LRU order.
        assert!(c.contains(l0));
        assert_eq!(c.stats(), before);
        let r = c.access(LineAddr::new(4));
        assert_eq!(r.evicted, Some(l0), "contains() perturbed LRU state");
    }

    /// Pinned spec-harness counterexample (invariant
    /// `invalidated-way-preferred`, exact op trace): invalidating a line
    /// must update the PLRU tree so the freed way is the preferred victim.
    /// With the pre-fix no-op `TreePlru::on_invalidate`, the masked fill
    /// below evicted D (the stale tree still pointed at way 2) instead of
    /// falling back from the freed-but-disallowed way 1 to way 0.
    #[test]
    fn invalidate_updates_plru_victim_state() {
        let cfg = CacheConfig::from_capacity(4 * 64, 4, 64).unwrap(); // 1 set x 4 ways
        let mut c = SetAssocCache::new(cfg, TreePlru::new());
        let (a, b, d, e) = (
            LineAddr::new(0),
            LineAddr::new(1),
            LineAddr::new(2),
            LineAddr::new(3),
        );
        c.access(a); // way 0
        c.access(b); // way 1
        c.access(d); // way 2
        c.access(e); // way 3
        c.access(a); // hit: tree points away from way 0
        c.access(b); // hit: tree points away from way 1 (victim would be way 2)
        assert!(c.invalidate(b)); // frees way 1; tree must now point AT way 1
        // Way-partitioned fill that may not use the freed way: the policy
        // falls back from way 1 to the first allowed way (0), evicting A.
        let mask = [true, false, true, true];
        let r = c.access_in_ways(LineAddr::new(4), &mask);
        assert_eq!(
            r.evicted,
            Some(a),
            "stale PLRU bits survived on_invalidate"
        );
    }

    #[test]
    fn way_mask_restricts_fills() {
        let cfg = CacheConfig::from_capacity(8 * 64, 8, 64).unwrap(); // 1 set x 8 ways
        let mut c = SetAssocCache::new(cfg, TrueLru::new());
        let mask: Vec<bool> = (0..8).map(|w| w < 2).collect(); // only ways 0-1
        for i in 0..4 {
            c.access_in_ways(LineAddr::new(i), &mask);
        }
        // Only 2 ways allowed: at most 2 resident at once.
        assert_eq!(c.occupancy(), 2);
        assert!(c.contains(LineAddr::new(2)));
        assert!(c.contains(LineAddr::new(3)));
    }

    #[test]
    fn hit_in_disallowed_way_still_hits() {
        let cfg = CacheConfig::from_capacity(8 * 64, 8, 64).unwrap();
        let mut c = SetAssocCache::new(cfg, TrueLru::new());
        let line = LineAddr::new(0);
        c.access(line); // fills way 0 (unrestricted)
        let mask: Vec<bool> = (0..8).map(|w| w >= 4).collect();
        assert!(c.access_in_ways(line, &mask).hit);
    }

    #[test]
    #[should_panic(expected = "allows no ways")]
    fn empty_mask_panics() {
        let mut c = small_lru();
        c.access_in_ways(LineAddr::new(0), &[false, false]);
    }

    #[test]
    fn mee_cache_shape_fills_and_self_evicts() {
        // The actual reverse-engineered shape: 128 sets x 8 ways.
        let cfg = CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap();
        let mut c = SetAssocCache::new(cfg, TreePlru::new());
        // Fill with 1024 distinct lines: exactly capacity, no evictions.
        for i in 0..1024 {
            c.access(LineAddr::new(i));
        }
        assert_eq!(c.occupancy(), 1024);
        assert_eq!(c.stats().evictions, 0);
        // One more line forces exactly one eviction in its set.
        let r = c.access(LineAddr::new(1024));
        assert!(r.evicted.is_some());
        assert_eq!(c.occupancy(), 1024);
    }

    /// Occupancy never exceeds capacity and a just-accessed line is
    /// always resident afterwards.
    #[test]
    fn occupancy_bounded_and_mru_resident() {
        check(
            "occupancy_bounded_and_mru_resident",
            &PropConfig::from_env(64),
            |rng| {
                let accesses = vec_of(rng, 1..400, |r| r.random_range(0u64..512));
                let ways = pick(rng, &[1usize, 2, 4, 8]);
                let cfg = CacheConfig::from_capacity(16 * ways * 64, ways, 64).unwrap();
                let mut c = SetAssocCache::new(cfg, TreePlru::new());
                for &a in &accesses {
                    let line = LineAddr::new(a);
                    c.access(line);
                    assert!(c.contains(line));
                    assert!(c.occupancy() <= cfg.sets * cfg.ways);
                    for s in 0..cfg.sets {
                        assert!(c.set_occupancy(s) <= cfg.ways);
                    }
                }
            },
        );
    }

    /// Stats identity: accesses = hits + misses; evictions <= misses.
    #[test]
    fn stats_identities() {
        check("stats_identities", &PropConfig::from_env(64), |rng| {
            let accesses = vec_of(rng, 1..300, |r| r.random_range(0u64..256));
            let cfg = CacheConfig::from_capacity(4 * 1024, 4, 64).unwrap();
            let mut c = SetAssocCache::new(cfg, TrueLru::new());
            for &a in &accesses {
                c.access(LineAddr::new(a));
            }
            let s = c.stats();
            assert_eq!(s.accesses(), accesses.len() as u64);
            assert!(s.evictions <= s.misses);
        });
    }

    /// `invalidate_range` is observationally identical to a per-line
    /// `invalidate` loop: same dropped count, same statistics, same
    /// residents, and — via a random access suffix — same replacement
    /// state. Exercises both the consecutive-set fast path (64+ sets) and
    /// the aliasing fallback (2 sets).
    #[test]
    fn invalidate_range_matches_per_line_loop() {
        check(
            "invalidate_range_matches_per_line_loop",
            &PropConfig::from_env(64),
            |rng| {
                let sets = pick(rng, &[2usize, 64, 128]);
                let ways = pick(rng, &[2usize, 4, 8]);
                let cfg = CacheConfig::from_capacity(sets * ways * 64, ways, 64).unwrap();
                let mut bulk = SetAssocCache::new(cfg, TreePlru::new());
                let mut serial = SetAssocCache::new(cfg, TreePlru::new());
                let warmup = vec_of(rng, 0..300, |r| r.random_range(0u64..512));
                for &a in &warmup {
                    bulk.access(LineAddr::new(a));
                    serial.access(LineAddr::new(a));
                }
                let first = LineAddr::new(rng.random_range(0u64..448));
                let count = rng.random_range(1u64..=64);
                let bulk_dropped = bulk.invalidate_range(first, count);
                let serial_dropped = (0..count)
                    .filter(|&i| serial.invalidate(LineAddr::new(first.raw() + i)))
                    .count();
                assert_eq!(bulk_dropped, serial_dropped);
                assert_eq!(bulk.stats(), serial.stats());
                assert_eq!(bulk.occupancy(), serial.occupancy());
                let mut bulk_lines: Vec<_> = bulk.resident_lines().collect();
                let mut serial_lines: Vec<_> = serial.resident_lines().collect();
                bulk_lines.sort_unstable();
                serial_lines.sort_unstable();
                assert_eq!(bulk_lines, serial_lines);
                // Replacement-policy state must match too: a suffix of
                // fills has to pick identical victims on both sides.
                let suffix = vec_of(rng, 1..200, |r| r.random_range(0u64..512));
                for &a in &suffix {
                    assert_eq!(bulk.access(LineAddr::new(a)), serial.access(LineAddr::new(a)));
                }
            },
        );
    }

    /// The fused sweep step is observationally identical to split
    /// `access` + `invalidate` calls under random op streams, for every
    /// replacement policy: same results, statistics, residents, and — via
    /// a random access suffix — same replacement state and RNG position.
    #[test]
    fn fused_access_invalidate_matches_split() {
        use crate::policy::{Fifo, Nru, RandomEviction, Srrip};
        check(
            "fused_access_invalidate_matches_split",
            &PropConfig::from_env(64),
            |rng| {
                let policy = rng.random_range(0u64..6);
                let seed = rng.random_range(0u64..1000);
                let mk = || -> Policy {
                    match policy {
                        0 => TreePlru::new().into(),
                        1 => TrueLru::new().into(),
                        2 => Fifo::new().into(),
                        3 => Nru::new().into(),
                        4 => Srrip::new().into(),
                        _ => RandomEviction::with_seed(seed).into(),
                    }
                };
                let ways = pick(rng, &[1usize, 2, 4, 8]);
                let cfg = CacheConfig::from_capacity(4 * ways * 64, ways, 64).unwrap();
                let mut fused = SetAssocCache::new(cfg, mk());
                let mut split = SetAssocCache::new(cfg, mk());
                // Random mix: plain accesses (warming residents in), fused
                // steps, and invalidations, over a small line universe so
                // hits, empty-way fills, and full-set victims all occur.
                let ops = vec_of(rng, 1..300, |r| {
                    (r.random_range(0u8..4), r.random_range(0u64..32))
                });
                for &(op, a) in &ops {
                    let line = LineAddr::new(a);
                    match op {
                        0 | 1 => {
                            assert_eq!(fused.access(line), split.access(line));
                        }
                        2 => {
                            let f = fused.access_then_invalidate(line);
                            let s = split.access(line);
                            assert!(split.invalidate(line));
                            assert_eq!(f, s);
                            assert!(!fused.contains(line));
                        }
                        _ => {
                            assert_eq!(fused.invalidate(line), split.invalidate(line));
                        }
                    }
                    assert_eq!(fused.stats(), split.stats());
                    assert_eq!(fused.occupancy(), split.occupancy());
                }
                let mut f: Vec<_> = fused.resident_lines().collect();
                let mut s: Vec<_> = split.resident_lines().collect();
                f.sort_unstable();
                s.sort_unstable();
                assert_eq!(f, s);
            },
        );
    }

    /// A line in a different set is never evicted by a fill.
    #[test]
    fn fills_only_evict_within_their_set() {
        check(
            "fills_only_evict_within_their_set",
            &PropConfig::from_env(64),
            |rng| {
                let seed = rng.random_range(0u64..1000);
                let cfg = CacheConfig::from_capacity(2 * 2 * 64, 2, 64).unwrap(); // 2 sets
                let mut c = SetAssocCache::new(cfg, TrueLru::new());
                let other_set = LineAddr::new(1); // set 1
                c.access(other_set);
                // Hammer set 0.
                for i in 0..8 {
                    let r = c.access(LineAddr::new((seed % 7 + 1) * 2 + i * 2));
                    if let Some(e) = r.evicted {
                        assert_eq!(e.set_index(2), 0);
                    }
                }
                assert!(c.contains(other_set));
            },
        );
    }
}

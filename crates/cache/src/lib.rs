#![warn(missing_docs)]
//! Set-associative cache models for the MEE covert-channel simulator.
//!
//! Every cache in the simulated machine — the private L1/L2, the shared
//! inclusive LLC, and the MEE cache itself — is an instance of
//! [`SetAssocCache`] with a pluggable [`ReplacementPolicy`].
//!
//! The replacement policy matters for the paper: §5.3 argues the MEE cache
//! uses an "approximate LRU" policy, which is why the trojan must sweep its
//! eviction set in a *forward phase followed by a backward phase* to evict
//! reliably. The [`policy::TreePlru`] implementation models exactly that
//! class of policy, and [`policy::TrueLru`]/[`policy::RandomEviction`] exist
//! so the ablation benchmark can show the difference.
//!
//! # Example
//!
//! ```
//! use mee_cache::{CacheConfig, SetAssocCache, policy::TreePlru};
//! use mee_types::LineAddr;
//!
//! # fn main() -> Result<(), mee_types::ModelError> {
//! // The MEE cache reverse-engineered by the paper: 64 KiB, 8-way, 64 B lines.
//! let cfg = CacheConfig::from_capacity(64 * 1024, 8, 64)?;
//! assert_eq!(cfg.sets, 128);
//!
//! let mut cache = SetAssocCache::new(cfg, TreePlru::new());
//! let line = LineAddr::new(0x40);
//! assert!(!cache.access(line).hit);
//! assert!(cache.access(line).hit);
//! # Ok(())
//! # }
//! ```

mod cache;
pub mod policy;
mod stats;

pub use cache::{AccessResult, CacheConfig, SetAssocCache};
pub use policy::ReplacementPolicy;
pub use stats::CacheStats;

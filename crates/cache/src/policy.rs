//! Replacement policies.
//!
//! The policy decides which way to victimize when a set is full. The paper's
//! §5.3 observes that the MEE cache behaves like an "approximate LRU" cache
//! and designs the trojan's two-phase (forward + backward) eviction sweep
//! around that; [`TreePlru`] is the canonical approximate-LRU hardware
//! policy and the default for the simulated MEE cache.

use mee_rng::Rng;

/// Chooses victims within one cache set.
///
/// Implementations hold per-set metadata sized by [`attach`](Self::attach),
/// which the owning cache calls exactly once before use.
///
/// The trait is object-safe: caches store `Box<dyn ReplacementPolicy>` so
/// experiments can swap policies at run time (the ablation bench does).
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Sizes per-set metadata. Called once by the owning cache.
    fn attach(&mut self, sets: usize, ways: usize);

    /// Records a hit on `way` of `set`.
    fn on_hit(&mut self, set: usize, way: usize);

    /// Records a fill into `way` of `set`.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Chooses the way to evict in a full `set`.
    ///
    /// `allowed` marks the ways the caller permits as victims (all-true in
    /// normal operation; way-partitioned operation restricts it). At least
    /// one entry is guaranteed true.
    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize;

    /// [`victim`](Self::victim) with every way allowed — the common case on
    /// the hot path, split out so implementations can skip the `allowed`
    /// scan (and callers the scratch mask) entirely.
    ///
    /// Must behave exactly like `victim(set, &vec![true; ways])`, including
    /// any RNG draws; the default implementation does literally that.
    fn victim_all(&mut self, set: usize, ways: usize) -> usize {
        let allowed = vec![true; ways];
        self.victim(set, &allowed)
    }

    /// Records that `way` of `set` was invalidated.
    fn on_invalidate(&mut self, set: usize, way: usize);

    /// Short policy name for logs and benches.
    fn name(&self) -> &'static str;
}

/// Exact least-recently-used: evicts the way with the oldest access stamp.
#[derive(Debug, Default)]
pub struct TrueLru {
    stamps: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl TrueLru {
    /// Creates an unattached exact-LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for TrueLru {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.stamps = vec![0; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .filter(|&w| allowed[w])
            .min_by_key(|&w| self.stamps[base + w])
            .expect("victim() requires at least one allowed way")
    }

    fn victim_all(&mut self, set: usize, _ways: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("cache sets have at least one way")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.stamps[set * self.ways + way] = 0;
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Tree pseudo-LRU ("approximate LRU"), the policy class §5.3 attributes to
/// the real MEE cache.
///
/// A binary tree of `ways - 1` bits per set; each access flips the bits on
/// its path to point *away* from the accessed way, and the victim is found
/// by following the bits from the root. Approximate-LRU is what forces the
/// trojan's two-phase eviction sweep: one forward pass does not guarantee
/// all resident lines are replaced.
///
/// # Panics
///
/// [`attach`](ReplacementPolicy::attach) panics if `ways` is not a power of
/// two (the tree requires it).
#[derive(Debug, Default)]
pub struct TreePlru {
    bits: Vec<bool>,
    ways: usize,
}

impl TreePlru {
    /// Creates an unattached tree-PLRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks from the root toward `way`, making every node point away.
    fn touch(&mut self, set: usize, way: usize) {
        let base = set * (self.ways - 1);
        let mut node = 0usize; // root of the implicit tree
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let right = way >= mid;
            // Point to the *other* half.
            self.bits[base + node] = !right;
            if right {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn attach(&mut self, sets: usize, ways: usize) {
        assert!(
            ways.is_power_of_two(),
            "tree-PLRU requires a power-of-two way count, got {ways}"
        );
        self.ways = ways;
        self.bits = vec![false; sets * (ways - 1)];
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize {
        let base = set * (self.ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[base + node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        if allowed[lo] {
            lo
        } else {
            // Partitioned operation: fall back to the first allowed way.
            allowed
                .iter()
                .position(|&a| a)
                .expect("victim() requires at least one allowed way")
        }
    }

    fn victim_all(&mut self, set: usize, _ways: usize) -> usize {
        // The bit walk's landing way is always allowed here.
        let base = set * (self.ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[base + node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        // Inverse of `touch`: walk from the root *toward* the invalidated
        // way, so the next victim search lands on it. Leaving the bits
        // stale would keep evicting live lines while the freed way sits
        // idle until some unrelated fill happens to re-point the path.
        let base = set * (self.ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let right = way >= mid;
            self.bits[base + node] = right;
            if right {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
    }

    fn name(&self) -> &'static str {
        "tree-plru"
    }
}

/// First-in first-out: evicts the oldest *fill*, ignoring hits.
#[derive(Debug, Default)]
pub struct Fifo {
    stamps: Vec<u64>,
    ways: usize,
    clock: u64,
}

impl Fifo {
    /// Creates an unattached FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.stamps = vec![0; sets * ways];
    }

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .filter(|&w| allowed[w])
            .min_by_key(|&w| self.stamps[base + w])
            .expect("victim() requires at least one allowed way")
    }

    fn victim_all(&mut self, set: usize, _ways: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("cache sets have at least one way")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.stamps[set * self.ways + way] = 0;
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Not-recently-used: one reference bit per way; evicts the first way whose
/// bit is clear, clearing all bits when every way is referenced.
#[derive(Debug, Default)]
pub struct Nru {
    referenced: Vec<bool>,
    ways: usize,
}

impl Nru {
    /// Creates an unattached NRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Nru {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.referenced = vec![false; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = true;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = true;
    }

    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize {
        let base = set * self.ways;
        if let Some(w) = (0..self.ways).find(|&w| allowed[w] && !self.referenced[base + w]) {
            return w;
        }
        // Everybody referenced: age the whole set and take the first allowed.
        for w in 0..self.ways {
            self.referenced[base + w] = false;
        }
        allowed
            .iter()
            .position(|&a| a)
            .expect("victim() requires at least one allowed way")
    }

    fn victim_all(&mut self, set: usize, _ways: usize) -> usize {
        let base = set * self.ways;
        if let Some(w) = (0..self.ways).find(|&w| !self.referenced[base + w]) {
            return w;
        }
        // Everybody referenced: age the whole set and take the first way.
        for w in 0..self.ways {
            self.referenced[base + w] = false;
        }
        0
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = false;
    }

    fn name(&self) -> &'static str {
        "nru"
    }
}

/// Static re-reference interval prediction (SRRIP, Jaleel et al. ISCA'10)
/// with 2-bit re-reference prediction values — the other widespread
/// "approximate LRU" in shipping hardware.
///
/// Fills insert at RRPV 2 (long re-reference), hits promote to 0; the
/// victim is the first way at RRPV 3, aging every way when none is.
#[derive(Debug, Default)]
pub struct Srrip {
    rrpv: Vec<u8>,
    ways: usize,
}

/// Maximum re-reference prediction value (2 bits).
const RRPV_MAX: u8 = 3;

impl Srrip {
    /// Creates an unattached SRRIP policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Srrip {
    fn attach(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.rrpv = vec![RRPV_MAX; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = RRPV_MAX - 1;
    }

    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) =
                (0..self.ways).find(|&w| allowed[w] && self.rrpv[base + w] == RRPV_MAX)
            {
                return w;
            }
            // Age: increment every RRPV in the set (saturating).
            for w in 0..self.ways {
                if self.rrpv[base + w] < RRPV_MAX {
                    self.rrpv[base + w] += 1;
                }
            }
        }
    }

    fn victim_all(&mut self, set: usize, _ways: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == RRPV_MAX) {
                return w;
            }
            for w in 0..self.ways {
                if self.rrpv[base + w] < RRPV_MAX {
                    self.rrpv[base + w] += 1;
                }
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = RRPV_MAX;
    }

    fn name(&self) -> &'static str {
        "srrip"
    }
}

/// Uniform-random eviction, seeded for determinism.
#[derive(Debug)]
pub struct RandomEviction {
    rng: Rng,
    ways: usize,
}

impl RandomEviction {
    /// Creates a random-eviction policy with the given RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        RandomEviction {
            rng: Rng::seed_from_u64(seed),
            ways: 0,
        }
    }
}

impl ReplacementPolicy for RandomEviction {
    fn attach(&mut self, _sets: usize, ways: usize) {
        self.ways = ways;
    }

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize, allowed: &[bool]) -> usize {
        let candidates: Vec<usize> = (0..self.ways).filter(|&w| allowed[w]).collect();
        assert!(
            !candidates.is_empty(),
            "victim() requires at least one allowed way"
        );
        candidates[self.rng.random_range(0..candidates.len())]
    }

    fn victim_all(&mut self, _set: usize, _ways: usize) -> usize {
        // Same single `random_range(0..ways)` draw as `victim` with an
        // all-true mask, so the RNG stream is unchanged.
        self.rng.random_range(0..self.ways)
    }

    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    fn name(&self) -> &'static str {
        "random"
    }
}

/// A statically dispatched policy: every concrete policy in this module as
/// an enum variant, plus a [`Policy::Dyn`] escape hatch for external
/// implementations.
///
/// The simulated machine's caches sit on the hot path of every memory op
/// (the L1/L2/LLC lookups, the MEE-cache walk, clflush invalidation sweeps),
/// and all of them run [`TreePlru`] in the default configuration. Routing
/// policy callbacks through an enum instead of `Box<dyn ReplacementPolicy>`
/// lets the compiler inline the PLRU bit-tree updates into the cache access
/// itself. [`SetAssocCache::new`](crate::SetAssocCache::new) accepts
/// anything `Into<Policy>`: a concrete policy by value, or a boxed trait
/// object (which lands in the [`Policy::Dyn`] variant).
#[derive(Debug)]
pub enum Policy {
    /// Tree pseudo-LRU (the default everywhere).
    TreePlru(TreePlru),
    /// Exact LRU.
    TrueLru(TrueLru),
    /// First-in first-out.
    Fifo(Fifo),
    /// Not-recently-used.
    Nru(Nru),
    /// Static re-reference interval prediction.
    Srrip(Srrip),
    /// Seeded random victims.
    Random(RandomEviction),
    /// Any external [`ReplacementPolicy`], dynamically dispatched.
    Dyn(Box<dyn ReplacementPolicy>),
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            Policy::TreePlru($p) => $body,
            Policy::TrueLru($p) => $body,
            Policy::Fifo($p) => $body,
            Policy::Nru($p) => $body,
            Policy::Srrip($p) => $body,
            Policy::Random($p) => $body,
            Policy::Dyn($p) => $body,
        }
    };
}

impl ReplacementPolicy for Policy {
    fn attach(&mut self, sets: usize, ways: usize) {
        dispatch!(self, p => p.attach(sets, ways));
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_hit(set, way));
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_fill(set, way));
    }

    #[inline]
    fn victim(&mut self, set: usize, allowed: &[bool]) -> usize {
        dispatch!(self, p => p.victim(set, allowed))
    }

    #[inline]
    fn victim_all(&mut self, set: usize, ways: usize) -> usize {
        dispatch!(self, p => p.victim_all(set, ways))
    }

    #[inline]
    fn on_invalidate(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_invalidate(set, way));
    }

    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }
}

impl From<TreePlru> for Policy {
    fn from(p: TreePlru) -> Self {
        Policy::TreePlru(p)
    }
}

impl From<TrueLru> for Policy {
    fn from(p: TrueLru) -> Self {
        Policy::TrueLru(p)
    }
}

impl From<Fifo> for Policy {
    fn from(p: Fifo) -> Self {
        Policy::Fifo(p)
    }
}

impl From<Nru> for Policy {
    fn from(p: Nru) -> Self {
        Policy::Nru(p)
    }
}

impl From<Srrip> for Policy {
    fn from(p: Srrip) -> Self {
        Policy::Srrip(p)
    }
}

impl From<RandomEviction> for Policy {
    fn from(p: RandomEviction) -> Self {
        Policy::Random(p)
    }
}

impl From<Box<dyn ReplacementPolicy>> for Policy {
    fn from(p: Box<dyn ReplacementPolicy>) -> Self {
        Policy::Dyn(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_allowed(ways: usize) -> Vec<bool> {
        vec![true; ways]
    }

    /// `victim_all` must be indistinguishable from `victim` with an
    /// all-true mask — same way chosen, same internal state evolution,
    /// same RNG draws — for every policy, under arbitrary histories.
    /// Two identically-seeded twins run mirrored hit/fill/invalidate
    /// histories; one answers through `victim`, the other through
    /// `victim_all`, and the pair must never diverge.
    #[test]
    fn victim_all_matches_all_true_mask() {
        const WAYS: usize = 8;
        const SETS: usize = 4;
        let twins: Vec<(Policy, Policy)> = vec![
            (TreePlru::new().into(), TreePlru::new().into()),
            (TrueLru::new().into(), TrueLru::new().into()),
            (Fifo::new().into(), Fifo::new().into()),
            (Nru::new().into(), Nru::new().into()),
            (Srrip::new().into(), Srrip::new().into()),
            (
                RandomEviction::with_seed(0xdead).into(),
                RandomEviction::with_seed(0xdead).into(),
            ),
        ];
        for (mut a, mut b) in twins {
            a.attach(SETS, WAYS);
            b.attach(SETS, WAYS);
            let mut rng = Rng::seed_from_u64(0x51c7);
            for step in 0..2000 {
                let set = rng.random_range(0..SETS);
                let way = rng.random_range(0..WAYS);
                match rng.random_range(0..4u8) {
                    0 => {
                        a.on_hit(set, way);
                        b.on_hit(set, way);
                    }
                    1 => {
                        a.on_fill(set, way);
                        b.on_fill(set, way);
                    }
                    2 => {
                        a.on_invalidate(set, way);
                        b.on_invalidate(set, way);
                    }
                    _ => {
                        let va = a.victim(set, &all_allowed(WAYS));
                        let vb = b.victim_all(set, WAYS);
                        assert_eq!(
                            va,
                            vb,
                            "policy {} diverged at step {step} (set {set})",
                            a.name()
                        );
                        // Keep the histories aligned after the eviction.
                        a.on_fill(set, va);
                        b.on_fill(set, vb);
                    }
                }
            }
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut p = TrueLru::new();
        p.attach(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_hit(0, 0); // refresh way 0; way 1 is now oldest
        assert_eq!(p.victim(0, &all_allowed(4)), 1);
    }

    #[test]
    fn lru_respects_allowed_mask() {
        let mut p = TrueLru::new();
        p.attach(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        let mut allowed = all_allowed(4);
        allowed[0] = false; // oldest way is off-limits
        assert_eq!(p.victim(0, &allowed), 1);
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut p = TreePlru::new();
        p.attach(1, 8);
        for w in 0..8 {
            p.on_fill(0, w);
        }
        for recent in 0..8 {
            p.on_hit(0, recent);
            assert_ne!(
                p.victim(0, &all_allowed(8)),
                recent,
                "PLRU evicted the most recently used way"
            );
        }
    }

    #[test]
    fn plru_is_only_approximately_lru() {
        // Demonstrates the §5.3 problem: after touching lines in one order, a
        // single forward sweep of 8 new fills does not victimize ways in pure
        // LRU order. We just check PLRU and true LRU disagree somewhere.
        let mut plru = TreePlru::new();
        let mut lru = TrueLru::new();
        plru.attach(1, 8);
        lru.attach(1, 8);
        for w in 0..8 {
            plru.on_fill(0, w);
            lru.on_fill(0, w);
        }
        let pattern = [3usize, 1, 4, 1, 5, 2, 6, 5, 3];
        for &w in &pattern {
            plru.on_hit(0, w);
            lru.on_hit(0, w);
        }
        let mut diverged = false;
        for _ in 0..8 {
            let pv = plru.victim(0, &all_allowed(8));
            let lv = lru.victim(0, &all_allowed(8));
            if pv != lv {
                diverged = true;
            }
            plru.on_fill(0, pv);
            lru.on_fill(0, lv);
        }
        assert!(diverged, "tree-PLRU behaved exactly like true LRU");
    }

    /// Pinned spec-harness counterexample (invariant
    /// `invalidated-way-preferred`): with 2 ways, tree-PLRU is exactly LRU,
    /// so after `fill 0, fill 1, invalidate 1` the victim must be way 1.
    /// The pre-fix no-op `on_invalidate` left the bits pointing at way 0.
    #[test]
    fn plru_invalidate_points_tree_at_freed_way() {
        let mut p = TreePlru::new();
        p.attach(1, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_invalidate(0, 1);
        assert_eq!(p.victim(0, &all_allowed(2)), 1);
    }

    /// After filling every way, a single invalidation makes that way the
    /// preferred victim — for every deterministic policy.
    #[test]
    fn invalidated_way_is_preferred_victim() {
        for ways in [2usize, 4, 8] {
            for way in 0..ways {
                let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
                    Box::new(TrueLru::new()),
                    Box::new(TreePlru::new()),
                    Box::new(Fifo::new()),
                    Box::new(Nru::new()),
                    Box::new(Srrip::new()),
                ];
                for mut p in policies {
                    p.attach(1, ways);
                    for w in 0..ways {
                        p.on_fill(0, w);
                    }
                    p.on_invalidate(0, way);
                    assert_eq!(
                        p.victim(0, &all_allowed(ways)),
                        way,
                        "{} did not prefer invalidated way {way} of {ways}",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two_ways() {
        let mut p = TreePlru::new();
        p.attach(1, 6);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = Fifo::new();
        p.attach(1, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_hit(0, 0); // does not refresh way 0
        assert_eq!(p.victim(0, &all_allowed(2)), 0);
    }

    #[test]
    fn nru_prefers_unreferenced() {
        let mut p = Nru::new();
        p.attach(1, 4);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_fill(0, 2);
        p.on_fill(0, 3);
        // All referenced: victim clears and picks way 0.
        assert_eq!(p.victim(0, &all_allowed(4)), 0);
        // Now nothing is referenced except what we touch.
        p.on_hit(0, 0);
        assert_eq!(p.victim(0, &all_allowed(4)), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomEviction::with_seed(7);
        let mut b = RandomEviction::with_seed(7);
        a.attach(1, 8);
        b.attach(1, 8);
        let allowed = all_allowed(8);
        for _ in 0..32 {
            assert_eq!(a.victim(0, &allowed), b.victim(0, &allowed));
        }
    }

    #[test]
    fn random_respects_allowed_mask() {
        let mut p = RandomEviction::with_seed(3);
        p.attach(1, 8);
        let mut allowed = vec![false; 8];
        allowed[5] = true;
        for _ in 0..16 {
            assert_eq!(p.victim(0, &allowed), 5);
        }
    }

    #[test]
    fn srrip_prefers_distant_rereference() {
        let mut p = Srrip::new();
        p.attach(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // All at RRPV 2; a victim search ages everyone to 3 and picks way 0.
        assert_eq!(p.victim(0, &all_allowed(4)), 0);
        // A hit promotes to RRPV 0: that way outlives un-hit ways.
        p.on_fill(0, 0);
        p.on_hit(0, 1);
        let v = p.victim(0, &all_allowed(4));
        assert_ne!(v, 1, "SRRIP evicted the just-hit way");
    }

    #[test]
    fn srrip_never_evicts_most_recent_hit() {
        let mut p = Srrip::new();
        p.attach(1, 8);
        for w in 0..8 {
            p.on_fill(0, w);
        }
        for recent in 0..8 {
            p.on_hit(0, recent);
            assert_ne!(p.victim(0, &all_allowed(8)), recent);
        }
    }

    #[test]
    fn srrip_respects_allowed_mask() {
        let mut p = Srrip::new();
        p.attach(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        let mut allowed = all_allowed(4);
        allowed[0] = false;
        assert_ne!(p.victim(0, &allowed), 0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(TrueLru::new().name(), "lru");
        assert_eq!(TreePlru::new().name(), "tree-plru");
        assert_eq!(Fifo::new().name(), "fifo");
        assert_eq!(Nru::new().name(), "nru");
        assert_eq!(Srrip::new().name(), "srrip");
        assert_eq!(RandomEviction::with_seed(0).name(), "random");
    }
}

//! Hit/miss/eviction counters.

use core::fmt;

/// Access counters maintained by every [`SetAssocCache`](crate::SetAssocCache).
///
/// Counters are cumulative; call
/// [`SetAssocCache::reset_stats`](crate::SetAssocCache::reset_stats) to zero
/// them between experiment phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that found their line resident.
    pub hits: u64,
    /// Number of accesses that missed and triggered a fill.
    pub misses: u64,
    /// Number of fills that had to evict a valid line.
    pub evictions: u64,
    /// Number of explicit invalidations that removed a valid line.
    pub invalidations: u64,
}

impl CacheStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0.0` when no accesses have occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} hits, {} misses, {:.1}% hit rate), {} evictions, {} invalidations",
            self.accesses(),
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.evictions,
            self.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::new().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_and_totals() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 1,
            invalidations: 0,
        };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < f64::EPSILON);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CacheStats::new();
        assert!(!s.to_string().is_empty());
    }
}

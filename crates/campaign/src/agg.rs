//! Constant-memory, deterministically-mergeable aggregators.
//!
//! A fleet-scale campaign (10⁵–10⁶ sessions) cannot retain per-session
//! logs; each shard folds its sessions into a fixed set of per-series
//! aggregates and only those survive. Two structures carry everything the
//! statistical claims need:
//!
//! * [`StreamStats`] — count / mean / variance / min / max via Welford's
//!   online algorithm, merged across shards with Chan's parallel formula;
//! * [`QuantileSketch`] — a deterministic quantile sketch: values are
//!   quantized onto an order-preserving 19-bit grid (sign + exponent +
//!   7 mantissa bits of the IEEE-754 representation, ≲0.8 % relative
//!   error) and counted per bucket. Merging adds counts, so it is exact,
//!   commutative, and *independent of merge order* — the property that
//!   lets a resumed campaign reproduce an uninterrupted one bit for bit.
//!
//! Floating-point means are **not** order-independent, so the campaign
//! fixes the fold order instead: sessions in index order within a shard,
//! shards in index order at the final merge. Same order ⇒ same bits, at
//! any thread count, interrupted or not.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Welford-online count/mean/variance plus min/max of one series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// How many values were folded in.
    pub count: u64,
    /// Running arithmetic mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's `M2`).
    pub m2: f64,
    /// Smallest value seen (`+inf` when empty).
    pub min: f64,
    /// Largest value seen (`-inf` when empty).
    pub max: f64,
}

impl StreamStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one value in.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value: campaign series are measurements, and
    /// a NaN here would silently poison every downstream statistic.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite campaign sample: {v}");
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another accumulator in (Chan et al.'s parallel merge).
    ///
    /// Merging is deterministic for a fixed merge *order*; the campaign
    /// always merges shards in ascending shard index.
    pub fn merge(&mut self, other: &StreamStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.count as f64 / total as f64);
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64 / total as f64);
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Population variance (`0` when fewer than two values).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
}

/// How many high bits of the order-preserving u64 image of an `f64` the
/// sketch keys on: 1 sign + 11 exponent + 7 mantissa bits. 7 mantissa bits
/// bound the relative quantization error by 2⁻⁷ ≈ 0.8 %.
const KEY_BITS: u32 = 19;
const KEY_SHIFT: u32 = 64 - KEY_BITS;

/// Maps an `f64` onto a totally-ordered `u64` (the classic sign-flip
/// trick), so truncating high bits buckets *by value order*.
fn orderable(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

fn unorderable(ord: u64) -> f64 {
    if ord >> 63 == 1 {
        f64::from_bits(ord & !(1 << 63))
    } else {
        f64::from_bits(!ord)
    }
}

/// A deterministic, exactly-mergeable quantile sketch.
///
/// Values are counted in buckets keyed by the top [`KEY_BITS`] bits of
/// their order-preserving integer image; a quantile query walks the bucket
/// counts in key (= value) order and returns the *lower bound* of the
/// bucket containing the nearest-rank sample. Everything is integer
/// arithmetic over a `BTreeMap`, so:
///
/// * queries are deterministic;
/// * merges add counts and are therefore exact and commutative;
/// * memory is bounded by the number of *distinct buckets* touched (≤ one
///   per ~0.8 % of value range per decade), never by the session count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSketch {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one value.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite campaign sample: {v}");
        let key = (orderable(v) >> KEY_SHIFT) as u32;
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds another sketch's counts in — exact, commutative, associative.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&key, &count) in &other.counts {
            *self.counts.entry(key).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Total values counted.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// How many distinct buckets are occupied (the memory footprint).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`), as the lower bound of the
    /// bucket holding the nearest-rank sample; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 100]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let rank = (p / 100.0 * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (&key, &count) in &self.counts {
            seen += count;
            if seen > rank {
                return Some(unorderable(u64::from(key) << KEY_SHIFT));
            }
        }
        unreachable!("rank {rank} beyond total {}", self.total);
    }

    /// Serializes as `key:count` pairs in key order (checkpoint format).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (&key, &count) in &self.counts {
            if !out.is_empty() {
                out.push(' ');
            }
            write!(out, "{key:05x}:{count}").unwrap();
        }
        out
    }

    /// Parses [`QuantileSketch::encode`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed pair.
    pub fn decode(s: &str) -> Result<Self, String> {
        let mut sketch = QuantileSketch::new();
        for pair in s.split_whitespace() {
            let (key, count) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed sketch pair {pair:?}"))?;
            let key = u32::from_str_radix(key, 16)
                .map_err(|e| format!("malformed sketch key {key:?}: {e}"))?;
            let count: u64 = count
                .parse()
                .map_err(|e| format!("malformed sketch count {count:?}: {e}"))?;
            if key >> KEY_BITS != 0 {
                return Err(format!("sketch key {key:#x} exceeds {KEY_BITS} bits"));
            }
            if count == 0 {
                return Err(format!("zero count for sketch key {key:#x}"));
            }
            *sketch.counts.entry(key).or_insert(0) += count;
            sketch.total += count;
        }
        Ok(sketch)
    }
}

/// All aggregates of one named series: moments plus quantile sketch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesAgg {
    /// Moment statistics.
    pub stats: StreamStats,
    /// Quantile sketch.
    pub sketch: QuantileSketch,
}

impl SeriesAgg {
    /// An empty series aggregate.
    pub fn new() -> Self {
        SeriesAgg {
            stats: StreamStats::new(),
            sketch: QuantileSketch::new(),
        }
    }

    /// Folds one value into both structures.
    pub fn push(&mut self, v: f64) {
        self.stats.push(v);
        self.sketch.push(v);
    }

    /// Folds another series aggregate in (shard-order discipline applies
    /// to the `stats` half; the sketch is order-independent).
    pub fn merge(&mut self, other: &SeriesAgg) {
        self.stats.merge(&other.stats);
        self.sketch.merge(&other.sketch);
    }
}

/// The completed aggregate of one shard: which sessions it covered and one
/// [`SeriesAgg`] per campaign series, in series order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAggregate {
    /// The shard's index in the campaign partition.
    pub shard: usize,
    /// First session index the shard covers (inclusive).
    pub lo: usize,
    /// One past the last session index (exclusive).
    pub hi: usize,
    /// Per-series aggregates, index-aligned with the campaign's series
    /// names.
    pub series: Vec<SeriesAgg>,
}

impl ShardAggregate {
    /// An empty aggregate for `shard` covering sessions `lo..hi` with
    /// `nseries` series.
    pub fn empty(shard: usize, lo: usize, hi: usize, nseries: usize) -> Self {
        ShardAggregate {
            shard,
            lo,
            hi,
            series: (0..nseries).map(|_| SeriesAgg::new()).collect(),
        }
    }

    /// Sessions this shard covers.
    pub fn sessions(&self) -> u64 {
        (self.hi - self.lo) as u64
    }

    /// Folds one session's sample vector in (one value per series, in
    /// series order).
    ///
    /// # Panics
    ///
    /// Panics when the sample arity does not match the series count.
    pub fn push_session(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "session produced {} values for {} series",
            values.len(),
            self.series.len()
        );
        for (agg, &v) in self.series.iter_mut().zip(values) {
            agg.push(v);
        }
    }
}

/// The campaign-wide aggregate: every completed shard folded together in
/// ascending shard order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAggregate {
    /// Sessions folded in (excludes quarantined shards).
    pub sessions: u64,
    /// `(name, aggregate)` per series, in campaign series order.
    pub series: Vec<(String, SeriesAgg)>,
}

impl CampaignAggregate {
    /// Merges `shards` (must be sorted by ascending shard index — the fold
    /// order *is* the determinism contract) under the campaign's series
    /// names.
    ///
    /// # Panics
    ///
    /// Panics when the shards are not in ascending order or a shard's
    /// series arity disagrees with `names`.
    pub fn merge_shards(names: &[String], shards: &[ShardAggregate]) -> Self {
        let mut series: Vec<(String, SeriesAgg)> = names
            .iter()
            .map(|n| (n.clone(), SeriesAgg::new()))
            .collect();
        let mut sessions = 0u64;
        let mut prev: Option<usize> = None;
        for shard in shards {
            assert!(
                prev.is_none_or(|p| p < shard.shard),
                "shards must merge in ascending index order"
            );
            prev = Some(shard.shard);
            assert_eq!(shard.series.len(), names.len(), "series arity mismatch");
            sessions += shard.sessions();
            for ((_, acc), s) in series.iter_mut().zip(&shard.series) {
                acc.merge(s);
            }
        }
        CampaignAggregate { sessions, series }
    }

    /// Looks a series up by name.
    pub fn series(&self, name: &str) -> Option<&SeriesAgg> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders the aggregate as a deterministic multi-line table: one line
    /// per series with count, mean/min/max (both decimal and exact bit
    /// pattern), variance, and sketch quantiles — the golden-snapshot
    /// format. Byte-identical across thread counts and across
    /// interrupted-and-resumed runs.
    pub fn render(&self) -> String {
        let mut out = format!("sessions {}\n", self.sessions);
        for (name, agg) in &self.series {
            let s = &agg.stats;
            let q = |p: f64| {
                agg.sketch
                    .quantile(p)
                    .map_or_else(|| "-".to_owned(), |v| format!("{v:.6}"))
            };
            writeln!(
                out,
                "series {name} count {} mean {:.6}/{:016x} var {:.6} min {:.6} max {:.6} \
                 p10 {} p50 {} p90 {} p95 {} buckets {}",
                s.count,
                s.mean,
                s.mean.to_bits(),
                s.variance(),
                s.min,
                s.max,
                q(10.0),
                q(50.0),
                q(90.0),
                q(95.0),
                agg.sketch.buckets(),
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let values = [3.0, 1.5, -2.0, 8.25, 0.0, 4.5];
        let mut s = StreamStats::new();
        for v in values {
            s.push(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / values.len() as f64;
        assert_eq!(s.count, 6);
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 8.25);
    }

    #[test]
    fn fixed_order_merge_is_bit_deterministic() {
        // The determinism contract: folding sessions in index order within
        // shards, then merging shards in index order, gives the same bits
        // regardless of how sessions were *scheduled*. Simulate two shard
        // layouts of the same data and check the invariant holds per run.
        let values: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 11.0).collect();
        let fold = |chunks: &[&[f64]]| {
            let mut parts: Vec<StreamStats> = Vec::new();
            for c in chunks {
                let mut s = StreamStats::new();
                for &v in *c {
                    s.push(v);
                }
                parts.push(s);
            }
            let mut total = StreamStats::new();
            for p in &parts {
                total.merge(p);
            }
            total
        };
        let a = fold(&[&values[..50], &values[50..]]);
        let b = fold(&[&values[..50], &values[50..]]);
        // Same layout, any number of times: identical bits.
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.m2.to_bits(), b.m2.to_bits());
        assert_eq!(a.count, 100);
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut s = StreamStats::new();
        s.merge(&StreamStats::new());
        assert_eq!(s.count, 0);
        let mut full = StreamStats::new();
        full.push(2.0);
        s.merge(&full);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
        full.merge(&StreamStats::new());
        assert_eq!(full.count, 1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_samples_rejected() {
        StreamStats::new().push(f64::NAN);
    }

    #[test]
    fn sketch_quantiles_track_true_quantiles() {
        let mut sk = QuantileSketch::new();
        let n = 10_000;
        for i in 0..n {
            // A skewed but deterministic distribution.
            sk.push(1.0 + (i as f64 / n as f64).powi(3) * 999.0);
        }
        assert_eq!(sk.count(), n as u64);
        for (p, want) in [(50.0, 1.0 + 0.5f64.powi(3) * 999.0), (95.0, 1.0 + 0.95f64.powi(3) * 999.0)] {
            let got = sk.quantile(p).unwrap();
            let rel = (got - want).abs() / want;
            assert!(rel < 0.01, "p{p}: got {got}, want ≈{want} (rel {rel})");
        }
        // Constant memory: far fewer buckets than samples.
        assert!(sk.buckets() < 1500, "{} buckets", sk.buckets());
    }

    #[test]
    fn sketch_merge_is_exact_and_order_independent() {
        let mut all = QuantileSketch::new();
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for i in 0..500 {
            let v = (i as f64).sin() * 40.0;
            all.push(v);
            if i % 2 == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, rl, "sketch merge must commute");
        assert_eq!(lr, all, "sketch merge must be exact");
    }

    #[test]
    fn sketch_handles_negatives_zero_and_singletons() {
        let mut sk = QuantileSketch::new();
        for v in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            sk.push(v);
        }
        assert!(sk.quantile(0.0).unwrap() <= -5.0 * (1.0 - 0.01));
        assert_eq!(sk.quantile(50.0).unwrap(), 0.0);
        assert!(sk.quantile(100.0).unwrap() >= 5.0 * (1.0 - 0.01));
        assert_eq!(QuantileSketch::new().quantile(50.0), None);
    }

    #[test]
    fn sketch_encode_decode_round_trips() {
        let mut sk = QuantileSketch::new();
        for i in 0..257 {
            sk.push((i % 13) as f64 * 3.5 - 7.0);
        }
        let encoded = sk.encode();
        let decoded = QuantileSketch::decode(&encoded).unwrap();
        assert_eq!(sk, decoded);
        assert_eq!(encoded, decoded.encode(), "canonical form");
        // Corruption is a loud error, not a skewed sketch.
        assert!(QuantileSketch::decode("zz:1").is_err());
        assert!(QuantileSketch::decode("123").is_err());
        assert!(QuantileSketch::decode("fffff:0").is_err());
    }

    #[test]
    fn shard_aggregate_folds_sessions_per_series() {
        let mut shard = ShardAggregate::empty(2, 8, 12, 2);
        for i in 0..4 {
            shard.push_session(&[i as f64, 10.0 * i as f64]);
        }
        assert_eq!(shard.sessions(), 4);
        assert_eq!(shard.series[0].stats.count, 4);
        assert!((shard.series[1].stats.mean - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ascending index order")]
    fn campaign_merge_rejects_out_of_order_shards() {
        let names = vec!["x".to_owned()];
        let shards = vec![
            ShardAggregate::empty(1, 4, 8, 1),
            ShardAggregate::empty(0, 0, 4, 1),
        ];
        let _ = CampaignAggregate::merge_shards(&names, &shards);
    }

    #[test]
    fn campaign_render_is_deterministic_and_names_series() {
        let names = vec!["ber".to_owned(), "kbps".to_owned()];
        let mut s0 = ShardAggregate::empty(0, 0, 2, 2);
        s0.push_session(&[0.01, 35.0]);
        s0.push_session(&[0.02, 34.5]);
        let mut s1 = ShardAggregate::empty(1, 2, 3, 2);
        s1.push_session(&[0.0, 36.0]);
        let agg = CampaignAggregate::merge_shards(&names, &[s0.clone(), s1.clone()]);
        let again = CampaignAggregate::merge_shards(&names, &[s0, s1]);
        assert_eq!(agg.render(), again.render());
        assert_eq!(agg.sessions, 3);
        assert!(agg.render().contains("series ber "));
        assert!(agg.render().contains("series kbps "));
        assert!(agg.series("ber").is_some());
        assert!(agg.series("nope").is_none());
    }
}

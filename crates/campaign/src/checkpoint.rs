//! Atomic, checksummed per-shard checkpoints.
//!
//! One file per completed shard, named `shard-<index>.ckpt`, written with
//! the classic crash-safe discipline: serialize to `<name>.tmp`, `fsync`,
//! then `rename` over the final name (and `fsync` the directory where the
//! platform allows it). A kill at *any* instant therefore leaves every
//! shard file either absent or complete — never half-written — which is
//! the atomicity half of the resume-≡-uninterrupted argument (DESIGN.md
//! "Crash-safe campaigns").
//!
//! The payload is a line-oriented text format carrying the exact bit
//! patterns of every floating-point aggregate (hex `f64::to_bits`), the
//! campaign fingerprint (so checkpoints from a different campaign are a
//! typed [`CheckpointError::Mismatch`], not silently merged data), and a
//! trailing FNV-64 checksum over everything above it. A flipped byte
//! anywhere fails the checksum and surfaces as a loud
//! [`CheckpointError::Corrupt`] with a replay recipe — the campaign never
//! silently recomputes over corrupted state.

use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::agg::{QuantileSketch, SeriesAgg, ShardAggregate, StreamStats};

/// Magic first line of every checkpoint file; bump the version on any
/// format change so stale files fail as [`CheckpointError::Mismatch`].
const MAGIC: &str = "MEECAMPAIGN v1";

/// FNV-1a 64-bit — the workspace's standing content-fingerprint hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that must match between a checkpoint and the campaign
/// resuming from it. The fingerprint folds the name, seed space, shard
/// partition, series names, and the driver's body-version tag, so *any*
/// parameter drift refuses the old files instead of merging stale data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignIdentity {
    /// Campaign name (artifact / report naming).
    pub name: String,
    /// Root seed of the session seed space.
    pub root_seed: u64,
    /// Total sessions in the campaign.
    pub sessions: usize,
    /// Number of shards the seed space is partitioned into.
    pub shards: usize,
    /// Series names, in order.
    pub series: Vec<String>,
    /// Driver-supplied body version tag (e.g. `channel/v1 bits=64`): any
    /// change to what a session computes must change this string.
    pub body_version: String,
}

impl CampaignIdentity {
    /// The 64-bit fingerprint embedded in every shard checkpoint.
    pub fn fingerprint(&self) -> u64 {
        let mut desc = format!(
            "{}|{}|{}|{}|{}",
            self.name, self.root_seed, self.sessions, self.shards, self.body_version
        );
        for s in &self.series {
            desc.push('|');
            desc.push_str(s);
        }
        fnv64(desc.as_bytes())
    }
}

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (open/read/write/rename).
    Io {
        /// The path being accessed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file exists but its content fails the checksum or the grammar
    /// — bit rot, truncation, or hand editing. Never silently recomputed.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// The file is a well-formed checkpoint of a *different* campaign
    /// (fingerprint or shard-geometry drift).
    Mismatch {
        /// The offending file.
        path: PathBuf,
        /// Which field disagreed, expected vs. found.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "campaign checkpoint I/O error at {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => write!(
                f,
                "corrupt campaign checkpoint {}: {detail} | replay: delete this file and rerun \
                 with resume enabled — the shard recomputes deterministically from its seed \
                 range (corruption is never silently recomputed over)",
                path.display()
            ),
            CheckpointError::Mismatch { path, detail } => write!(
                f,
                "campaign checkpoint {} belongs to a different campaign: {detail} (refusing to \
                 mix checkpoints — use a fresh checkpoint directory or delete the stale files)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The checkpoint file name of shard `index`.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.ckpt")
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bit pattern {s:?}: {e}"))
}

/// Serializes a shard aggregate under `identity` (deterministic bytes:
/// same aggregate ⇒ same file content, which is what makes the ci.sh
/// `cmp`-level resume check possible).
pub fn encode(identity: &CampaignIdentity, shard: &ShardAggregate) -> String {
    let mut body = format!(
        "{MAGIC}\nfingerprint {:016x}\ncampaign {} root {} sessions {} shards {}\n\
         shard {} sessions {}..{}\n",
        identity.fingerprint(),
        identity.name,
        identity.root_seed,
        identity.sessions,
        identity.shards,
        shard.shard,
        shard.lo,
        shard.hi,
    );
    for (name, agg) in identity.series.iter().zip(&shard.series) {
        let s = &agg.stats;
        body.push_str(&format!(
            "series {name} count {} mean {} m2 {} min {} max {}\n",
            s.count,
            hex_f64(s.mean),
            hex_f64(s.m2),
            hex_f64(s.min),
            hex_f64(s.max),
        ));
        body.push_str(&format!("sketch {name} {}\n", agg.sketch.encode()));
    }
    let checksum = fnv64(body.as_bytes());
    body.push_str(&format!("checksum {checksum:016x}\n"));
    body
}

/// Atomically writes shard `shard` of `identity` into `dir`: temp file,
/// `fsync`, rename, directory `fsync` (best-effort on platforms without
/// directory handles).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on any filesystem failure.
pub fn write(
    dir: &Path,
    identity: &CampaignIdentity,
    shard: &ShardAggregate,
) -> Result<PathBuf, CheckpointError> {
    let final_path = dir.join(shard_file_name(shard.shard));
    let tmp_path = dir.join(format!("{}.tmp", shard_file_name(shard.shard)));
    let io = |path: &Path| {
        let path = path.to_path_buf();
        move |source| CheckpointError::Io { path, source }
    };
    let body = encode(identity, shard);
    let mut f = File::create(&tmp_path).map_err(io(&tmp_path))?;
    f.write_all(body.as_bytes()).map_err(io(&tmp_path))?;
    f.sync_all().map_err(io(&tmp_path))?;
    drop(f);
    std::fs::rename(&tmp_path, &final_path).map_err(io(&final_path))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Loads and fully validates shard `index` of `identity` from `dir`.
/// Returns `Ok(None)` when the shard has no checkpoint yet.
///
/// # Errors
///
/// * [`CheckpointError::Io`] — unreadable file;
/// * [`CheckpointError::Corrupt`] — checksum or grammar failure (a single
///   flipped byte lands here);
/// * [`CheckpointError::Mismatch`] — a valid checkpoint of a different
///   campaign, shard, session range, or series set.
pub fn load(
    dir: &Path,
    identity: &CampaignIdentity,
    index: usize,
    expected_range: std::ops::Range<usize>,
) -> Result<Option<ShardAggregate>, CheckpointError> {
    let path = dir.join(shard_file_name(index));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(source) => return Err(CheckpointError::Io { path, source }),
    };
    // Invalid UTF-8 is corruption of a file we wrote as text, not an I/O
    // failure — it must carry the corrupt-checkpoint replay recipe.
    let raw = match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(_) => {
            return Err(CheckpointError::Corrupt {
                path,
                detail: "checkpoint is not valid UTF-8".into(),
            })
        }
    };
    decode(&raw, identity, index, expected_range)
        .map(Some)
        .map_err(|e| match e {
            DecodeError::Corrupt(detail) => CheckpointError::Corrupt { path: path.clone(), detail },
            DecodeError::Mismatch(detail) => {
                CheckpointError::Mismatch { path: path.clone(), detail }
            }
        })
}

enum DecodeError {
    Corrupt(String),
    Mismatch(String),
}

fn decode(
    raw: &str,
    identity: &CampaignIdentity,
    index: usize,
    expected_range: std::ops::Range<usize>,
) -> Result<ShardAggregate, DecodeError> {
    use DecodeError::{Corrupt, Mismatch};

    // 1. Checksum first: a corrupt file must fail *here*, before any field
    // of it is believed.
    let body_end = raw
        .rfind("checksum ")
        .ok_or_else(|| Corrupt("missing checksum line".into()))?;
    let (body, checksum_line) = raw.split_at(body_end);
    let stated = checksum_line
        .trim()
        .strip_prefix("checksum ")
        .ok_or_else(|| Corrupt("malformed checksum line".into()))?;
    let stated = u64::from_str_radix(stated, 16)
        .map_err(|e| Corrupt(format!("malformed checksum value: {e}")))?;
    let actual = fnv64(body.as_bytes());
    if stated != actual {
        return Err(Corrupt(format!(
            "checksum mismatch: file says {stated:016x}, content hashes to {actual:016x}"
        )));
    }

    // 2. Grammar + identity.
    let mut lines = body.lines();
    let magic = lines.next().ok_or_else(|| Corrupt("empty file".into()))?;
    if magic != MAGIC {
        return Err(Mismatch(format!("version line {magic:?}, expected {MAGIC:?}")));
    }
    let fp_line = lines.next().ok_or_else(|| Corrupt("missing fingerprint".into()))?;
    let fp = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| Corrupt(format!("malformed fingerprint line {fp_line:?}")))?;
    let expected_fp = identity.fingerprint();
    if fp != expected_fp {
        return Err(Mismatch(format!(
            "fingerprint {fp:016x}, this campaign is {expected_fp:016x} (name/seed/shard \
             partition/series/body version drifted)"
        )));
    }
    // Fingerprint equality already implies campaign-line equality; skip it.
    let _campaign_line = lines.next().ok_or_else(|| Corrupt("missing campaign line".into()))?;
    let shard_line = lines.next().ok_or_else(|| Corrupt("missing shard line".into()))?;
    let expected_shard_line =
        format!("shard {index} sessions {}..{}", expected_range.start, expected_range.end);
    if shard_line != expected_shard_line {
        return Err(Mismatch(format!(
            "shard line {shard_line:?}, expected {expected_shard_line:?}"
        )));
    }

    // 3. Series payload.
    let mut series = Vec::with_capacity(identity.series.len());
    for name in &identity.series {
        let stats_line = lines
            .next()
            .ok_or_else(|| Corrupt(format!("missing series line for {name:?}")))?;
        // `series <name> count <n> mean <hex> m2 <hex> min <hex> max <hex>`
        let fields: Vec<&str> = stats_line.split_whitespace().collect();
        let malformed =
            |what: &str| Corrupt(format!("malformed series line {stats_line:?}: {what}"));
        if fields.len() != 12
            || fields[0] != "series"
            || [fields[2], fields[4], fields[6], fields[8], fields[10]]
                != ["count", "mean", "m2", "min", "max"]
        {
            return Err(malformed("want `series <name> count <n> mean/m2/min/max <hex bits>`"));
        }
        if fields[1] != name {
            return Err(Mismatch(format!(
                "series {:?} where this campaign expects {name:?}",
                fields[1]
            )));
        }
        let count: u64 = fields[3].parse().map_err(|e| malformed(&format!("bad count: {e}")))?;
        let bits = |i: usize| parse_hex_f64(fields[i]).map_err(Corrupt);
        let stats = StreamStats {
            count,
            mean: bits(5)?,
            m2: bits(7)?,
            min: bits(9)?,
            max: bits(11)?,
        };
        let sketch_line = lines
            .next()
            .ok_or_else(|| Corrupt(format!("missing sketch line for {name:?}")))?;
        let sketch_body = sketch_line
            .strip_prefix(&format!("sketch {name}"))
            .ok_or_else(|| Corrupt(format!("malformed sketch line {sketch_line:?}")))?;
        let sketch = QuantileSketch::decode(sketch_body).map_err(Corrupt)?;
        if sketch.count() != count {
            return Err(Corrupt(format!(
                "series {name:?}: sketch holds {} values, stats hold {count}",
                sketch.count()
            )));
        }
        series.push(SeriesAgg { stats, sketch });
    }
    if lines.next().is_some() {
        return Err(Corrupt("trailing content after last series".into()));
    }

    Ok(ShardAggregate { shard: index, lo: expected_range.start, hi: expected_range.end, series })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> CampaignIdentity {
        CampaignIdentity {
            name: "test/campaign".into(),
            root_seed: 2019,
            sessions: 16,
            shards: 4,
            series: vec!["ber".into(), "kbps".into()],
            body_version: "test/v1".into(),
        }
    }

    fn shard() -> ShardAggregate {
        let mut s = ShardAggregate::empty(1, 4, 8, 2);
        for i in 0..4 {
            s.push_session(&[0.01 * i as f64, 35.0 + i as f64]);
        }
        s
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mee_campaign_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_is_exact() {
        let dir = tmp_dir("round_trip");
        let id = identity();
        let s = shard();
        write(&dir, &id, &s).unwrap();
        let loaded = load(&dir, &id, 1, 4..8).unwrap().expect("present");
        assert_eq!(loaded, s, "bit-exact round trip");
        // Deterministic bytes: encoding twice is identical.
        assert_eq!(encode(&id, &s), encode(&id, &s));
    }

    #[test]
    fn absent_shard_is_none_not_an_error() {
        let dir = tmp_dir("absent");
        assert!(load(&dir, &identity(), 3, 12..16).unwrap().is_none());
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let dir = tmp_dir("flip");
        let id = identity();
        let s = shard();
        let path = write(&dir, &id, &s).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of positions (every byte would be slow;
        // a stride covers header, stats, sketch, and checksum regions).
        for pos in (0..pristine.len()).step_by(7) {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x20;
            if bad == pristine {
                continue;
            }
            std::fs::write(&path, &bad).unwrap();
            let err = load(&dir, &id, 1, 4..8).expect_err(&format!("flip at {pos} accepted"));
            assert!(
                matches!(err, CheckpointError::Corrupt { .. } | CheckpointError::Mismatch { .. }),
                "flip at {pos}: wrong error {err}"
            );
        }
        std::fs::write(&path, &pristine).unwrap();
        assert!(load(&dir, &id, 1, 4..8).unwrap().is_some(), "pristine restored");
    }

    #[test]
    fn corrupt_error_carries_replay_recipe() {
        let dir = tmp_dir("recipe");
        let id = identity();
        let path = write(&dir, &id, &shard()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&dir, &id, 1, 4..8).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("corrupt campaign checkpoint"), "msg: {msg}");
        assert!(msg.contains("replay:"), "no replay recipe: {msg}");
        assert!(msg.contains("never silently recomputed"), "policy not stated: {msg}");
    }

    #[test]
    fn different_campaign_is_a_mismatch_not_corruption() {
        let dir = tmp_dir("mismatch");
        let id = identity();
        write(&dir, &id, &shard()).unwrap();
        let other = CampaignIdentity { root_seed: 7, ..identity() };
        let err = load(&dir, &other, 1, 4..8).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "got {err}");
        assert!(err.to_string().contains("different campaign"));
        // Same campaign, different shard geometry claimed by the caller.
        let err = load(&dir, &id, 1, 4..9).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "got {err}");
    }

    #[test]
    fn fingerprint_covers_every_identity_field() {
        let base = identity().fingerprint();
        assert_ne!(CampaignIdentity { name: "x".into(), ..identity() }.fingerprint(), base);
        assert_ne!(CampaignIdentity { root_seed: 1, ..identity() }.fingerprint(), base);
        assert_ne!(CampaignIdentity { sessions: 8, ..identity() }.fingerprint(), base);
        assert_ne!(CampaignIdentity { shards: 2, ..identity() }.fingerprint(), base);
        assert_ne!(
            CampaignIdentity { series: vec!["ber".into()], ..identity() }.fingerprint(),
            base
        );
        assert_ne!(
            CampaignIdentity { body_version: "test/v2".into(), ..identity() }.fingerprint(),
            base
        );
    }

    #[test]
    fn no_tmp_file_survives_a_successful_write() {
        let dir = tmp_dir("tmpfile");
        write(&dir, &identity(), &shard()).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    }
}

#![warn(missing_docs)]
//! **mee-campaign** — a crash-safe sharded campaign runner.
//!
//! The paper's headline numbers (≈35 KBps at ~1–2 % BER) are statistical
//! claims over many independent sessions; ROADMAP's fleet-scale item calls
//! for 10⁵–10⁶ sessions per invocation. At that scale the orchestration
//! itself must survive faults: a killed process, a shard whose session
//! panics, a shard that hangs. This crate layers exactly that machinery on
//! the [`mee_sweep`] seed-space conventions:
//!
//! * **Sharding** — the session index space `0..sessions` is partitioned
//!   into contiguous shards; session `i`'s seed is
//!   `stream_seed(root, i)` exactly as in a plain sweep, so a campaign
//!   result is replayable one session at a time and independent of how it
//!   was sharded *scheduled* (shard layout is part of the campaign
//!   identity; scheduling is not).
//! * **Constant-memory aggregation** — each shard folds its sessions into
//!   [`agg::ShardAggregate`] (count/mean/variance/min/max plus a
//!   deterministic quantile sketch per series); no per-session log is
//!   retained.
//! * **Checkpoint / resume** — completed shards are written atomically
//!   (temp + `fsync` + rename, checksummed); a killed campaign rerun with
//!   [`CampaignPlan::resume`] loads them and recomputes only the missing
//!   shards. Because per-shard aggregates are pure functions of the shard
//!   and the final merge is in fixed shard order, *resumed ≡ uninterrupted,
//!   bit for bit, at any thread count* — proven by tests.
//! * **Quarantine** — a shard whose body panics or errors is retried under
//!   a deterministic budget with exponential backoff; when the budget is
//!   exhausted the shard is quarantined and the campaign **completes
//!   anyway**, reporting exactly which sessions (and therefore seeds) are
//!   missing. Callers exit non-zero on [`CampaignOutcome::is_complete`]
//!   being false.
//! * **Watchdog** — an optional per-attempt timeout cancels hung shards
//!   (cooperatively, via [`ShardCtx::is_cancelled`]) and requeues them
//!   under the same retry budget.
//!
//! ```
//! use mee_campaign::{Campaign, CampaignPlan};
//!
//! let plan = CampaignPlan::new("doc/example", 2019, 8, 4);
//! let campaign = Campaign::new(plan, vec!["value".into()], "doc/v1").unwrap();
//! let outcome = campaign
//!     .run(|spec, _ctx| Ok(vec![spec.seed as f64 / u64::MAX as f64]))
//!     .unwrap();
//! assert!(outcome.is_complete());
//! assert_eq!(outcome.aggregate.sessions, 8);
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod agg;
pub mod checkpoint;
mod runner;

pub use agg::{CampaignAggregate, QuantileSketch, SeriesAgg, ShardAggregate, StreamStats};
pub use checkpoint::{CampaignIdentity, CheckpointError};
pub use mee_sweep::SessionSpec;

use mee_obs::{CampaignLog, HostProfile};

/// Environment variable overriding the shard count of campaigns built with
/// [`CampaignPlan::shards_from_env`]; parsed through the workspace
/// strict-knob grammar (a malformed value is a loud error, never a silent
/// default).
pub const SHARDS_ENV: &str = "MEE_CAMPAIGN_SHARDS";

/// Environment variable naming the default checkpoint directory; parsed
/// through the workspace strict-knob grammar (set-but-empty is a loud
/// error).
pub const DIR_ENV: &str = "MEE_CAMPAIGN_DIR";

/// The [`HostProfile`] span covering one shard attempt's body.
pub const SHARD_SPAN: &str = "campaign_shard";

/// The [`HostProfile`] span covering one atomic checkpoint write.
pub const CHECKPOINT_WRITE_SPAN: &str = "campaign_checkpoint_write";

/// The [`HostProfile`] span covering one checkpoint load during resume.
pub const CHECKPOINT_LOAD_SPAN: &str = "campaign_checkpoint_load";

/// Reads the [`SHARDS_ENV`] override (`None` when unset).
///
/// # Panics
///
/// Panics with the strict-knob message when set but not a positive
/// integer — identical policy to `MEE_SWEEP_THREADS`.
pub fn shards_from_env() -> Option<usize> {
    mee_rng::env_knob::positive_from_env::<usize>(SHARDS_ENV)
}

/// Reads the [`DIR_ENV`] override (`None` when unset).
///
/// # Panics
///
/// Panics with the strict-knob message when set but empty or
/// whitespace-only.
pub fn dir_from_env() -> Option<PathBuf> {
    mee_rng::env_knob::nonempty_from_env(DIR_ENV).map(PathBuf::from)
}

/// The contiguous session range of shard `s` in a balanced partition of
/// `sessions` over `shards` (first `sessions % shards` shards get one
/// extra session).
///
/// # Panics
///
/// Panics when `shards` is zero or `s` out of range.
pub fn shard_range(sessions: usize, shards: usize, s: usize) -> std::ops::Range<usize> {
    assert!(shards > 0, "a campaign needs at least one shard");
    assert!(s < shards, "shard {s} out of range (shards = {shards})");
    let q = sessions / shards;
    let r = sessions % shards;
    let lo = s * q + s.min(r);
    let hi = lo + q + usize::from(s < r);
    lo..hi
}

/// Execution parameters of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPlan {
    /// Campaign name; part of the checkpoint identity.
    pub name: String,
    /// Root seed: session `i` runs with `stream_seed(root_seed, i)`.
    pub root_seed: u64,
    /// Total sessions in the campaign.
    pub sessions: usize,
    /// Shard count. Part of the campaign identity: per-shard Welford
    /// aggregates depend on the partition, so resuming under a different
    /// shard count is refused rather than silently mixed.
    pub shards: usize,
    /// Worker threads; `None` defers to `MEE_SWEEP_THREADS` / host
    /// parallelism exactly like [`mee_sweep::Sweep::new`].
    pub threads: Option<usize>,
    /// Checkpoint directory; `None` disables checkpointing (the campaign
    /// still runs, aggregates in memory only).
    pub dir: Option<PathBuf>,
    /// When true, existing valid checkpoints in `dir` are loaded and only
    /// missing shards execute. When false, a non-empty `dir` is an error —
    /// stale state must never be mixed in accidentally.
    pub resume: bool,
    /// How many *extra* attempts a faulting shard gets after its first
    /// (0 = fail fast).
    pub retries: u32,
    /// Base of the deterministic exponential backoff: retry attempt `k`
    /// (1-based) becomes eligible `backoff · 2^(k−1)` after the fault.
    pub backoff: Duration,
    /// Per-attempt watchdog timeout; `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Crash injection for tests and the ci.sh kill/resume smoke: after
    /// this many *freshly written* checkpoints the campaign aborts with
    /// [`CampaignError::Aborted`], leaving the checkpoint directory
    /// exactly as a `kill -9` at that instant would.
    pub abort_after: Option<usize>,
}

impl CampaignPlan {
    /// A plan with robustness defaults: 2 retries, 10 ms backoff base, no
    /// watchdog, no checkpoint dir, environment-default threads.
    pub fn new(name: impl Into<String>, root_seed: u64, sessions: usize, shards: usize) -> Self {
        CampaignPlan {
            name: name.into(),
            root_seed,
            sessions,
            shards,
            threads: None,
            dir: None,
            resume: false,
            retries: 2,
            backoff: Duration::from_millis(10),
            watchdog: None,
            abort_after: None,
        }
    }

    /// Sets the checkpoint directory.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Enables resuming from existing checkpoints in the directory.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Pins the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the per-shard retry budget (extra attempts after the first).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the exponential-backoff base.
    #[must_use]
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Enables the per-attempt watchdog.
    #[must_use]
    pub fn watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Enables crash injection after `n` fresh checkpoints.
    #[must_use]
    pub fn abort_after(mut self, n: usize) -> Self {
        self.abort_after = Some(n);
        self
    }

    /// The shard count from [`SHARDS_ENV`] if set, else `default`.
    ///
    /// # Panics
    ///
    /// Panics (strict-knob policy) when the variable is set but malformed.
    pub fn shards_from_env(default: usize) -> usize {
        shards_from_env().unwrap_or(default)
    }

    /// The session range of shard `s` under this plan.
    pub fn shard_range(&self, s: usize) -> std::ops::Range<usize> {
        shard_range(self.sessions, self.shards, s)
    }

    /// Resolved worker count: the explicit override, else the
    /// `MEE_SWEEP_THREADS` / host-parallelism default shared with
    /// [`mee_sweep::Sweep`].
    ///
    /// # Errors
    ///
    /// Propagates the [`mee_sweep::ThreadsEnvError`] of a malformed
    /// `MEE_SWEEP_THREADS`.
    pub fn resolved_threads(&self) -> Result<usize, mee_sweep::ThreadsEnvError> {
        match self.threads {
            Some(n) => Ok(n),
            None => Ok(mee_sweep::Sweep::from_env()?.thread_count()),
        }
    }
}

/// Per-attempt context handed to the session body: which shard and attempt
/// is executing, and the cooperative cancellation flag the watchdog sets.
///
/// Long-running session bodies should poll [`ShardCtx::is_cancelled`] at
/// convenient points (between probe batches, between sessions) and return
/// early; the runner discards any result of a cancelled attempt either
/// way, so ignoring the flag only wastes worker time, never correctness.
#[derive(Debug, Clone)]
pub struct ShardCtx {
    /// The shard being executed.
    pub shard: usize,
    /// 0-based attempt number (0 = first try).
    pub attempt: u32,
    cancelled: Arc<AtomicBool>,
}

impl ShardCtx {
    pub(crate) fn new(shard: usize, attempt: u32, cancelled: Arc<AtomicBool>) -> Self {
        ShardCtx { shard, attempt, cancelled }
    }

    /// True once the watchdog has timed this attempt out (or the campaign
    /// is shutting down); the body should return promptly.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Why a shard ended up quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Every attempt panicked; the final enriched payload is preserved.
    Panicked(String),
    /// Every attempt returned a session error.
    Failed(String),
    /// Every attempt exceeded the watchdog timeout.
    Hung,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Panicked(msg) => write!(f, "panicked: {msg}"),
            QuarantineReason::Failed(msg) => write!(f, "failed: {msg}"),
            QuarantineReason::Hung => write!(f, "hung: watchdog timeout on every attempt"),
        }
    }
}

/// One quarantined shard: exactly which sessions are missing and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// The shard index.
    pub shard: usize,
    /// First missing session index (inclusive).
    pub lo: usize,
    /// One past the last missing session index.
    pub hi: usize,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// Why the shard was given up on.
    pub reason: QuarantineReason,
}

/// The result of a finished campaign (including gracefully-degraded ones —
/// check [`CampaignOutcome::is_complete`]).
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign name (from the plan).
    pub name: String,
    /// Root seed (for replay recipes).
    pub root_seed: u64,
    /// Merged aggregate of every *completed* shard, in shard order.
    pub aggregate: CampaignAggregate,
    /// Completed shard indices, ascending.
    pub completed: Vec<usize>,
    /// The subset of `completed` that was restored from checkpoints.
    pub resumed: Vec<usize>,
    /// Shards excluded from the aggregate, with exact missing ranges.
    pub quarantined: Vec<QuarantinedShard>,
    /// The deterministic phase/fault event log.
    pub log: CampaignLog,
    /// Host wall-clock spans (shard bodies, checkpoint I/O) — measurement
    /// output, never part of the deterministic aggregate.
    pub host: HostProfile,
}

impl CampaignOutcome {
    /// True when every shard completed (nothing quarantined).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Every session index excluded from the aggregate, ascending.
    pub fn missing_sessions(&self) -> Vec<usize> {
        let mut out: Vec<usize> =
            self.quarantined.iter().flat_map(|q| q.lo..q.hi).collect();
        out.sort_unstable();
        out
    }

    /// The exact quarantine report: one line per quarantined shard naming
    /// the missing session range, the per-session seed recipe, the attempt
    /// count, and the terminal fault. Empty string when complete.
    pub fn quarantine_report(&self) -> String {
        let mut out = String::new();
        for q in &self.quarantined {
            out.push_str(&format!(
                "quarantined shard {}: sessions {}..{} missing after {} attempt(s): {} | \
                 replay: session i reruns standalone with seed stream_seed({}, i)\n",
                q.shard, q.lo, q.hi, q.attempts, q.reason, self.root_seed
            ));
        }
        out
    }
}

/// A campaign that could not produce an outcome at all (as opposed to a
/// degraded-but-finished one, which is an `Ok` with quarantine entries).
#[derive(Debug)]
pub enum CampaignError {
    /// The plan is internally inconsistent (zero shards, bad series names,
    /// crash injection without a checkpoint dir, …).
    InvalidPlan(String),
    /// A checkpoint could not be written or read — including the loud
    /// corrupt-checkpoint and campaign-mismatch cases.
    Checkpoint(CheckpointError),
    /// Filesystem failure outside checkpoint files themselves.
    Io {
        /// The path being accessed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The checkpoint directory already holds shard files but
    /// [`CampaignPlan::resume`] is off.
    DirNotEmpty {
        /// The directory.
        dir: PathBuf,
        /// How many shard checkpoints it holds.
        found: usize,
    },
    /// A malformed `MEE_SWEEP_THREADS` (surfaced as a value so binaries
    /// exit with a usage message).
    Threads(mee_sweep::ThreadsEnvError),
    /// Injected crash (`abort_after`) fired: the process state is exactly
    /// a kill after `checkpointed` shards were durably written.
    Aborted {
        /// Fresh checkpoints written before the abort.
        checkpointed: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::InvalidPlan(msg) => write!(f, "invalid campaign plan: {msg}"),
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::Io { path, source } => {
                write!(f, "campaign I/O error at {}: {source}", path.display())
            }
            CampaignError::DirNotEmpty { dir, found } => write!(
                f,
                "checkpoint directory {} already holds {found} shard checkpoint(s); pass \
                 resume to continue that campaign or point at a fresh directory",
                dir.display()
            ),
            CampaignError::Threads(e) => write!(f, "{e}"),
            CampaignError::Aborted { checkpointed } => write!(
                f,
                "campaign aborted by crash injection after {checkpointed} checkpointed \
                 shard(s); rerun with resume to continue"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Checkpoint(e) => Some(e),
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Threads(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// A fully-specified campaign: plan, series names, and the body-version
/// tag that invalidates old checkpoints when the session computation
/// changes.
#[derive(Debug, Clone)]
pub struct Campaign {
    plan: CampaignPlan,
    series: Vec<String>,
    body_version: String,
}

impl Campaign {
    /// Validates and builds a campaign.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidPlan`] for zero shards, an empty or
    /// whitespace-bearing series name, duplicate series names, or crash
    /// injection without a checkpoint directory.
    pub fn new(
        plan: CampaignPlan,
        series: Vec<String>,
        body_version: impl Into<String>,
    ) -> Result<Self, CampaignError> {
        let invalid = |msg: String| Err(CampaignError::InvalidPlan(msg));
        if plan.shards == 0 {
            return invalid("a campaign needs at least one shard".into());
        }
        if series.is_empty() {
            return invalid("a campaign needs at least one series".into());
        }
        for (i, name) in series.iter().enumerate() {
            if name.is_empty() || name.chars().any(char::is_whitespace) {
                return invalid(format!("series {i} has an empty or whitespace name {name:?}"));
            }
        }
        let mut sorted = series.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != series.len() {
            return invalid("duplicate series names".into());
        }
        if plan.abort_after.is_some() && plan.dir.is_none() {
            return invalid("crash injection (abort_after) requires a checkpoint dir".into());
        }
        if plan.resume && plan.dir.is_none() {
            return invalid("resume requires a checkpoint dir".into());
        }
        if let Some(t) = plan.threads {
            if t == 0 {
                return invalid("a campaign needs at least one worker thread".into());
            }
        }
        Ok(Campaign { plan, series, body_version: body_version.into() })
    }

    /// The campaign's plan.
    pub fn plan(&self) -> &CampaignPlan {
        &self.plan
    }

    /// The campaign's series names, in order.
    pub fn series(&self) -> &[String] {
        &self.series
    }

    /// The checkpoint identity (fingerprint input) of this campaign.
    pub fn identity(&self) -> CampaignIdentity {
        CampaignIdentity {
            name: self.plan.name.clone(),
            root_seed: self.plan.root_seed,
            sessions: self.plan.sessions,
            shards: self.plan.shards,
            series: self.series.clone(),
            body_version: self.body_version.clone(),
        }
    }

    /// Runs the campaign: executes (or resumes) every shard, aggregates in
    /// shard order, and returns the outcome — including gracefully
    /// degraded outcomes with quarantined shards (`Ok`, but
    /// [`CampaignOutcome::is_complete`] is false).
    ///
    /// `body` runs once per session with that session's
    /// [`SessionSpec`] (seed = `stream_seed(root, index)`) and the
    /// [`ShardCtx`]; it returns one `f64` per series, in series order, or
    /// a session-error string. It must be a pure function of the spec for
    /// the determinism guarantees to hold.
    ///
    /// # Errors
    ///
    /// See [`CampaignError`]; notably a corrupt checkpoint is an error
    /// here, *not* a silent recompute.
    pub fn run<F>(&self, body: F) -> Result<CampaignOutcome, CampaignError>
    where
        F: Fn(SessionSpec, &ShardCtx) -> Result<Vec<f64>, String> + Sync,
    {
        runner::run(self, &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_session_space() {
        for (sessions, shards) in [(16, 4), (17, 4), (3, 8), (0, 2), (100, 7), (5, 5)] {
            let mut covered = Vec::new();
            for s in 0..shards {
                let r = shard_range(sessions, shards, s);
                assert!(r.start <= r.end);
                covered.extend(r);
            }
            assert_eq!(covered, (0..sessions).collect::<Vec<_>>(), "{sessions}/{shards}");
        }
    }

    #[test]
    fn balanced_partition_spreads_the_remainder() {
        // 10 sessions over 4 shards: 3,3,2,2.
        let sizes: Vec<usize> =
            (0..4).map(|s| shard_range(10, 4, s).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let ok_series = || vec!["x".to_owned()];
        assert!(Campaign::new(CampaignPlan::new("t", 1, 4, 0), ok_series(), "v").is_err());
        assert!(Campaign::new(CampaignPlan::new("t", 1, 4, 2), vec![], "v").is_err());
        assert!(
            Campaign::new(CampaignPlan::new("t", 1, 4, 2), vec!["a b".into()], "v").is_err()
        );
        assert!(Campaign::new(
            CampaignPlan::new("t", 1, 4, 2),
            vec!["a".into(), "a".into()],
            "v"
        )
        .is_err());
        assert!(Campaign::new(
            CampaignPlan::new("t", 1, 4, 2).abort_after(1),
            ok_series(),
            "v"
        )
        .is_err(), "abort_after without dir must be rejected");
        assert!(Campaign::new(CampaignPlan::new("t", 1, 4, 2), ok_series(), "v").is_ok());
    }

    #[test]
    fn env_knobs_route_through_the_strict_grammar() {
        // Unset ⇒ None; the strict-parse failure paths are covered by the
        // env_knob crate tests (process-global env vars are not toyed with
        // here).
        assert_eq!(shards_from_env(), None);
        assert_eq!(dir_from_env(), None);
        assert_eq!(CampaignPlan::shards_from_env(12), 12);
    }
}

//! The campaign execution engine: a work-stealing attempt queue drained by
//! scoped worker threads, coordinated by the calling thread.
//!
//! Concurrency model (and why the result is still deterministic):
//!
//! * Workers race over *shards*, but each shard's sessions fold serially in
//!   index order on whichever worker owns the attempt — so a shard
//!   aggregate is a pure function of the shard, independent of scheduling.
//! * The coordinator merges completed shard aggregates in ascending shard
//!   order *after* all shards resolve — so the campaign aggregate is
//!   independent of completion order, thread count, and (because resumed
//!   checkpoints are byte-exact round-trips) of whether any shard was
//!   computed now or in a previous process.
//! * Faults (panics, session errors, watchdog timeouts) only ever remove a
//!   shard from the aggregate (quarantine) or cause a bit-identical
//!   recompute (retry) — they cannot reorder the fold.
//!
//! Cancellation is cooperative: safe Rust cannot kill a thread, so the
//! watchdog flips the attempt's [`ShardCtx`] flag, marks the attempt stale
//! (its eventual result is discarded), and requeues the shard. A body that
//! never polls the flag delays process exit but never corrupts results.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mee_obs::{CampaignLog, HostProfile, ShardEvent};
use mee_rng::stream_seed;

use crate::agg::{CampaignAggregate, ShardAggregate};
use crate::checkpoint;
use crate::{
    Campaign, CampaignError, CampaignOutcome, QuarantineReason, QuarantinedShard, SessionSpec,
    ShardCtx, CHECKPOINT_LOAD_SPAN, CHECKPOINT_WRITE_SPAN, SHARD_SPAN,
};

/// One schedulable unit: a numbered attempt at a shard, eligible to run
/// once `not_before` has passed (exponential backoff lives here).
struct QueuedAttempt {
    shard: usize,
    attempt: u32,
    not_before: Instant,
    cancel: Arc<AtomicBool>,
}

/// How one attempt at a shard ended, from the worker's point of view.
enum AttemptOutcome {
    Done(Box<ShardAggregate>),
    Panicked(String),
    Failed(String),
    Cancelled,
}

enum Msg {
    Started { shard: usize, attempt: u32 },
    Finished { shard: usize, attempt: u32, outcome: AttemptOutcome, elapsed: Duration },
}

/// The coordinator's view of a shard's live attempt.
struct LiveAttempt {
    attempt: u32,
    cancel: Arc<AtomicBool>,
    /// Watchdog deadline; armed when `Started` arrives (queue wait does
    /// not count against the timeout).
    deadline: Option<Instant>,
}

/// Runs one attempt at a shard: sessions folded strictly in index order,
/// with the cancel flag checked between sessions and a panic enriched with
/// the exact session, seed, and replay recipe (mee-spec counterexample
/// style).
fn run_attempt<F>(campaign: &Campaign, ctx: &ShardCtx, body: &F) -> AttemptOutcome
where
    F: Fn(SessionSpec, &ShardCtx) -> Result<Vec<f64>, String> + Sync,
{
    let plan = campaign.plan();
    let range = plan.shard_range(ctx.shard);
    let nseries = campaign.series().len();
    let current = std::cell::Cell::new(range.start);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut agg = ShardAggregate::empty(ctx.shard, range.start, range.end, nseries);
        for index in range.clone() {
            if ctx.is_cancelled() {
                return AttemptOutcome::Cancelled;
            }
            current.set(index);
            let spec = SessionSpec { index, seed: stream_seed(plan.root_seed, index as u64) };
            match body(spec, ctx) {
                Ok(values) => agg.push_session(&values),
                Err(message) => {
                    return AttemptOutcome::Failed(format!(
                        "session {index} (seed 0x{seed:016x}): {message} | replay: rerun \
                         session {index} alone — its seed is stream_seed({root}, {index})",
                        seed = spec.seed,
                        root = plan.root_seed,
                    ))
                }
            }
        }
        AttemptOutcome::Done(Box::new(agg))
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let index = current.get();
            AttemptOutcome::Panicked(format!(
                "session {index} (seed 0x{seed:016x}): {msg} | replay: rerun session \
                 {index} alone — its seed is stream_seed({root}, {index})",
                seed = stream_seed(plan.root_seed, index as u64),
                msg = mee_sweep::panic_message(payload.as_ref()),
                root = plan.root_seed,
            ))
        }
    }
}

/// Worker loop: pop the first *due* attempt, run it, report back. Exits
/// when the shutdown flag is raised.
fn worker<F>(
    campaign: &Campaign,
    body: &F,
    queue: &Mutex<VecDeque<QueuedAttempt>>,
    shutdown: &AtomicBool,
    tx: &Sender<Msg>,
) where
    F: Fn(SessionSpec, &ShardCtx) -> Result<Vec<f64>, String> + Sync,
{
    while !shutdown.load(Ordering::Relaxed) {
        let job = {
            let mut q = queue.lock().expect("campaign queue poisoned");
            let now = Instant::now();
            q.iter()
                .position(|j| j.not_before <= now)
                .and_then(|pos| q.remove(pos))
        };
        let Some(job) = job else {
            std::thread::sleep(Duration::from_micros(500));
            continue;
        };
        let _ = tx.send(Msg::Started { shard: job.shard, attempt: job.attempt });
        let ctx = ShardCtx::new(job.shard, job.attempt, job.cancel);
        let start = Instant::now();
        let outcome = run_attempt(campaign, &ctx, body);
        let _ = tx.send(Msg::Finished {
            shard: job.shard,
            attempt: job.attempt,
            outcome,
            elapsed: start.elapsed(),
        });
    }
}

/// Everything the coordinator mutates while shards resolve. Extracted so
/// the retry-or-quarantine decision is one function shared by the fault
/// and timeout paths.
struct Coordinator<'c> {
    campaign: &'c Campaign,
    queue: &'c Mutex<VecDeque<QueuedAttempt>>,
    live: Vec<Option<LiveAttempt>>,
    results: Vec<Option<ShardAggregate>>,
    quarantined: Vec<QuarantinedShard>,
    log: CampaignLog,
    host: HostProfile,
    unresolved: usize,
    fresh_checkpoints: usize,
}

impl Coordinator<'_> {
    fn enqueue(&mut self, shard: usize, attempt: u32, not_before: Instant) {
        let cancel = Arc::new(AtomicBool::new(false));
        self.live[shard] =
            Some(LiveAttempt { attempt, cancel: cancel.clone(), deadline: None });
        self.queue
            .lock()
            .expect("campaign queue poisoned")
            .push_back(QueuedAttempt { shard, attempt, not_before, cancel });
    }

    /// The deterministic backoff before retry attempt `next` (1-based):
    /// `backoff · 2^(next−1)`, saturating.
    fn backoff_for(&self, next: u32) -> Duration {
        let base = self.campaign.plan().backoff;
        base.saturating_mul(1u32.checked_shl(next - 1).unwrap_or(u32::MAX))
    }

    /// A faulted attempt either requeues (budget remaining) or quarantines
    /// the shard. `reason` is only built when the budget is exhausted.
    fn retry_or_quarantine(
        &mut self,
        shard: usize,
        attempt: u32,
        reason: impl FnOnce() -> QuarantineReason,
    ) {
        let retries = self.campaign.plan().retries;
        if attempt < retries {
            let next = attempt + 1;
            let backoff = self.backoff_for(next);
            self.log.record(
                shard,
                ShardEvent::Requeued { attempt: next, backoff_ms: backoff.as_millis() as u64 },
            );
            self.enqueue(shard, next, Instant::now() + backoff);
        } else {
            let reason = reason();
            self.log.record(
                shard,
                ShardEvent::Quarantined { attempts: attempt + 1, reason: reason.to_string() },
            );
            let range = self.campaign.plan().shard_range(shard);
            self.quarantined.push(QuarantinedShard {
                shard,
                lo: range.start,
                hi: range.end,
                attempts: attempt + 1,
                reason,
            });
            self.live[shard] = None;
            self.unresolved -= 1;
        }
    }

    /// Handles one worker message. `Ok(true)` means the injected crash
    /// fired and the campaign must abort.
    fn handle(&mut self, msg: Msg) -> Result<bool, CampaignError> {
        match msg {
            Msg::Started { shard, attempt } => {
                // Arm the watchdog only for the attempt we still care
                // about (a stale Started can arrive after a requeue).
                if let Some(live) = self.live[shard].as_mut() {
                    if live.attempt == attempt {
                        self.log.record(shard, ShardEvent::Started { attempt });
                        live.deadline = self
                            .campaign
                            .plan()
                            .watchdog
                            .map(|t| Instant::now() + t);
                    }
                }
                Ok(false)
            }
            Msg::Finished { shard, attempt, outcome, elapsed } => {
                self.host.record(SHARD_SPAN, elapsed);
                let is_current =
                    self.live[shard].as_ref().is_some_and(|l| l.attempt == attempt);
                if !is_current {
                    return Ok(false); // stale (timed out or superseded): discard
                }
                match outcome {
                    AttemptOutcome::Done(agg) => {
                        self.log.record(
                            shard,
                            ShardEvent::Completed { attempt, sessions: agg.sessions() },
                        );
                        if let Some(dir) = self.campaign.plan().dir.clone() {
                            self.checkpoint(&dir, &agg)?;
                        }
                        self.results[shard] = Some(*agg);
                        self.live[shard] = None;
                        self.unresolved -= 1;
                        if self.campaign.plan().abort_after
                            == Some(self.fresh_checkpoints)
                        {
                            return Ok(true);
                        }
                    }
                    AttemptOutcome::Panicked(message) => {
                        self.log.record(
                            shard,
                            ShardEvent::Panicked { attempt, message: message.clone() },
                        );
                        self.retry_or_quarantine(shard, attempt, || {
                            QuarantineReason::Panicked(message)
                        });
                    }
                    AttemptOutcome::Failed(message) => {
                        self.log.record(
                            shard,
                            ShardEvent::Failed { attempt, message: message.clone() },
                        );
                        self.retry_or_quarantine(shard, attempt, || {
                            QuarantineReason::Failed(message)
                        });
                    }
                    // A Cancelled outcome for the *current* attempt cannot
                    // arise from the watchdog (cancelling requeues first),
                    // only from shutdown — by which point the loop has
                    // exited. Discard defensively.
                    AttemptOutcome::Cancelled => {}
                }
                Ok(false)
            }
        }
    }

    fn checkpoint(&mut self, dir: &Path, agg: &ShardAggregate) -> Result<(), CampaignError> {
        let identity = self.campaign.identity();
        let start = Instant::now();
        checkpoint::write(dir, &identity, agg)?;
        self.host.record(CHECKPOINT_WRITE_SPAN, start.elapsed());
        self.log.record(agg.shard, ShardEvent::Checkpointed);
        self.fresh_checkpoints += 1;
        Ok(())
    }

    /// Cancels every live attempt whose watchdog deadline has passed and
    /// requeues or quarantines its shard.
    fn scan_watchdog(&mut self) {
        let now = Instant::now();
        let expired: Vec<(usize, u32)> = self
            .live
            .iter()
            .enumerate()
            .filter_map(|(shard, live)| {
                let live = live.as_ref()?;
                let deadline = live.deadline?;
                (deadline <= now).then(|| {
                    live.cancel.store(true, Ordering::Relaxed);
                    (shard, live.attempt)
                })
            })
            .collect();
        for (shard, attempt) in expired {
            self.log.record(shard, ShardEvent::TimedOut { attempt });
            self.retry_or_quarantine(shard, attempt, || QuarantineReason::Hung);
        }
    }
}

/// Counts existing shard checkpoints in `dir` (for the `DirNotEmpty`
/// guard).
fn existing_checkpoints(dir: &Path, shards: usize) -> usize {
    (0..shards)
        .filter(|&s| dir.join(checkpoint::shard_file_name(s)).exists())
        .count()
}

pub(crate) fn run<F>(campaign: &Campaign, body: &F) -> Result<CampaignOutcome, CampaignError>
where
    F: Fn(SessionSpec, &ShardCtx) -> Result<Vec<f64>, String> + Sync,
{
    let plan = campaign.plan();
    let threads = plan.resolved_threads().map_err(CampaignError::Threads)?.max(1);
    let identity = campaign.identity();
    let mut log = CampaignLog::new();
    let mut host = HostProfile::new();
    let mut results: Vec<Option<ShardAggregate>> = vec![None; plan.shards];
    let mut resumed: Vec<usize> = Vec::new();

    // ---- Checkpoint directory: guard, then resume pre-pass. ----
    if let Some(dir) = &plan.dir {
        std::fs::create_dir_all(dir).map_err(|source| CampaignError::Io {
            path: dir.clone(),
            source,
        })?;
        let found = existing_checkpoints(dir, plan.shards);
        if found > 0 && !plan.resume {
            return Err(CampaignError::DirNotEmpty { dir: dir.clone(), found });
        }
        if plan.resume {
            for (shard, slot) in results.iter_mut().enumerate() {
                let start = Instant::now();
                // A corrupt or mismatched checkpoint is a loud error here —
                // never a silent recompute.
                let loaded =
                    checkpoint::load(dir, &identity, shard, plan.shard_range(shard))?;
                host.record(CHECKPOINT_LOAD_SPAN, start.elapsed());
                if let Some(agg) = loaded {
                    log.record(shard, ShardEvent::Resumed);
                    *slot = Some(agg);
                    resumed.push(shard);
                }
            }
        }
    }

    let pending: Vec<usize> = (0..plan.shards).filter(|&s| results[s].is_none()).collect();

    // ---- Execute the missing shards. ----
    let queue = Mutex::new(VecDeque::new());
    let mut coord = Coordinator {
        campaign,
        queue: &queue,
        live: (0..plan.shards).map(|_| None).collect(),
        results,
        quarantined: Vec::new(),
        log,
        host,
        unresolved: pending.len(),
        fresh_checkpoints: 0,
    };
    let mut aborted = false;
    if !pending.is_empty() {
        for &shard in &pending {
            coord.enqueue(shard, 0, Instant::now());
        }
        let shutdown = AtomicBool::new(false);
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = std::sync::mpsc::channel();
        let run_result: Result<bool, CampaignError> = std::thread::scope(|scope| {
            for _ in 0..threads.min(pending.len()) {
                let tx = tx.clone();
                let queue = coord.queue;
                let shutdown = &shutdown;
                scope.spawn(move || worker(campaign, body, queue, shutdown, &tx));
            }
            drop(tx);
            let outcome = coordinate(&mut coord, &rx);
            // Stop the workers and release any cooperative hangs before
            // the scope joins.
            shutdown.store(true, Ordering::Relaxed);
            for live in coord.live.iter().flatten() {
                live.cancel.store(true, Ordering::Relaxed);
            }
            coord.queue.lock().expect("campaign queue poisoned").clear();
            outcome
        });
        aborted = run_result?;
    }

    if aborted {
        return Err(CampaignError::Aborted { checkpointed: coord.fresh_checkpoints });
    }

    // ---- Assemble: fixed ascending shard order ⇒ deterministic merge. ----
    let mut completed: Vec<usize> = Vec::new();
    let mut shard_aggs: Vec<ShardAggregate> = Vec::new();
    for (shard, slot) in coord.results.iter().enumerate() {
        if let Some(agg) = slot {
            completed.push(shard);
            shard_aggs.push(agg.clone());
        }
    }
    coord.quarantined.sort_by_key(|q| q.shard);
    let aggregate = CampaignAggregate::merge_shards(campaign.series(), &shard_aggs);
    Ok(CampaignOutcome {
        name: plan.name.clone(),
        root_seed: plan.root_seed,
        aggregate,
        completed,
        resumed,
        quarantined: coord.quarantined,
        log: coord.log,
        host: coord.host,
    })
}

/// The coordinator loop: drains worker messages, arms the watchdog, and
/// stops when every pending shard has resolved (completed or quarantined)
/// or the injected crash fires (`Ok(true)`).
fn coordinate(
    coord: &mut Coordinator<'_>,
    rx: &Receiver<Msg>,
) -> Result<bool, CampaignError> {
    while coord.unresolved > 0 {
        match rx.recv_timeout(Duration::from_millis(2)) {
            Ok(msg) => {
                if coord.handle(msg)? {
                    return Ok(true);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                unreachable!("workers exited while shards were unresolved")
            }
        }
        if coord.campaign.plan().watchdog.is_some() {
            coord.scan_watchdog();
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampaignPlan, CheckpointError};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mee_campaign_run_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn series() -> Vec<String> {
        vec!["lat".to_owned(), "hit".to_owned()]
    }

    /// A deterministic pure-function body: two series derived from the
    /// session seed alone (never from attempt or shard), as the
    /// determinism contract requires.
    fn clean_body(spec: SessionSpec, _ctx: &ShardCtx) -> Result<Vec<f64>, String> {
        let x = (spec.seed >> 11) as f64 / (1u64 << 53) as f64;
        Ok(vec![x, spec.index as f64 + x])
    }

    fn campaign(plan: CampaignPlan) -> Campaign {
        Campaign::new(plan, series(), "test/v1").unwrap()
    }

    #[test]
    fn outcome_is_bit_identical_at_any_thread_count() {
        let mut renders = Vec::new();
        for threads in [1, 2, 8] {
            let c = campaign(CampaignPlan::new("t/threads", 2019, 23, 5).threads(threads));
            let out = c.run(clean_body).unwrap();
            assert!(out.is_complete());
            assert_eq!(out.aggregate.sessions, 23);
            assert_eq!(out.completed, vec![0, 1, 2, 3, 4]);
            renders.push(out.aggregate.render());
        }
        assert_eq!(renders[0], renders[1]);
        assert_eq!(renders[0], renders[2]);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_to_uninterrupted() {
        let ref_dir = tmp_dir("ref");
        let kill_dir = tmp_dir("kill");

        // Uninterrupted reference at 2 threads.
        let c = campaign(
            CampaignPlan::new("t/resume", 2019, 17, 6).threads(2).dir(&ref_dir),
        );
        let reference = c.run(clean_body).unwrap();
        assert!(reference.is_complete());

        // Same campaign, crash injected after 2 durable checkpoints.
        let c = campaign(
            CampaignPlan::new("t/resume", 2019, 17, 6)
                .threads(2)
                .dir(&kill_dir)
                .abort_after(2),
        );
        match c.run(clean_body) {
            Err(CampaignError::Aborted { checkpointed }) => assert_eq!(checkpointed, 2),
            other => panic!("expected injected abort, got {other:?}"),
        }

        // Resume at a *different* thread count.
        let c = campaign(
            CampaignPlan::new("t/resume", 2019, 17, 6)
                .threads(7)
                .dir(&kill_dir)
                .resume(true),
        );
        let resumed = c.run(clean_body).unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed.len(), 2, "exactly the checkpointed shards resume");
        assert_eq!(
            resumed.log.count(|e| matches!(e, ShardEvent::Resumed)),
            2
        );

        // Byte-identical aggregate…
        assert_eq!(reference.aggregate.render(), resumed.aggregate.render());
        // …and byte-identical checkpoint files shard by shard.
        for s in 0..6 {
            let name = checkpoint::shard_file_name(s);
            let a = std::fs::read(ref_dir.join(&name)).unwrap();
            let b = std::fs::read(kill_dir.join(&name)).unwrap();
            assert_eq!(a, b, "shard {s} checkpoint differs");
        }

        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&kill_dir);
    }

    #[test]
    fn panicking_shard_is_quarantined_and_the_rest_completes() {
        let c = campaign(CampaignPlan::new("t/panic", 7, 12, 4).threads(3).retries(1));
        let bad = c.plan().shard_range(2);
        let out = c
            .run(|spec, _ctx| {
                if (bad.start..bad.end).contains(&spec.index) {
                    panic!("synthetic fault at session {}", spec.index);
                }
                clean_body(spec, _ctx)
            })
            .unwrap();
        assert!(!out.is_complete());
        assert_eq!(out.completed, vec![0, 1, 3]);
        assert_eq!(out.quarantined.len(), 1);
        let q = &out.quarantined[0];
        assert_eq!((q.shard, q.lo, q.hi, q.attempts), (2, bad.start, bad.end, 2));
        match &q.reason {
            QuarantineReason::Panicked(msg) => {
                assert!(msg.contains("synthetic fault"), "{msg}");
                assert!(msg.contains("seed 0x"), "{msg}");
                assert!(msg.contains("replay: rerun session"), "{msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(out.missing_sessions(), (bad.start..bad.end).collect::<Vec<_>>());
        assert_eq!(out.aggregate.sessions, (12 - (bad.end - bad.start)) as u64);
        let report = out.quarantine_report();
        assert!(report.contains("quarantined shard 2"), "{report}");
        assert!(report.contains("stream_seed(7, i)"), "{report}");
    }

    #[test]
    fn flaky_panic_recovers_on_retry_with_identical_results() {
        let c = campaign(CampaignPlan::new("t/flaky", 2019, 10, 3).threads(2).retries(2));
        let out = c
            .run(|spec, ctx| {
                if ctx.shard == 1 && ctx.attempt == 0 {
                    panic!("transient fault");
                }
                clean_body(spec, ctx)
            })
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.log.count(|e| matches!(e, ShardEvent::Panicked { .. })), 1);
        assert_eq!(out.log.count(|e| matches!(e, ShardEvent::Requeued { .. })), 1);

        // The retried campaign aggregate matches a fault-free run exactly.
        let clean = campaign(CampaignPlan::new("t/flaky", 2019, 10, 3).threads(2))
            .run(clean_body)
            .unwrap();
        assert_eq!(out.aggregate.render(), clean.aggregate.render());
    }

    #[test]
    fn failing_session_is_retried_then_quarantined_with_recipe() {
        let c = campaign(CampaignPlan::new("t/fail", 11, 8, 2).threads(2).retries(1));
        let out = c
            .run(|spec, ctx| {
                if ctx.shard == 0 && spec.index == 1 {
                    return Err("detector refused to converge".into());
                }
                clean_body(spec, ctx)
            })
            .unwrap();
        assert!(!out.is_complete());
        let q = &out.quarantined[0];
        assert_eq!(q.attempts, 2);
        match &q.reason {
            QuarantineReason::Failed(msg) => {
                assert!(msg.contains("session 1"), "{msg}");
                assert!(msg.contains("detector refused to converge"), "{msg}");
                assert!(msg.contains("stream_seed(11, 1)"), "{msg}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn hung_shard_is_timed_out_and_quarantined() {
        let c = campaign(
            CampaignPlan::new("t/hang", 3, 6, 3)
                .threads(2)
                .retries(0)
                .watchdog(Duration::from_millis(40)),
        );
        let out = c
            .run(|spec, ctx| {
                if ctx.shard == 1 {
                    // Cooperative hang: spins until the watchdog cancels.
                    while !ctx.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return Err("unreachable: result is stale once cancelled".into());
                }
                clean_body(spec, ctx)
            })
            .unwrap();
        assert!(!out.is_complete());
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].shard, 1);
        assert_eq!(out.quarantined[0].reason, QuarantineReason::Hung);
        assert!(out.log.count(|e| matches!(e, ShardEvent::TimedOut { .. })) >= 1);
        assert_eq!(out.completed, vec![0, 2]);
    }

    #[test]
    fn flaky_hang_is_requeued_and_the_campaign_completes() {
        let c = campaign(
            CampaignPlan::new("t/flakyhang", 5, 6, 2)
                .threads(2)
                .retries(1)
                .watchdog(Duration::from_millis(40)),
        );
        let out = c
            .run(|spec, ctx| {
                if ctx.shard == 0 && ctx.attempt == 0 {
                    while !ctx.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return Err("stale".into());
                }
                clean_body(spec, ctx)
            })
            .unwrap();
        assert!(out.is_complete(), "report: {}", out.quarantine_report());
        assert!(out.log.count(|e| matches!(e, ShardEvent::TimedOut { .. })) >= 1);
        assert!(out.log.count(|e| matches!(e, ShardEvent::Requeued { .. })) >= 1);
    }

    #[test]
    fn non_empty_dir_without_resume_is_refused() {
        let dir = tmp_dir("noresume");
        let plan = || CampaignPlan::new("t/dir", 1, 8, 4).threads(2).dir(&dir);
        campaign(plan()).run(clean_body).unwrap();
        match campaign(plan()).run(clean_body) {
            Err(CampaignError::DirNotEmpty { found, .. }) => assert_eq!(found, 4),
            other => panic!("expected DirNotEmpty, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_on_resume_is_a_loud_error_not_a_recompute() {
        let dir = tmp_dir("corrupt_resume");
        let plan = || CampaignPlan::new("t/corrupt", 1, 8, 4).threads(2).dir(&dir);
        campaign(plan()).run(clean_body).unwrap();

        // Flip one byte in shard 2's checkpoint.
        let victim = dir.join(checkpoint::shard_file_name(2));
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        match campaign(plan().resume(true)).run(clean_body) {
            Err(CampaignError::Checkpoint(e @ CheckpointError::Corrupt { .. })) => {
                let msg = e.to_string();
                assert!(msg.contains("replay:"), "{msg}");
            }
            other => panic!("expected loud corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn host_profile_records_shard_and_checkpoint_spans() {
        let dir = tmp_dir("spans");
        let c = campaign(CampaignPlan::new("t/spans", 1, 8, 4).threads(2).dir(&dir));
        let out = c.run(clean_body).unwrap();
        assert_eq!(out.host.span(SHARD_SPAN).unwrap().count, 4);
        assert_eq!(out.host.span(CHECKPOINT_WRITE_SPAN).unwrap().count, 4);
        assert_eq!(
            out.log.count(|e| matches!(e, ShardEvent::Checkpointed)),
            4
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn more_shards_than_sessions_still_partitions_cleanly() {
        let c = campaign(CampaignPlan::new("t/tiny", 1, 2, 5).threads(3));
        let out = c.run(clean_body).unwrap();
        assert!(out.is_complete());
        assert_eq!(out.aggregate.sessions, 2);
        assert_eq!(out.completed.len(), 5, "empty shards still complete");
    }
}

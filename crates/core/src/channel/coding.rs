//! Error handling for the channel (an extension — the paper reports its
//! rates "without any error handling", §1).
//!
//! A Hamming(7,4) code corrects any single bit error per 7-bit block, which
//! matches the channel's error profile: errors are isolated (one stall or
//! one jitter spike corrupts one window). At the paper's 1.7% raw error
//! rate, the residual block-error probability drops below 0.6%.

/// Encodes data bits with Hamming(7,4): each 4-bit nibble becomes a 7-bit
/// codeword `p1 p2 d1 p3 d2 d3 d4`. The tail is zero-padded to a multiple
/// of 4 (the decoder trims it given the original length).
pub fn hamming_encode(data: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(data.len().div_ceil(4) * 7);
    for chunk in data.chunks(4) {
        let d: [bool; 4] = [
            chunk.first().copied().unwrap_or(false),
            chunk.get(1).copied().unwrap_or(false),
            chunk.get(2).copied().unwrap_or(false),
            chunk.get(3).copied().unwrap_or(false),
        ];
        let p1 = d[0] ^ d[1] ^ d[3];
        let p2 = d[0] ^ d[2] ^ d[3];
        let p3 = d[1] ^ d[2] ^ d[3];
        out.extend_from_slice(&[p1, p2, d[0], p3, d[1], d[2], d[3]]);
    }
    out
}

/// Decodes Hamming(7,4)-encoded bits, correcting up to one error per 7-bit
/// block, and returns the first `data_len` data bits.
///
/// Incomplete trailing blocks are decoded as-is without correction.
pub fn hamming_decode(coded: &[bool], data_len: usize) -> Vec<bool> {
    let mut out = Vec::with_capacity(data_len);
    for chunk in coded.chunks(7) {
        if chunk.len() < 7 {
            // Truncated block: take the data positions that exist.
            for &idx in &[2usize, 4, 5, 6] {
                if idx < chunk.len() {
                    out.push(chunk[idx]);
                }
            }
            continue;
        }
        let mut c: [bool; 7] = [
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6],
        ];
        // Syndrome: parity checks over positions (1-indexed) with bit i set.
        let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
        let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
        let s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
        let syndrome = (s1 as usize) | ((s2 as usize) << 1) | ((s3 as usize) << 2);
        if syndrome != 0 {
            c[syndrome - 1] = !c[syndrome - 1];
        }
        out.extend_from_slice(&[c[2], c[4], c[5], c[6]]);
    }
    out.truncate(data_len);
    out
}

/// The synchronization preamble prepended to framed transmissions: a
/// distinctive `10101011` pattern the receiver can anchor on.
pub const PREAMBLE: [bool; 8] = [true, false, true, false, true, false, true, true];

/// Frames a payload: preamble + Hamming-coded data.
pub fn frame(data: &[bool]) -> Vec<bool> {
    let mut out = PREAMBLE.to_vec();
    out.extend(hamming_encode(data));
    out
}

/// Deframes a received sequence: locates the preamble (exact match within
/// the first `search` positions) and decodes the payload. Returns `None`
/// if the preamble is not found.
pub fn deframe(received: &[bool], data_len: usize, search: usize) -> Option<Vec<bool>> {
    let start = locate_preamble(received, search, 0)?;
    let payload = &received[start + PREAMBLE.len()..];
    Some(hamming_decode(payload, data_len))
}

/// Finds the first offset within `search` where the received bits match
/// [`PREAMBLE`] with at most `tolerance` flipped bits, or `None`.
///
/// Tolerance 0 is the exact scan [`deframe`] uses; the self-healing
/// receiver re-locks with tolerance 1 (a single noise flip in the preamble
/// should not be mistaken for a lost window).
pub fn locate_preamble(received: &[bool], search: usize, tolerance: usize) -> Option<usize> {
    if received.len() < PREAMBLE.len() {
        return None;
    }
    let limit = search.min(received.len() - PREAMBLE.len());
    (0..=limit).find(|&i| {
        received[i..i + PREAMBLE.len()]
            .iter()
            .zip(PREAMBLE.iter())
            .filter(|(a, b)| a != b)
            .count()
            <= tolerance
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::random_bits;
    use mee_rng::prop::{check, vec_of, PropConfig};

    #[test]
    fn roundtrip_without_errors() {
        let data = random_bits(64, 1);
        let coded = hamming_encode(&data);
        assert_eq!(coded.len(), 64 / 4 * 7);
        assert_eq!(hamming_decode(&coded, 64), data);
    }

    #[test]
    fn corrects_any_single_error_per_block() {
        let data = random_bits(16, 2);
        let coded = hamming_encode(&data);
        for pos in 0..coded.len() {
            let mut corrupted = coded.clone();
            corrupted[pos] = !corrupted[pos];
            assert_eq!(
                hamming_decode(&corrupted, 16),
                data,
                "error at {pos} not corrected"
            );
        }
    }

    #[test]
    fn frame_deframe_roundtrip() {
        let data = random_bits(32, 3);
        let framed = frame(&data);
        assert_eq!(deframe(&framed, 32, 4), Some(data));
    }

    #[test]
    fn deframe_tolerates_leading_garbage_and_payload_error() {
        let data = random_bits(32, 4);
        let mut rx = vec![false, false, true];
        rx.extend(frame(&data));
        // One error inside the payload.
        let n = rx.len();
        rx[n - 3] = !rx[n - 3];
        assert_eq!(deframe(&rx, 32, 8), Some(data));
    }

    #[test]
    fn deframe_fails_without_preamble() {
        let rx = vec![false; 64];
        assert_eq!(deframe(&rx, 8, 16), None);
    }

    #[test]
    fn locate_preamble_tolerates_one_flip_when_asked() {
        let data = random_bits(16, 6);
        let mut rx = vec![false, true];
        rx.extend(frame(&data));
        rx[2 + 3] = !rx[2 + 3]; // corrupt one preamble bit
        assert_eq!(locate_preamble(&rx, 8, 0), None, "exact scan must miss");
        assert_eq!(locate_preamble(&rx, 8, 1), Some(2));
        assert_eq!(locate_preamble(&[true, false], 8, 1), None, "short input");
    }

    #[test]
    fn handles_non_multiple_of_four_lengths() {
        let data = random_bits(10, 5);
        let coded = hamming_encode(&data);
        assert_eq!(hamming_decode(&coded, 10), data);
    }

    /// Round-trip with at most one flipped bit per 7-bit block always
    /// recovers the payload.
    #[test]
    fn single_error_per_block_always_corrected() {
        check(
            "single_error_per_block_always_corrected",
            &PropConfig::from_env(256),
            |rng| {
                let data = vec_of(rng, 4..60, |r| r.random::<bool>());
                let flips = vec_of(rng, 0..15, |r| r.random_range(0usize..7));
                let coded = hamming_encode(&data);
                let mut corrupted = coded.clone();
                let blocks = coded.len() / 7;
                for (block, &offset) in flips.iter().enumerate().take(blocks) {
                    let pos = block * 7 + offset;
                    corrupted[pos] = !corrupted[pos];
                }
                assert_eq!(hamming_decode(&corrupted, data.len()), data);
            },
        );
    }
}

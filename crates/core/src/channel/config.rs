//! Channel parameters.

use mee_types::{Cycles, ModelError};

/// How the trojan sweeps its eviction set when sending a `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionStrategy {
    /// One forward pass only. Cheaper, but unreliable under the MEE cache's
    /// approximate-LRU replacement (the ablation experiment quantifies it).
    ForwardOnly,
    /// Forward pass then backward pass — the paper's §5.3 design. Costs
    /// roughly 9000 cycles per `1` but keeps the error rate low.
    TwoPhase,
}

/// Parameters shared by the trojan and the spy.
///
/// ```
/// use mee_attack::channel::ChannelConfig;
/// use mee_types::Cycles;
///
/// let cfg = ChannelConfig {
///     window: Cycles::new(15_000), // the paper's sweet spot (§5.4)
///     ..ChannelConfig::default()
/// };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelConfig {
    /// The timing window `T_sync`: one bit per window.
    pub window: Cycles,
    /// The agreed index in the consecutive versions data region — i.e. which
    /// of the 8 512-byte units of a 4 KiB page both parties use (§5.3: "any
    /// arbitrary index can be used").
    pub agreed_offset: usize,
    /// The trojan's eviction sweep strategy.
    pub strategy: EvictionStrategy,
    /// Whether the trojan rotates the sweep's starting element between
    /// `1`s. Prevents absorbing replacement-state cycles under the
    /// deterministic PLRU model (see [`TrojanActor`](crate::channel::TrojanActor)).
    pub rotate_sweep: bool,
    /// Candidates the trojan feeds Algorithm 1 (≥ 64 required; more gives
    /// headroom on noisy machines).
    pub trojan_candidates: usize,
    /// Candidate addresses the spy tries when searching for its monitor
    /// address (each conflicts with probability 1/8).
    pub spy_candidates: usize,
    /// Repetitions for majority-voted eviction tests during setup.
    pub setup_reps: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            window: Cycles::new(15_000),
            agreed_offset: 3,
            strategy: EvictionStrategy::TwoPhase,
            rotate_sweep: true,
            trojan_candidates: 160,
            spy_candidates: 96,
            setup_reps: 3,
        }
    }
}

impl ChannelConfig {
    /// The establishment profile for pooled seed sweeps.
    ///
    /// A 16-session sweep spends almost all of its time in Algorithm 1 and
    /// the spy's monitor search, while the statistics under test live in
    /// the *transmissions*. This profile keeps every transmission parameter
    /// identical to [`ChannelConfig::default`] (window, strategy, offset —
    /// so sweep BERs remain comparable to single-session runs) and trims
    /// only the candidate pools to Algorithm 1's 64-candidate floor. The
    /// vote count stays at 3: shrinking it to 2 turns the 2-of-3 majority
    /// into a stricter unanimous vote, which makes the conflict searches
    /// *slower* on noisy machines, not faster, and a single vote loses
    /// roughly one session in sixteen to establishment noise.
    pub fn sweep_setup() -> Self {
        ChannelConfig {
            trojan_candidates: 64,
            spy_candidates: 64,
            ..Self::default()
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for a zero window, an offset
    /// outside `0..8`, or degenerate candidate counts.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        if self.window == Cycles::ZERO {
            return fail("window must be non-zero".into());
        }
        if self.agreed_offset >= 8 {
            return fail(format!(
                "agreed offset {} must select one of 8 version blocks",
                self.agreed_offset
            ));
        }
        if self.trojan_candidates < 64 {
            return fail("Algorithm 1 needs at least 64 trojan candidates".into());
        }
        if self.spy_candidates == 0 {
            return fail("spy needs at least one candidate".into());
        }
        if self.setup_reps == 0 {
            return fail("setup repetitions must be at least 1".into());
        }
        Ok(())
    }
}

/// How the reliable link degrades gracefully when the channel turns
/// hostile (see [`ReliableLink`](crate::channel::ReliableLink)).
///
/// Two mechanisms compose:
///
/// * **window ladder** — when the frame-error rate over a sliding window
///   of recent attempts exceeds `fer_threshold`, both directions widen
///   their timing window to the next rung (default 15 000 → 30 000 →
///   60 000 cycles). Wider windows make preemption bursts and drift
///   proportionally smaller relative to a bit slot, at an honestly
///   reported cost in goodput;
/// * **exponential backoff** — after each failed attempt both cores idle
///   for `backoff_base · 2^(consecutive_failures − 1)` cycles (capped at
///   `2^max_backoff_exp`), letting an interrupt storm pass instead of
///   burning retries into it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Timing windows to escalate through, ascending. The first rung
    /// should be the session's operating window.
    pub window_ladder: Vec<Cycles>,
    /// Number of recent frame attempts tracked for the FER estimate.
    pub fer_window: usize,
    /// Escalate when `failures / attempts` over the tracked attempts
    /// exceeds this (in `(0, 1]`).
    pub fer_threshold: f64,
    /// Idle time after the first consecutive failure.
    pub backoff_base: Cycles,
    /// Cap on the backoff exponent.
    pub max_backoff_exp: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            window_ladder: vec![
                Cycles::new(15_000),
                Cycles::new(30_000),
                Cycles::new(60_000),
            ],
            fer_window: 8,
            fer_threshold: 0.5,
            backoff_base: Cycles::new(30_000),
            max_backoff_exp: 4,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never escalates or backs off — the pre-recovery
    /// behaviour, useful as an experimental control.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            window_ladder: vec![Cycles::new(15_000)],
            fer_window: 8,
            fer_threshold: 2.0, // a rate never exceeds 1, so never escalate
            backoff_base: Cycles::ZERO,
            max_backoff_exp: 0,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for an empty or non-ascending
    /// ladder, a zero FER window, or a non-positive FER threshold.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        if self.window_ladder.is_empty() {
            return fail("recovery ladder must have at least one rung".into());
        }
        if self.window_ladder.contains(&Cycles::ZERO) {
            return fail("recovery ladder windows must be non-zero".into());
        }
        if self.window_ladder.windows(2).any(|w| w[0] >= w[1]) {
            return fail("recovery ladder must be strictly ascending".into());
        }
        if self.fer_window == 0 {
            return fail("FER window must track at least one attempt".into());
        }
        if self.fer_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return fail(format!(
                "FER threshold {} must be positive",
                self.fer_threshold
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_default_is_the_documented_ladder() {
        let p = RecoveryPolicy::default();
        p.validate().unwrap();
        let rungs: Vec<u64> = p.window_ladder.iter().map(|w| w.raw()).collect();
        assert_eq!(rungs, vec![15_000, 30_000, 60_000]);
    }

    #[test]
    fn recovery_validation_rejects_degenerate_policies() {
        let bad = [
            RecoveryPolicy {
                window_ladder: vec![],
                ..RecoveryPolicy::default()
            },
            RecoveryPolicy {
                window_ladder: vec![Cycles::new(30_000), Cycles::new(15_000)],
                ..RecoveryPolicy::default()
            },
            RecoveryPolicy {
                window_ladder: vec![Cycles::ZERO],
                ..RecoveryPolicy::default()
            },
            RecoveryPolicy {
                fer_window: 0,
                ..RecoveryPolicy::default()
            },
            RecoveryPolicy {
                fer_threshold: 0.0,
                ..RecoveryPolicy::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "accepted {p:?}");
        }
        RecoveryPolicy::disabled().validate().unwrap();
    }

    #[test]
    fn default_is_the_papers_operating_point() {
        let cfg = ChannelConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.window, Cycles::new(15_000));
        assert_eq!(cfg.strategy, EvictionStrategy::TwoPhase);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let bad = [
            ChannelConfig {
                window: Cycles::ZERO,
                ..ChannelConfig::default()
            },
            ChannelConfig {
                agreed_offset: 8,
                ..ChannelConfig::default()
            },
            ChannelConfig {
                trojan_candidates: 32,
                ..ChannelConfig::default()
            },
            ChannelConfig {
                spy_candidates: 0,
                ..ChannelConfig::default()
            },
            ChannelConfig {
                setup_reps: 0,
                ..ChannelConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "accepted {cfg:?}");
        }
    }
}

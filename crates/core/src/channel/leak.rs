//! Byte-level exfiltration on top of the raw bit channel: framing, forward
//! error correction, and tolerance to an unknown start offset.
//!
//! The paper's evaluation sends raw bit patterns with both parties sharing
//! the window phase out of band. A deployed trojan cannot count on that:
//! the spy may start listening windows early or late. This layer makes the
//! channel usable as a transport:
//!
//! * payload bytes are framed with a sync [`PREAMBLE`](super::coding::PREAMBLE)
//!   and Hamming(7,4) (one corrected error per 7-bit block);
//! * the receiver scans its decoded bit stream for the preamble, so any
//!   whole-window misalignment up to `max_skew_windows` is absorbed;
//! * the result is returned as bytes with the residual error count.

use mee_types::ModelError;

use crate::channel::coding::{deframe, frame};
use crate::channel::session::Session;
use crate::setup::AttackSetup;

/// Outcome of a byte-level leak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakOutcome {
    /// The recovered payload (same length as sent).
    pub bytes: Vec<u8>,
    /// Byte positions that differ from the payload actually sent is not
    /// knowable at the receiver; this is the count of *uncorrectable* coded
    /// blocks observed (0 means the FEC absorbed everything).
    pub damaged_blocks: usize,
}

/// Converts bytes to most-significant-bit-first bits.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Converts MSB-first bits back to bytes (the tail is zero-padded).
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|c| {
            let mut byte = 0u8;
            for (i, &b) in c.iter().enumerate() {
                if b {
                    byte |= (b as u8) << (7 - i);
                }
            }
            byte
        })
        .collect()
}

impl Session {
    /// Leaks `payload` across cores: frames it (preamble + Hamming(7,4)),
    /// optionally delays the trojan's start by `skew_windows` whole windows
    /// the spy does not know about, and recovers the bytes at the receiver
    /// by preamble search.
    ///
    /// # Errors
    ///
    /// * Propagates machine errors.
    /// * Returns [`ModelError::InvalidConfig`] if the preamble cannot be
    ///   located in the received stream (channel too damaged).
    pub fn leak_bytes(
        &self,
        setup: &mut AttackSetup,
        payload: &[u8],
        skew_windows: usize,
    ) -> Result<LeakOutcome, ModelError> {
        let data_bits = bytes_to_bits(payload);
        let mut framed = frame(&data_bits);
        // Unknown start: the trojan idles for `skew_windows` windows first
        // (all-zero prefix from the spy's point of view).
        let mut wire = vec![false; skew_windows];
        wire.append(&mut framed);

        let out = self.transmit(setup, &wire)?;
        let search = skew_windows + 8;
        let decoded =
            deframe(&out.received, data_bits.len(), search).ok_or(ModelError::InvalidConfig {
                reason: "sync preamble not found in received stream".to_string(),
            })?;
        let bytes = bits_to_bytes(&decoded);

        // Damage accounting: blocks whose syndrome pointed at >1 error are
        // not directly observable; approximate by comparing round-tripped
        // coding of the decoded data with what was received after the
        // preamble.
        let refr = frame(&decoded);
        let start = out
            .received
            .windows(8)
            .position(|w| w == super::coding::PREAMBLE)
            .unwrap_or(0);
        let coded_rx = &out.received[start..];
        let damaged_blocks = refr
            .chunks(7)
            .zip(coded_rx.chunks(7))
            .filter(|(a, b)| {
                let mismatches = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
                mismatches > 1
            })
            .count();
        Ok(LeakOutcome {
            bytes,
            damaged_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;

    #[test]
    fn bit_byte_roundtrip() {
        let bytes = vec![0x00, 0xff, 0xa5, 0x3c];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
        assert!(bytes_to_bits(&[0x80])[0]);
        assert!(bytes_to_bits(&[0x01])[7]);
    }

    #[test]
    fn leak_recovers_bytes_quiet() {
        let mut setup = AttackSetup::quiet(301).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = b"attack at dawn".to_vec();
        let out = session.leak_bytes(&mut setup, &payload, 0).unwrap();
        assert_eq!(out.bytes, payload);
        assert_eq!(out.damaged_blocks, 0);
    }

    #[test]
    fn leak_survives_unknown_start_offset() {
        let mut setup = AttackSetup::quiet(302).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = vec![0xde, 0xad, 0xbe, 0xef];
        for skew in [1usize, 3, 7] {
            let out = session.leak_bytes(&mut setup, &payload, skew).unwrap();
            assert_eq!(out.bytes, payload, "failed at skew {skew}");
        }
    }

    #[test]
    fn leak_survives_noise() {
        let mut setup = AttackSetup::new(303).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload: Vec<u8> = (0u8..32).collect();
        let out = session.leak_bytes(&mut setup, &payload, 2).unwrap();
        // FEC absorbs the channel's ~1-2% isolated errors; allow a couple
        // of byte casualties from multi-error blocks.
        let wrong = out
            .bytes
            .iter()
            .zip(&payload)
            .filter(|(a, b)| a != b)
            .count();
        assert!(wrong <= 2, "{wrong} damaged bytes");
    }
}

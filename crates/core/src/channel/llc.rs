//! A classic LLC Prime+Probe covert channel (Liu et al., cited as \[7\]) —
//! the related-work baseline the paper positions itself against.
//!
//! Two *regular* (non-enclave) processes on different cores: outside SGX,
//! hugepages are available, so the spy maps a physically contiguous buffer,
//! computes an LLC eviction set for one cache set analytically, and runs
//! textbook Prime+Probe. This channel is much faster than the MEE channel
//! (no MEE walk per probe, smaller windows) — the paper concedes "other
//! covert channel attacks have demonstrated higher bit rate" — but it lives
//! in the LLC, where occupancy/eviction-based defenses watch; the
//! [`stealth`](crate::experiments::stealth) experiment quantifies the
//! difference in footprint.

use mee_machine::{run_actor_refs, Actor, ActorRef, ProcId};
use mee_mem::AddressSpaceKind;
use mee_types::{Cycles, ModelError, VirtAddr, LINE_SIZE, PAGE_SIZE};

use mee_machine::{CoreHandle, StepOutcome};

use crate::channel::message::BitErrors;
use crate::channel::prime_probe::PpTrojanActor;
use crate::setup::AttackSetup;

/// The LLC spy: primes and probes *without* flushing — classic
/// Prime+Probe relies on conflict misses, and the eviction set's lines
/// alias in the (smaller) L1/L2 sets, so probe accesses naturally fall
/// through to the LLC.
#[derive(Debug)]
pub struct LlcSpyActor {
    eviction_set: Vec<VirtAddr>,
    window: Cycles,
    start: Cycles,
    bits: usize,
    state: LlcSpyState,
    t1: Cycles,
    probe_times: Vec<Cycles>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LlcSpyState {
    WaitWindow(usize),
    Probe(usize, usize),
    Close(usize),
    Finished,
}

impl LlcSpyActor {
    /// Creates the LLC spy.
    ///
    /// # Panics
    ///
    /// Panics if the eviction set is empty.
    pub fn new(eviction_set: Vec<VirtAddr>, window: Cycles, start: Cycles, bits: usize) -> Self {
        assert!(!eviction_set.is_empty(), "eviction set must be non-empty");
        LlcSpyActor {
            eviction_set,
            window,
            start,
            bits,
            state: LlcSpyState::WaitWindow(0),
            t1: Cycles::ZERO,
            probe_times: Vec::new(),
        }
    }

    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }

    /// Raw sweep durations (index 0 is the cold prime).
    pub fn probe_times(&self) -> &[Cycles] {
        &self.probe_times
    }

    /// Decodes: a sweep slower than `threshold` means a way was evicted.
    pub fn decode(&self, threshold: Cycles) -> Vec<bool> {
        self.probe_times
            .iter()
            .skip(1)
            .map(|&t| t > threshold)
            .collect()
    }
}

impl mee_machine::Actor for LlcSpyActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            LlcSpyState::WaitWindow(i) => {
                if i > self.bits {
                    self.state = LlcSpyState::Finished;
                    return Ok(StepOutcome::Done);
                }
                cpu.busy_until(self.window_start(i));
                self.t1 = cpu.timer_read();
                self.state = LlcSpyState::Probe(i, 0);
            }
            LlcSpyState::Probe(i, j) => {
                cpu.read(self.eviction_set[j])?;
                if j + 1 < self.eviction_set.len() {
                    self.state = LlcSpyState::Probe(i, j + 1);
                } else {
                    self.state = LlcSpyState::Close(i);
                }
            }
            LlcSpyState::Close(i) => {
                let t2 = cpu.timer_read();
                self.probe_times.push(t2.saturating_sub(self.t1));
                self.state = LlcSpyState::WaitWindow(i + 1);
            }
            LlcSpyState::Finished => return Ok(StepOutcome::Done),
        }
        Ok(StepOutcome::Running)
    }
}

/// An established LLC Prime+Probe channel between two regular processes.
#[derive(Debug, Clone)]
pub struct LlcSession {
    /// The spy's regular process.
    pub spy_proc: ProcId,
    /// The trojan's regular process.
    pub trojan_proc: ProcId,
    /// The spy's LLC eviction set (one address per way).
    pub eviction_set: Vec<VirtAddr>,
    /// The trojan's conflicting address.
    pub target: VirtAddr,
    /// Window size per bit.
    pub window: Cycles,
    /// Probe-time decode threshold.
    pub probe_threshold: Cycles,
}

/// Outcome of an LLC-channel transmission.
#[derive(Debug, Clone)]
pub struct LlcOutcome {
    /// What was sent.
    pub sent: Vec<bool>,
    /// What was decoded.
    pub received: Vec<bool>,
    /// Positional errors.
    pub errors: BitErrors,
    /// Raw channel rate in KBps.
    pub kbps: f64,
}

impl LlcSession {
    /// Establishes the channel: maps hugepage-backed buffers for both
    /// parties and computes the eviction set analytically from physical
    /// contiguity (the very capability SGX withholds — challenge 3).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn establish(setup: &mut AttackSetup, window: Cycles) -> Result<Self, ModelError> {
        let llc = setup.machine.llc().config();
        let ways = llc.ways;
        let sets = llc.sets;
        // Contiguous span covering `ways` lines of one set: ways × sets
        // lines.
        let span_pages = (ways * sets * LINE_SIZE).div_ceil(PAGE_SIZE) + 1;

        let spy_proc = setup.machine.create_process(AddressSpaceKind::Regular);
        let spy_base = VirtAddr::new(0x4000_0000);
        setup
            .machine
            .map_pages_contiguous(spy_proc, spy_base, span_pages)?;
        let trojan_proc = setup.machine.create_process(AddressSpaceKind::Regular);
        let trojan_base = VirtAddr::new(0x5000_0000);
        setup
            .machine
            .map_pages_contiguous(trojan_proc, trojan_base, span_pages)?;

        // With physical contiguity, the set index of any VA is computable
        // from the base alignment (hugepage bases are known-aligned; here we
        // read the translation once, as real attackers read /proc or probe).
        let target_set = 0x2a % sets;
        let line_of = |machine: &mee_machine::Machine, proc, base: VirtAddr| {
            machine.translate(proc, base).unwrap().line().raw()
        };
        let spy_pa_line = line_of(&setup.machine, spy_proc, spy_base);
        let spy_align = (target_set as u64 + sets as u64
            - (spy_pa_line % sets as u64))
            % sets as u64;
        let eviction_set: Vec<VirtAddr> = (0..ways)
            .map(|w| spy_base + (spy_align + (w * sets) as u64) * LINE_SIZE as u64)
            .collect();

        let trojan_pa_line = line_of(&setup.machine, trojan_proc, trojan_base);
        let trojan_align = (target_set as u64 + sets as u64
            - (trojan_pa_line % sets as u64))
            % sets as u64;
        let target = trojan_base + trojan_align * LINE_SIZE as u64;

        // Calibrate: all-hit probe sweeps (no flushes — the lines alias in
        // L1/L2 and keep falling through to the LLC) vs the DRAM penalty of
        // one miss.
        let mut quiet_total = 0u64;
        let reps = 8u64;
        {
            for &a in &eviction_set {
                setup.machine.read(setup.spy.core, spy_proc, a)?;
            }
            for _ in 0..reps {
                let t1 = setup.machine.timer_read(setup.spy.core);
                for &a in &eviction_set {
                    setup.machine.read(setup.spy.core, spy_proc, a)?;
                }
                let t2 = setup.machine.timer_read(setup.spy.core);
                quiet_total += t2.saturating_sub(t1).raw();
            }
        }
        let t = &setup.machine.config().timing;
        let miss_penalty = (t.dram_row_hit + t.dram_row_miss) / 2;
        let probe_threshold = Cycles::new(quiet_total / reps) + miss_penalty / 2;

        Ok(LlcSession {
            spy_proc,
            trojan_proc,
            eviction_set,
            target,
            window,
            probe_threshold,
        })
    }

    /// Transmits `bits`, one per window, using the spy/trojan cores of
    /// `setup` but the regular processes of this session.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn transmit(
        &self,
        setup: &mut AttackSetup,
        bits: &[bool],
    ) -> Result<LlcOutcome, ModelError> {
        let window = self.window;
        let now = setup
            .machine
            .core_now(setup.spy.core)
            .max(setup.machine.core_now(setup.trojan.core));
        let start = Cycles::new((now.raw() / window.raw() + 3) * window.raw());

        let mut trojan = PpTrojanActor::new(self.target, bits.to_vec(), window, start);
        let mut spy = LlcSpyActor::new(self.eviction_set.clone(), window, start, bits.len());
        let horizon = start + window * (bits.len() as u64 + 3) + Cycles::new(100_000);
        {
            let mut actors: Vec<ActorRef<'_>> = vec![
                (setup.spy.core, self.spy_proc, &mut spy as &mut dyn Actor),
                (setup.trojan.core, self.trojan_proc, &mut trojan),
            ];
            run_actor_refs(&mut setup.machine, &mut actors, horizon)?;
        }
        let received = spy.decode(self.probe_threshold);
        let errors = BitErrors::compare(bits, &received);
        let clock_hz = setup.machine.config().timing.clock_hz();
        let elapsed = window * (bits.len() as u64 + 1);
        let kbps = (bits.len() as f64 / 8.0) / elapsed.to_seconds(clock_hz) / 1000.0;
        Ok(LlcOutcome {
            sent: bits.to_vec(),
            received,
            errors,
            kbps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::random_bits;

    #[test]
    fn eviction_set_really_collides_in_one_llc_set() {
        let mut setup = AttackSetup::quiet(311).unwrap();
        let session = LlcSession::establish(&mut setup, Cycles::new(4_000)).unwrap();
        let sets = setup.machine.llc().config().sets;
        let set_of = |proc, va| {
            setup
                .machine
                .translate(proc, va)
                .unwrap()
                .line()
                .set_index(sets)
        };
        let expected = set_of(session.trojan_proc, session.target);
        for &a in &session.eviction_set {
            assert_eq!(set_of(session.spy_proc, a), expected);
        }
        assert_eq!(session.eviction_set.len(), setup.machine.llc().config().ways);
    }

    #[test]
    fn llc_channel_communicates_and_is_faster() {
        let mut setup = AttackSetup::quiet(312).unwrap();
        // 4000-cycle windows: ~131 KBps, far above the MEE channel's 35.
        let session = LlcSession::establish(&mut setup, Cycles::new(4_000)).unwrap();
        let bits = random_bits(64, 312);
        let out = session.transmit(&mut setup, &bits).unwrap();
        assert_eq!(out.received, bits, "LLC channel miscommunicated");
        assert!(out.kbps > 100.0, "kbps = {}", out.kbps);
    }

    #[test]
    fn llc_channel_under_noise() {
        let mut setup = AttackSetup::new(313).unwrap();
        let session = LlcSession::establish(&mut setup, Cycles::new(4_000)).unwrap();
        let bits = random_bits(256, 313);
        let out = session.transmit(&mut setup, &bits).unwrap();
        assert!(out.errors.rate() < 0.08, "error rate {}", out.errors.rate());
    }
}

//! Bit patterns and error accounting.

use mee_rng::Rng;

/// The `010101…` pattern of Figure 6.
pub fn alternating_bits(len: usize) -> Vec<bool> {
    (0..len).map(|i| i % 2 == 1).collect()
}

/// The `100100…` pattern of Figure 8 (128 bits in the paper).
pub fn paper_100_pattern(len: usize) -> Vec<bool> {
    (0..len).map(|i| i % 3 == 0).collect()
}

/// Seeded uniform random payload (for bit-rate / error-rate sweeps).
pub fn random_bits(len: usize, seed: u64) -> Vec<bool> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.random::<bool>()).collect()
}

/// Positional bit-error accounting between sent and received sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct BitErrors {
    /// Indices of the erroneous bits.
    pub positions: Vec<usize>,
    /// Total compared bits.
    pub total: usize,
}

impl BitErrors {
    /// Compares two sequences positionally (extra received bits are
    /// ignored; missing ones count as errors).
    pub fn compare(sent: &[bool], received: &[bool]) -> Self {
        let positions = (0..sent.len())
            .filter(|&i| received.get(i).copied() != Some(sent[i]))
            .collect();
        BitErrors {
            positions,
            total: sent.len(),
        }
    }

    /// Number of bit errors.
    pub fn count(&self) -> usize {
        self.positions.len()
    }

    /// Error rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count() as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_starts_with_zero() {
        assert_eq!(alternating_bits(4), vec![false, true, false, true]);
    }

    #[test]
    fn paper_pattern_is_100100() {
        assert_eq!(
            paper_100_pattern(6),
            vec![true, false, false, true, false, false]
        );
        // 128 bits like Figure 8.
        let p = paper_100_pattern(128);
        assert_eq!(p.iter().filter(|&&b| b).count(), 43);
    }

    #[test]
    fn random_bits_are_seeded() {
        assert_eq!(random_bits(64, 9), random_bits(64, 9));
        assert_ne!(random_bits(64, 9), random_bits(64, 10));
        let ones = random_bits(4096, 1).iter().filter(|&&b| b).count();
        assert!((1700..=2400).contains(&ones), "bias: {ones}/4096 ones");
    }

    #[test]
    fn error_accounting() {
        let sent = vec![true, false, true, true];
        let recv = vec![true, true, true];
        let e = BitErrors::compare(&sent, &recv);
        assert_eq!(e.positions, vec![1, 3]); // flipped, missing
        assert_eq!(e.count(), 2);
        assert!((e.rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_comparison_is_error_free() {
        let e = BitErrors::compare(&[], &[]);
        assert_eq!(e.count(), 0);
        assert_eq!(e.rate(), 0.0);
    }
}

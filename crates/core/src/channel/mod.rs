//! The MEE-cache covert channel (paper §5).
//!
//! Roles are *reversed* relative to LLC Prime+Probe: the **trojan** holds
//! the 8-address eviction set and sweeps it (forward, then backward — the
//! approximate-LRU countermeasure of §5.3) to send a `1`; the **spy** only
//! probes a *single* address, its *monitor address*, whose versions line
//! conflicts with the trojan's eviction set. One probe is one protected
//! read: ~480 cycles on a versions hit (`0`) vs ~750 on a miss (`1`).
//!
//! [`Session`] wires it together: Algorithm 1 gives the trojan its eviction
//! set, a short handshake gives the spy its monitor address, and
//! [`Session::transmit`] runs both actors concurrently on their cores.
//!
//! [`prime_probe`] implements the straightforward port of LLC Prime+Probe
//! the paper shows *failing* over the MEE cache (Figure 6a), and
//! [`coding`] adds the error-handling layer the paper leaves as future
//! work.

pub mod coding;
mod config;
mod leak;
pub mod llc;
mod message;
pub mod prime_probe;
pub mod reliable;
mod session;
mod spy;
mod trojan;
pub mod wide;

pub use config::{ChannelConfig, EvictionStrategy, RecoveryPolicy};
pub use leak::{bits_to_bytes, bytes_to_bits, LeakOutcome};
pub use message::{alternating_bits, paper_100_pattern, random_bits, BitErrors};
pub use reliable::{ReliableLink, ReliableStats};
pub use session::{RobustOutcome, Session, TransmitOutcome};
pub use spy::SpyActor;
pub use trojan::TrojanActor;
pub use wide::{WideOutcome, WideSession};

//! The Prime+Probe baseline that fails over the MEE cache (paper §5.2,
//! Figure 6a).
//!
//! Classic LLC Prime+Probe, ported directly: the **spy** owns the
//! 8-address eviction set, primes the whole set, and probes all 8 ways every
//! window; the **trojan** touches a single conflicting address to send `1`.
//! The probe must make 8 protected-region reads, each of which reaches main
//! memory *whether or not* the MEE cache hits — so the probe costs over
//! 3500 cycles while the hit/miss signal is only ~300 cycles, and the
//! channel drowns in access-latency variance. That failure is the paper's
//! motivation for reversing the roles.

use mee_machine::{run_actor_refs, Actor, ActorRef, CoreHandle, StepOutcome};
use mee_types::{Cycles, ModelError, VirtAddr};

use crate::channel::config::ChannelConfig;
use crate::channel::message::BitErrors;
use crate::recon::eviction::find_eviction_set;
use crate::setup::AttackSetup;
use crate::threshold::LatencyClassifier;

/// The trojan of the baseline: touches one address per `1` window.
#[derive(Debug)]
pub struct PpTrojanActor {
    target: VirtAddr,
    bits: Vec<bool>,
    window: Cycles,
    start: Cycles,
    state: PpTrojanState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PpTrojanState {
    WaitStart,
    BitStart(usize),
    Touch(usize),
    WaitWindowEnd(usize),
}

impl PpTrojanActor {
    /// Creates the baseline trojan.
    pub fn new(target: VirtAddr, bits: Vec<bool>, window: Cycles, start: Cycles) -> Self {
        PpTrojanActor {
            target,
            bits,
            window,
            start,
            state: PpTrojanState::WaitStart,
        }
    }

    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }
}

impl Actor for PpTrojanActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            PpTrojanState::WaitStart => {
                cpu.busy_until(self.start);
                self.state = PpTrojanState::BitStart(0);
            }
            PpTrojanState::BitStart(i) => {
                if i >= self.bits.len() {
                    return Ok(StepOutcome::Done);
                }
                if self.bits[i] {
                    // Touch mid-window, after the spy's (long, ~4000-cycle)
                    // probe sweep of this window has drained — otherwise the
                    // eviction lands *inside* the running sweep and the
                    // baseline's window alignment becomes accidental.
                    cpu.busy_until(self.window_start(i) + self.window / 2);
                    self.state = PpTrojanState::Touch(i);
                } else {
                    cpu.busy_until(self.window_start(i + 1));
                    self.state = PpTrojanState::BitStart(i + 1);
                }
            }
            PpTrojanState::Touch(i) => {
                cpu.read(self.target)?;
                cpu.clflush(self.target)?;
                cpu.mfence();
                self.state = PpTrojanState::WaitWindowEnd(i);
            }
            PpTrojanState::WaitWindowEnd(i) => {
                cpu.busy_until(self.window_start(i + 1));
                self.state = PpTrojanState::BitStart(i + 1);
            }
        }
        Ok(StepOutcome::Running)
    }
}

/// The spy of the baseline: probes the *whole* eviction set each window,
/// timing the total sweep.
#[derive(Debug)]
pub struct PpSpyActor {
    eviction_set: Vec<VirtAddr>,
    window: Cycles,
    start: Cycles,
    bits: usize,
    state: PpSpyState,
    t1: Cycles,
    probe_times: Vec<Cycles>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PpSpyState {
    WaitWindow(usize),
    Probe(usize, usize),
    Close(usize),
    Finished,
}

impl PpSpyActor {
    /// Creates the baseline spy.
    ///
    /// # Panics
    ///
    /// Panics if the eviction set is empty.
    pub fn new(eviction_set: Vec<VirtAddr>, window: Cycles, start: Cycles, bits: usize) -> Self {
        assert!(!eviction_set.is_empty(), "eviction set must be non-empty");
        PpSpyActor {
            eviction_set,
            window,
            start,
            bits,
            state: PpSpyState::WaitWindow(0),
            t1: Cycles::ZERO,
            probe_times: Vec::new(),
        }
    }

    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }

    /// Raw full-set probe durations (index 0 is the prime sweep).
    pub fn probe_times(&self) -> &[Cycles] {
        &self.probe_times
    }

    /// Decodes with the given total-probe-time threshold: longer sweep →
    /// some way missed → `1`.
    pub fn decode(&self, threshold: Cycles) -> Vec<bool> {
        self.probe_times
            .iter()
            .skip(1)
            .map(|&t| t > threshold)
            .collect()
    }
}

impl Actor for PpSpyActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            PpSpyState::WaitWindow(i) => {
                if i > self.bits {
                    self.state = PpSpyState::Finished;
                    return Ok(StepOutcome::Done);
                }
                cpu.busy_until(self.window_start(i));
                self.t1 = cpu.timer_read();
                self.state = PpSpyState::Probe(i, 0);
            }
            PpSpyState::Probe(i, j) => {
                let addr = self.eviction_set[j];
                cpu.read(addr)?;
                cpu.clflush(addr)?;
                if j + 1 < self.eviction_set.len() {
                    self.state = PpSpyState::Probe(i, j + 1);
                } else {
                    self.state = PpSpyState::Close(i);
                }
            }
            PpSpyState::Close(i) => {
                let t2 = cpu.timer_read();
                self.probe_times.push(t2.saturating_sub(self.t1));
                self.state = PpSpyState::WaitWindow(i + 1);
            }
            PpSpyState::Finished => return Ok(StepOutcome::Done),
        }
        Ok(StepOutcome::Running)
    }
}

/// The established baseline channel.
#[derive(Debug, Clone)]
pub struct PrimeProbeSession {
    /// The spy's eviction set (8 addresses, one per way).
    pub eviction_set: Vec<VirtAddr>,
    /// The trojan's single conflicting address.
    pub target: VirtAddr,
    /// Shared parameters.
    pub config: ChannelConfig,
    /// Decode threshold for total probe time, calibrated at establishment.
    pub probe_threshold: Cycles,
}

/// Result of a baseline transmission.
#[derive(Debug, Clone)]
pub struct PrimeProbeOutcome {
    /// What the trojan sent.
    pub sent: Vec<bool>,
    /// What the spy decoded.
    pub received: Vec<bool>,
    /// Total 8-way probe durations (the y-axis of Figure 6a).
    pub probe_times: Vec<Cycles>,
    /// Positional errors.
    pub errors: BitErrors,
}

impl PrimeProbeSession {
    /// Establishes the baseline: the *spy* runs Algorithm 1, then the
    /// conflicting trojan address is found with the role-swapped handshake.
    /// The probe threshold is calibrated from quiet sweeps: mean + half the
    /// versions-hit/miss signal.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::establish`](crate::channel::Session::establish).
    pub fn establish(
        setup: &mut AttackSetup,
        cfg: &ChannelConfig,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        // Host-time span over the baseline's establishment, recorded at the
        // end; wall-clock only.
        let host_start = std::time::Instant::now();
        let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);

        // Spy builds the eviction set this time.
        let candidates = setup.spy.candidates(cfg.trojan_candidates, cfg.agreed_offset);
        let eviction_set = {
            let mut cpu = setup.spy_handle();
            find_eviction_set(&mut cpu, &candidates, &classifier, cfg.setup_reps)?
                .eviction_set
        };

        // Trojan finds one conflicting address.
        let trojan_candidates = setup
            .trojan
            .candidates(cfg.spy_candidates, cfg.agreed_offset);
        let mut target = None;
        'search: for &candidate in &trojan_candidates {
            let mut votes = 0usize;
            for _ in 0..cfg.setup_reps {
                setup.sync_clocks();
                {
                    let mut trojan = setup.trojan_handle();
                    trojan.read(candidate)?;
                    trojan.clflush(candidate)?;
                    trojan.mfence();
                }
                setup.sync_clocks();
                {
                    let mut spy = setup.spy_handle();
                    let _ = spy.sweep_read_flush(&eviction_set)?;
                    spy.mfence();
                    let _ = spy.sweep_read_flush_rev(&eviction_set)?;
                    spy.mfence();
                }
                setup.sync_clocks();
                let lat = {
                    let mut trojan = setup.trojan_handle();
                    let lat = trojan.read(candidate)?;
                    trojan.clflush(candidate)?;
                    lat
                };
                if classifier.is_versions_miss(lat) {
                    votes += 1;
                }
            }
            if votes * 2 > cfg.setup_reps {
                target = Some(candidate);
                break 'search;
            }
        }
        let target = target.ok_or_else(|| ModelError::InvalidConfig {
            reason: "no conflicting trojan address found for the baseline".into(),
        })?;

        // Calibrate the probe threshold: quiet all-hit sweeps.
        let mut quiet_total = 0u64;
        let sweeps = 8u64;
        {
            let mut spy = setup.spy_handle();
            let _ = spy.sweep_read_flush(&eviction_set)?;
            for _ in 0..sweeps {
                let t1 = spy.timer_read();
                let _ = spy.sweep_read_flush(&eviction_set)?;
                let t2 = spy.timer_read();
                quiet_total += t2.saturating_sub(t1).raw();
            }
        }
        let quiet_mean = quiet_total / sweeps;
        let t = &setup.machine.config().timing;
        let signal = t.protected_hit_latency(1) - t.protected_hit_latency(0);
        let probe_threshold = Cycles::new(quiet_mean + signal.raw() / 2);
        setup
            .machine
            .obs_mut()
            .host
            .record("establish", host_start.elapsed());

        Ok(PrimeProbeSession {
            eviction_set,
            target,
            config: cfg.clone(),
            probe_threshold,
        })
    }

    /// Transmits `bits` over the baseline channel.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn transmit(
        &self,
        setup: &mut AttackSetup,
        bits: &[bool],
    ) -> Result<PrimeProbeOutcome, ModelError> {
        let window = self.config.window;
        let now = setup
            .machine
            .core_now(setup.spy.core)
            .max(setup.machine.core_now(setup.trojan.core));
        let start = Cycles::new((now.raw() / window.raw() + 3) * window.raw());

        let mut trojan = PpTrojanActor::new(self.target, bits.to_vec(), window, start);
        let mut spy = PpSpyActor::new(self.eviction_set.clone(), window, start, bits.len());
        let horizon = start + window * (bits.len() as u64 + 3) + Cycles::new(100_000);
        {
            let mut actors: Vec<ActorRef<'_>> = vec![
                (setup.spy.core, setup.spy.proc, &mut spy),
                (setup.trojan.core, setup.trojan.proc, &mut trojan),
            ];
            run_actor_refs(&mut setup.machine, &mut actors, horizon)?;
        }
        let received = spy.decode(self.probe_threshold);
        let errors = BitErrors::compare(bits, &received);
        Ok(PrimeProbeOutcome {
            sent: bits.to_vec(),
            received,
            probe_times: spy.probe_times().to_vec(),
            errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::alternating_bits;

    #[test]
    fn baseline_probe_times_exceed_3500_cycles() {
        let mut setup = AttackSetup::quiet(81).unwrap();
        let session = PrimeProbeSession::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let out = session
            .transmit(&mut setup, &alternating_bits(16))
            .unwrap();
        // §5.2: "a probing latency that exceeds 3500 cycles".
        for &t in &out.probe_times {
            assert!(t.raw() > 3_500, "probe time {t} below the paper's floor");
        }
    }

    #[test]
    fn baseline_is_much_worse_than_the_papers_channel_under_noise() {
        // Pooled over sixteen seeds: per-seed error rates at small payload
        // sizes fluctuate enough that a single lucky P+P run can close the
        // gap (the noise streams occasionally miss the probed set), but the
        // qualitative claim — the LLC baseline is clearly noisier than the
        // MEE-cache channel — must hold in aggregate. The sessions run
        // through the parallel sweep runner with seeds split from one root,
        // so the pool is identical no matter how many worker threads the
        // host grants.
        // The Prime+Probe panel peels a whole-set eviction set from the
        // candidate pool, which needs more slack than the single-address
        // search: with the 64-candidate sweep profile one of the sixteen
        // split seeds fails peeling outright, so widen the pool for this
        // sweep while keeping the cheap establishment reps.
        let cfg = ChannelConfig {
            trojan_candidates: 96,
            ..ChannelConfig::sweep_setup()
        };
        let plan = crate::experiments::SweepPlan::new(2019, 16);
        let sweep = crate::experiments::run_fig6_sweep(&plan, 24, &cfg).unwrap();
        let pooled = sweep.pooled();
        assert_eq!(pooled.total_bits, 16 * 24);
        assert!(
            pooled.prime_probe_rate() > pooled.this_work_rate() + 0.05,
            "Prime+Probe ({:.1}%) should be clearly worse than the MEE channel ({:.1}%)",
            pooled.prime_probe_rate() * 100.0,
            pooled.this_work_rate() * 100.0
        );
        assert!(
            pooled.this_work_rate() < 0.10,
            "pooled MEE-channel error rate {:.1}% too high",
            pooled.this_work_rate() * 100.0
        );
    }
}

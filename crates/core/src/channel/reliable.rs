//! A reliable (error-free) transport over the MEE channel (extension).
//!
//! The paper compares against Maurice et al.'s *error-free* LLC covert
//! channel (\[9\]) and reports its own rates "without any error handling".
//! This module closes that gap with a stop-and-wait ARQ:
//!
//! * the **forward** session carries data frames — a sequence bit, the
//!   payload chunk, and a CRC-8 — from the trojan to the spy;
//! * a second, **reverse** session (established with the roles swapped:
//!   the spy owns an eviction set, the trojan a monitor address — the
//!   medium is symmetric) carries 4-bit ACK/NAK replies;
//! * corrupted frames (bad CRC or wrong sequence bit) are retransmitted
//!   until acknowledged, bounding the residual error rate at the CRC's
//!   undetected-error probability (< 0.4% per corrupted frame, and frames
//!   are rarely corrupted to begin with).
//!
//! Because the two directions share the MEE cache but use different
//! agreed offsets (hence different cache sets), they do not collide.

use std::collections::VecDeque;

use mee_machine::{NoopHook, StepHook};
use mee_types::{Cycles, ModelError};

use crate::channel::config::{ChannelConfig, RecoveryPolicy};
use crate::channel::session::Session;
use crate::setup::AttackSetup;

/// CRC-8 (polynomial 0x07), bitwise over a bool slice.
pub fn crc8(bits: &[bool]) -> u8 {
    let mut crc: u8 = 0;
    for &bit in bits {
        let msb = (crc & 0x80) != 0;
        crc <<= 1;
        if msb ^ bit {
            crc ^= 0x07;
        }
    }
    crc
}

fn byte_to_bits(b: u8) -> Vec<bool> {
    (0..8).rev().map(|i| (b >> i) & 1 == 1).collect()
}

fn bits_to_byte(bits: &[bool]) -> u8 {
    bits.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8)
}

/// Builds a data frame: sequence bit + `chunk` zero-padded to `chunk_len`
/// bits + CRC-8 computed over *everything before it* — the sequence bit
/// included, so a flipped sequence bit is caught by the CRC even when the
/// flip makes it match the other sequence value.
fn build_frame(seq: bool, chunk: &[bool], chunk_len: usize) -> Vec<bool> {
    let mut frame = vec![seq];
    let mut padded = chunk.to_vec();
    padded.resize(chunk_len, false);
    frame.extend_from_slice(&padded);
    frame.extend(byte_to_bits(crc8(&frame)));
    frame
}

/// Receiver-side frame validation: length, CRC over the seq bit + payload,
/// and the expected sequence bit.
fn frame_is_valid(rx: &[bool], frame_len: usize, seq: bool) -> bool {
    rx.len() == frame_len && {
        let (body, crc_bits) = rx.split_at(rx.len() - 8);
        crc8(body) == bits_to_byte(crc_bits) && body[0] == seq
    }
}

/// The ACK reply pattern (4 bits) — chosen with Hamming distance 4 from
/// the NAK pattern so a single flipped reply bit cannot convert one into
/// the other.
const ACK: [bool; 4] = [true, false, true, false];
/// The NAK reply pattern.
const NAK: [bool; 4] = [false, true, false, true];

/// Statistics of one reliable transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames delivered.
    pub frames: usize,
    /// Retransmissions performed.
    pub retransmissions: usize,
    /// Total forward bits on the wire (including frame overhead).
    pub wire_bits: usize,
    /// Times the link widened its timing window (graceful degradation).
    pub window_escalations: usize,
    /// The timing window in effect when the transfer finished.
    pub final_window: Cycles,
    /// Measured simulated time of the whole transfer — ACK rounds, backoff
    /// idling, and retransmissions included — so goodput reported from it
    /// is honest.
    pub elapsed: Cycles,
}

/// A bidirectional reliable link: data forward, ACKs backward.
#[derive(Debug, Clone)]
pub struct ReliableLink {
    forward: Session,
    reverse: Session,
    /// Payload bits per frame.
    chunk: usize,
    /// Give up after this many retransmissions of one frame at the top
    /// ladder rung (escalating to a wider rung refreshes the budget).
    max_retries: usize,
    /// Graceful-degradation behaviour under sustained frame errors.
    recovery: RecoveryPolicy,
}

impl ReliableLink {
    /// Establishes both directions. The forward session uses
    /// `cfg.agreed_offset`; the reverse session uses the next offset
    /// (mod 8) so the two directions occupy different MEE-cache sets.
    ///
    /// # Errors
    ///
    /// Propagates establishment errors from either direction.
    pub fn establish(setup: &mut AttackSetup, cfg: &ChannelConfig) -> Result<Self, ModelError> {
        let forward = Session::establish(setup, cfg)?;
        let reverse_cfg = ChannelConfig {
            agreed_offset: (cfg.agreed_offset + 1) % 8,
            ..cfg.clone()
        };
        let (sender, receiver) = (setup.spy, setup.trojan);
        let reverse = Session::establish_directed(setup, sender, receiver, &reverse_cfg)?;
        Ok(ReliableLink {
            forward,
            reverse,
            chunk: 16,
            max_retries: 16,
            recovery: RecoveryPolicy::default(),
        })
    }

    /// Replaces the recovery policy (validated at send time). The ladder's
    /// first rung should match the sessions' operating window; a window
    /// not on the ladder starts escalation from the bottom rung.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The forward direction's current timing window (it widens when the
    /// link degrades gracefully, and stays widened for subsequent sends).
    pub fn current_window(&self) -> Cycles {
        self.forward.config.window
    }

    /// The forward (data) session.
    pub fn forward(&self) -> &Session {
        &self.forward
    }

    /// The reverse (ACK) session.
    pub fn reverse(&self) -> &Session {
        &self.reverse
    }

    /// Sends `payload` reliably; returns the receiver's copy (equal to the
    /// payload unless the CRC was defeated or a frame exhausted its
    /// retries) plus transfer statistics.
    ///
    /// # Errors
    ///
    /// * Propagates machine errors.
    /// * Returns [`ModelError::InvalidConfig`] if a frame exhausts
    ///   `max_retries` (the channel is catastrophically broken).
    pub fn send(
        &mut self,
        setup: &mut AttackSetup,
        payload: &[bool],
    ) -> Result<(Vec<bool>, ReliableStats), ModelError> {
        self.send_with(setup, payload, &mut NoopHook)
    }

    /// Like [`Self::send`] with a [`StepHook`] (e.g. a fault injector)
    /// applied to every wire transmission, forward and reverse.
    ///
    /// Under sustained frame errors the link heals itself instead of
    /// thrashing: failed attempts back off exponentially (both cores idle,
    /// letting an interrupt storm pass), and when the frame-error rate over
    /// the recent attempts exceeds the policy threshold the link widens
    /// both directions' timing windows to the next ladder rung — trading
    /// honestly-reported goodput for reliability. The widened window
    /// persists for subsequent sends on this link.
    ///
    /// # Errors
    ///
    /// * Propagates machine errors, including errors raised by the hook.
    /// * Returns [`ModelError::InvalidConfig`] for an invalid recovery
    ///   policy, or if a frame exhausts `max_retries` even at the top
    ///   ladder rung.
    pub fn send_with(
        &mut self,
        setup: &mut AttackSetup,
        payload: &[bool],
        hook: &mut dyn StepHook,
    ) -> Result<(Vec<bool>, ReliableStats), ModelError> {
        self.recovery.validate()?;
        let started = Self::link_now(setup, &self.forward);
        let mut delivered = Vec::with_capacity(payload.len());
        let mut stats = ReliableStats {
            frames: 0,
            retransmissions: 0,
            wire_bits: 0,
            window_escalations: 0,
            final_window: self.forward.config.window,
            elapsed: Cycles::ZERO,
        };
        let ladder = self.recovery.window_ladder.clone();
        let mut rung = ladder
            .iter()
            .position(|&w| w == self.forward.config.window)
            .unwrap_or(0);
        // Sliding window of recent attempt outcomes (true = failed).
        let mut recent: VecDeque<bool> = VecDeque::with_capacity(self.recovery.fer_window);
        let mut consecutive_fails = 0u32;
        let mut seq = false;
        for chunk in payload.chunks(self.chunk) {
            let mut tries = 0;
            loop {
                if tries > self.max_retries {
                    return Err(ModelError::InvalidConfig {
                        reason: format!(
                            "frame {} exhausted {} retransmissions",
                            stats.frames, self.max_retries
                        ),
                    });
                }
                tries += 1;

                let frame = build_frame(seq, chunk, self.chunk);
                let out = self.forward.transmit_hooked(setup, &frame, &mut [], hook)?;
                stats.wire_bits += frame.len();
                let rx = &out.received;

                // Receiver-side validation (the spy would do this).
                let ok = frame_is_valid(rx, frame.len(), seq);

                // Reply on the reverse channel.
                let reply = if ok { ACK } else { NAK };
                let reply_out = self.reverse.transmit_hooked(setup, &reply, &mut [], hook)?;
                let acked = {
                    // Nearest-pattern decode of the reply.
                    let r = &reply_out.received;
                    let dist = |p: &[bool; 4]| {
                        p.iter()
                            .zip(r.iter())
                            .filter(|(a, b)| a != b)
                            .count()
                            + p.len().saturating_sub(r.len())
                    };
                    dist(&ACK) < dist(&NAK)
                };

                let success = ok && acked;
                if recent.len() == self.recovery.fer_window {
                    recent.pop_front();
                }
                recent.push_back(!success);

                if success {
                    delivered.extend_from_slice(&rx[1..1 + chunk.len()]);
                    stats.frames += 1;
                    seq = !seq;
                    consecutive_fails = 0;
                    break;
                }
                // NAK, damaged frame, or damaged reply: retransmit. If the
                // frame was fine but the ACK got lost, the duplicate is
                // filtered by the sequence bit on the receiver side — here
                // the sender view suffices because `delivered` only grows on
                // accept.
                stats.retransmissions += 1;
                consecutive_fails += 1;

                // Graceful degradation: widen the window when the recent
                // frame-error rate says the current rung cannot carry the
                // channel.
                let fails = recent.iter().filter(|&&f| f).count();
                let fer_exceeded = recent.len() >= self.recovery.fer_window.min(4)
                    && fails as f64 > self.recovery.fer_threshold * recent.len() as f64;
                if fer_exceeded && rung + 1 < ladder.len() {
                    rung += 1;
                    self.forward.config.window = ladder[rung];
                    self.reverse.config.window = ladder[rung];
                    stats.window_escalations += 1;
                    recent.clear();
                    // Each rung gets a fresh retry budget: the bound is
                    // `max_retries` per frame *per rung*, and exhaustion
                    // means even the widest window cannot carry the channel.
                    tries = 0;
                }

                // Exponential backoff: idle both cores so a correlated
                // burst (interrupt storm, thrashing co-runner) passes
                // instead of eating further retries.
                if self.recovery.backoff_base > Cycles::ZERO {
                    let exp = consecutive_fails
                        .saturating_sub(1)
                        .min(self.recovery.max_backoff_exp);
                    let pause = Cycles::new(self.recovery.backoff_base.raw() << exp);
                    let resume = Self::link_now(setup, &self.forward) + pause;
                    setup.machine.preempt_until(self.forward.sender.core, resume);
                    setup.machine.preempt_until(self.forward.receiver.core, resume);
                }
            }
        }
        stats.final_window = self.forward.config.window;
        stats.elapsed = Self::link_now(setup, &self.forward).saturating_sub(started);
        Ok((delivered, stats))
    }

    /// The later of the two link cores' clocks.
    fn link_now(setup: &AttackSetup, session: &Session) -> Cycles {
        setup
            .machine
            .core_now(session.sender.core)
            .max(setup.machine.core_now(session.receiver.core))
    }

    /// Effective goodput in KBps for a completed transfer.
    ///
    /// Uses the *measured* elapsed time in [`ReliableStats::elapsed`] —
    /// which includes ACK rounds, backoff idling, and every retransmission
    /// — so a degraded link reports its honestly reduced rate. Falls back
    /// to a window-count estimate for stats without a measurement.
    pub fn goodput_kbps(
        &self,
        setup: &AttackSetup,
        payload_bits: usize,
        stats: &ReliableStats,
    ) -> f64 {
        let clock = setup.machine.config().timing.clock_hz();
        if stats.elapsed > Cycles::ZERO {
            return (payload_bits as f64 / 8.0) / stats.elapsed.to_seconds(clock) / 1000.0;
        }
        let window = self.forward.config.window.raw() as f64;
        let frame_bits = (self.chunk + 9) as f64;
        let frames_sent = stats.frames as f64 + stats.retransmissions as f64;
        // Each frame costs its windows plus an ACK round (4+2 windows).
        let cycles = frames_sent * ((frame_bits + 2.0) + 7.0) * window;
        (payload_bits as f64 / 8.0) / (cycles / clock) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::random_bits;

    #[test]
    fn crc8_detects_single_bit_flips() {
        let data = random_bits(24, 1);
        let c = crc8(&data);
        for i in 0..data.len() {
            let mut d = data.clone();
            d[i] = !d[i];
            assert_ne!(crc8(&d), c, "flip at {i} undetected");
        }
    }

    #[test]
    fn ack_nak_distance_is_four() {
        let d = ACK.iter().zip(NAK.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(d, 4);
    }

    #[test]
    fn crc_covers_the_sequence_bit() {
        // Regression: the CRC is computed over `[seq] + payload`, so a
        // frame whose *only* corrupted bit is the sequence bit must be
        // rejected by the CRC check alone — even against the flipped
        // sequence expectation, where the seq comparison would pass.
        let payload = random_bits(16, 9);
        let frame = build_frame(false, &payload, 16);
        assert!(frame_is_valid(&frame, frame.len(), false));

        let mut corrupted = frame.clone();
        corrupted[0] = !corrupted[0]; // flip only the seq bit
        assert!(
            !frame_is_valid(&corrupted, frame.len(), false),
            "seq flip undetected"
        );
        assert!(
            !frame_is_valid(&corrupted, frame.len(), true),
            "a lone seq-bit flip must fail the CRC, not just the seq comparison"
        );
    }

    #[test]
    fn reliable_transfer_is_exact_on_quiet_machine() {
        let mut setup = AttackSetup::quiet(701).unwrap();
        let mut link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = random_bits(96, 701);
        let (rx, stats) = link.send(&mut setup, &payload).unwrap();
        assert_eq!(rx, payload);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.window_escalations, 0, "quiet link must not degrade");
        assert_eq!(stats.final_window, Cycles::new(15_000));
        assert!(stats.elapsed > Cycles::ZERO, "elapsed must be measured");
    }

    #[test]
    fn reliable_transfer_is_exact_under_noise() {
        let mut setup = AttackSetup::new(702).unwrap();
        let mut link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = random_bits(256, 702);
        let (rx, stats) = link.send(&mut setup, &payload).unwrap();
        assert_eq!(
            rx, payload,
            "ARQ failed to deliver exactly ({} retransmissions)",
            stats.retransmissions
        );
        // Under ~1-2% raw BER with ~25-bit frames, some retransmissions are
        // expected but the link must not thrash.
        assert!(stats.retransmissions < stats.frames, "link thrashing");
    }

    #[test]
    fn measured_goodput_is_honest_about_overheads() {
        let mut setup = AttackSetup::quiet(704).unwrap();
        let mut link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = random_bits(64, 704);
        let (_, stats) = link.send(&mut setup, &payload).unwrap();
        let goodput = link.goodput_kbps(&setup, payload.len(), &stats);
        // The raw channel runs at ~35 KBps; the ARQ's framing plus ACK
        // rounds must report something meaningfully lower, not the raw rate.
        assert!(goodput > 0.0);
        assert!(
            goodput < 30.0,
            "measured goodput {goodput} ignores protocol overhead"
        );
    }

    #[test]
    fn reverse_channel_runs_spy_to_trojan() {
        let mut setup = AttackSetup::quiet(703).unwrap();
        let link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        assert_eq!(link.forward.sender.proc, setup.trojan.proc);
        assert_eq!(link.reverse.sender.proc, setup.spy.proc);
        assert_ne!(
            link.forward.config.agreed_offset,
            link.reverse.config.agreed_offset
        );
    }
}

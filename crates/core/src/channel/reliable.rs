//! A reliable (error-free) transport over the MEE channel (extension).
//!
//! The paper compares against Maurice et al.'s *error-free* LLC covert
//! channel (\[9\]) and reports its own rates "without any error handling".
//! This module closes that gap with a stop-and-wait ARQ:
//!
//! * the **forward** session carries data frames — a sequence bit, the
//!   payload chunk, and a CRC-8 — from the trojan to the spy;
//! * a second, **reverse** session (established with the roles swapped:
//!   the spy owns an eviction set, the trojan a monitor address — the
//!   medium is symmetric) carries 4-bit ACK/NAK replies;
//! * corrupted frames (bad CRC or wrong sequence bit) are retransmitted
//!   until acknowledged, bounding the residual error rate at the CRC's
//!   undetected-error probability (< 0.4% per corrupted frame, and frames
//!   are rarely corrupted to begin with).
//!
//! Because the two directions share the MEE cache but use different
//! agreed offsets (hence different cache sets), they do not collide.

use mee_types::ModelError;

use crate::channel::config::ChannelConfig;
use crate::channel::session::Session;
use crate::setup::AttackSetup;

/// CRC-8 (polynomial 0x07), bitwise over a bool slice.
pub fn crc8(bits: &[bool]) -> u8 {
    let mut crc: u8 = 0;
    for &bit in bits {
        let msb = (crc & 0x80) != 0;
        crc <<= 1;
        if msb ^ bit {
            crc ^= 0x07;
        }
    }
    crc
}

fn byte_to_bits(b: u8) -> Vec<bool> {
    (0..8).rev().map(|i| (b >> i) & 1 == 1).collect()
}

fn bits_to_byte(bits: &[bool]) -> u8 {
    bits.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8)
}

/// The ACK reply pattern (4 bits) — chosen with Hamming distance 4 from
/// the NAK pattern so a single flipped reply bit cannot convert one into
/// the other.
const ACK: [bool; 4] = [true, false, true, false];
/// The NAK reply pattern.
const NAK: [bool; 4] = [false, true, false, true];

/// Statistics of one reliable transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames delivered.
    pub frames: usize,
    /// Retransmissions performed.
    pub retransmissions: usize,
    /// Total forward bits on the wire (including frame overhead).
    pub wire_bits: usize,
}

/// A bidirectional reliable link: data forward, ACKs backward.
#[derive(Debug, Clone)]
pub struct ReliableLink {
    forward: Session,
    reverse: Session,
    /// Payload bits per frame.
    chunk: usize,
    /// Give up after this many retransmissions of one frame.
    max_retries: usize,
}

impl ReliableLink {
    /// Establishes both directions. The forward session uses
    /// `cfg.agreed_offset`; the reverse session uses the next offset
    /// (mod 8) so the two directions occupy different MEE-cache sets.
    ///
    /// # Errors
    ///
    /// Propagates establishment errors from either direction.
    pub fn establish(setup: &mut AttackSetup, cfg: &ChannelConfig) -> Result<Self, ModelError> {
        let forward = Session::establish(setup, cfg)?;
        let reverse_cfg = ChannelConfig {
            agreed_offset: (cfg.agreed_offset + 1) % 8,
            ..cfg.clone()
        };
        let (sender, receiver) = (setup.spy, setup.trojan);
        let reverse = Session::establish_directed(setup, sender, receiver, &reverse_cfg)?;
        Ok(ReliableLink {
            forward,
            reverse,
            chunk: 16,
            max_retries: 16,
        })
    }

    /// Sends `payload` reliably; returns the receiver's copy (equal to the
    /// payload unless the CRC was defeated or a frame exhausted its
    /// retries) plus transfer statistics.
    ///
    /// # Errors
    ///
    /// * Propagates machine errors.
    /// * Returns [`ModelError::InvalidConfig`] if a frame exhausts
    ///   `max_retries` (the channel is catastrophically broken).
    pub fn send(
        &self,
        setup: &mut AttackSetup,
        payload: &[bool],
    ) -> Result<(Vec<bool>, ReliableStats), ModelError> {
        let mut delivered = Vec::with_capacity(payload.len());
        let mut stats = ReliableStats {
            frames: 0,
            retransmissions: 0,
            wire_bits: 0,
        };
        let mut seq = false;
        for chunk in payload.chunks(self.chunk) {
            let mut tries = 0;
            loop {
                if tries > self.max_retries {
                    return Err(ModelError::InvalidConfig {
                        reason: format!(
                            "frame {} exhausted {} retransmissions",
                            stats.frames, self.max_retries
                        ),
                    });
                }
                tries += 1;

                // Frame: seq bit + fixed-size payload (zero-padded) + CRC-8.
                let mut frame = vec![seq];
                let mut padded = chunk.to_vec();
                padded.resize(self.chunk, false);
                frame.extend_from_slice(&padded);
                frame.extend(byte_to_bits(crc8(&frame)));

                let out = self.forward.transmit(setup, &frame)?;
                stats.wire_bits += frame.len();
                let rx = &out.received;

                // Receiver-side validation (the spy would do this).
                let ok = rx.len() == frame.len() && {
                    let (body, crc_bits) = rx.split_at(rx.len() - 8);
                    crc8(body) == bits_to_byte(crc_bits) && body[0] == seq
                };

                // Reply on the reverse channel.
                let reply = if ok { ACK } else { NAK };
                let reply_out = self.reverse.transmit(setup, &reply)?;
                let acked = {
                    // Nearest-pattern decode of the reply.
                    let r = &reply_out.received;
                    let dist = |p: &[bool; 4]| {
                        p.iter()
                            .zip(r.iter())
                            .filter(|(a, b)| a != b)
                            .count()
                            + p.len().saturating_sub(r.len())
                    };
                    dist(&ACK) < dist(&NAK)
                };

                if ok && acked {
                    delivered.extend_from_slice(&rx[1..1 + chunk.len()]);
                    stats.frames += 1;
                    seq = !seq;
                    break;
                }
                // NAK, damaged frame, or damaged reply: retransmit. If the
                // frame was fine but the ACK got lost, the duplicate is
                // filtered by the sequence bit on the receiver side — here
                // the sender view suffices because `delivered` only grows on
                // accept.
                stats.retransmissions += 1;
            }
        }
        Ok((delivered, stats))
    }

    /// Effective goodput in KBps for a completed transfer.
    pub fn goodput_kbps(
        &self,
        setup: &AttackSetup,
        payload_bits: usize,
        stats: &ReliableStats,
    ) -> f64 {
        let window = self.forward.config.window.raw() as f64;
        let frame_bits = (self.chunk + 9) as f64;
        let frames_sent = stats.frames as f64 + stats.retransmissions as f64;
        // Each frame costs its windows plus an ACK round (4+2 windows).
        let cycles = frames_sent * ((frame_bits + 2.0) + 7.0) * window;
        let clock = setup.machine.config().timing.clock_hz();
        (payload_bits as f64 / 8.0) / (cycles / clock) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::random_bits;

    #[test]
    fn crc8_detects_single_bit_flips() {
        let data = random_bits(24, 1);
        let c = crc8(&data);
        for i in 0..data.len() {
            let mut d = data.clone();
            d[i] = !d[i];
            assert_ne!(crc8(&d), c, "flip at {i} undetected");
        }
    }

    #[test]
    fn ack_nak_distance_is_four() {
        let d = ACK.iter().zip(NAK.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(d, 4);
    }

    #[test]
    fn reliable_transfer_is_exact_on_quiet_machine() {
        let mut setup = AttackSetup::quiet(701).unwrap();
        let link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = random_bits(96, 701);
        let (rx, stats) = link.send(&mut setup, &payload).unwrap();
        assert_eq!(rx, payload);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.frames, 6);
    }

    #[test]
    fn reliable_transfer_is_exact_under_noise() {
        let mut setup = AttackSetup::new(702).unwrap();
        let link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = random_bits(256, 702);
        let (rx, stats) = link.send(&mut setup, &payload).unwrap();
        assert_eq!(
            rx, payload,
            "ARQ failed to deliver exactly ({} retransmissions)",
            stats.retransmissions
        );
        // Under ~1-2% raw BER with ~25-bit frames, some retransmissions are
        // expected but the link must not thrash.
        assert!(stats.retransmissions < stats.frames, "link thrashing");
    }

    #[test]
    fn reverse_channel_runs_spy_to_trojan() {
        let mut setup = AttackSetup::quiet(703).unwrap();
        let link = ReliableLink::establish(&mut setup, &ChannelConfig::default()).unwrap();
        assert_eq!(link.forward.sender.proc, setup.trojan.proc);
        assert_eq!(link.reverse.sender.proc, setup.spy.proc);
        assert_ne!(
            link.forward.config.agreed_offset,
            link.reverse.config.agreed_offset
        );
    }
}

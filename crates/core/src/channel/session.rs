//! Establishing and running the covert channel.

use mee_machine::{run_actor_refs_hooked, ActorRef, NoopHook, StepHook};
use mee_types::{Cycles, ModelError, VirtAddr};

use crate::channel::coding;
use crate::channel::config::ChannelConfig;
use crate::channel::message::BitErrors;
use crate::channel::spy::SpyActor;
use crate::channel::trojan::TrojanActor;
use crate::recon::eviction::find_eviction_set;
use crate::setup::{AttackSetup, Tenant};
use crate::threshold::{AdaptiveClassifier, LatencyClassifier};

/// An established MEE-cache covert channel: the trojan's eviction set and
/// the spy's monitor address, in conflict within one MEE-cache set.
#[derive(Debug, Clone)]
pub struct Session {
    /// The trojan's eviction addresses (Algorithm 1's output).
    pub eviction_set: Vec<VirtAddr>,
    /// The spy's monitor address.
    pub monitor: VirtAddr,
    /// The channel parameters.
    pub config: ChannelConfig,
    /// The sending tenant (holds the eviction set).
    pub sender: Tenant,
    /// The receiving tenant (probes the monitor address).
    pub receiver: Tenant,
    /// Classifier for true-latency samples (setup-time probes).
    classifier: LatencyClassifier,
}

/// The result of one transmission.
#[derive(Debug, Clone)]
#[must_use = "a transmission outcome carries the decoded bits and error statistics"]
pub struct TransmitOutcome {
    /// What the trojan sent.
    pub sent: Vec<bool>,
    /// What the spy decoded.
    pub received: Vec<bool>,
    /// The spy's de-biased probe durations (index 0 is the prime probe) —
    /// the y-axis of Figures 6(b) and 8.
    pub probe_times: Vec<Cycles>,
    /// Positional bit errors.
    pub errors: BitErrors,
    /// Wall-clock (simulated) duration of the transmission.
    pub elapsed: Cycles,
    /// Achieved rate in kilobytes per second at the machine's clock.
    pub kbps: f64,
    /// The trojan's per-`1` active sending cost (≈ 9000 cycles, §5.4).
    pub one_costs: Vec<Cycles>,
}

impl TransmitOutcome {
    /// Bit error rate in `[0, 1]`.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.errors.rate()
    }
}

/// The result of one self-healing transmission ([`Session::transmit_robust`]).
#[derive(Debug, Clone)]
#[must_use = "a robust outcome carries the recovered payload and recovery statistics"]
pub struct RobustOutcome {
    /// The recovered payload (after preamble lock, Hamming correction, and
    /// adaptive thresholding).
    pub received: Vec<bool>,
    /// Positional errors of `received` against the sent payload.
    pub errors: BitErrors,
    /// Whether the run-length sanity check on the decoded preamble tripped
    /// (the receiver believed it had lost window alignment).
    pub desynced: bool,
    /// Where the preamble re-locked, if it was not found at offset 0.
    pub resync_offset: Option<usize>,
    /// Whether the preamble was found at all; when `false`, `received` is
    /// a best-effort decode at offset 0 and should be treated as corrupt.
    pub locked: bool,
    /// Online threshold recalibrations performed while decoding.
    pub recalibrations: usize,
    /// The underlying wire-level transmission.
    pub raw: TransmitOutcome,
}

impl RobustOutcome {
    /// Payload bit error rate in `[0, 1]` after recovery.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.errors.rate()
    }
}

/// The best (smallest) Hamming distance between the known preamble and any
/// window of `decoded` starting within the first `search` offsets — the
/// pilot-sequence score used to choose between candidate decodes.
fn preamble_distance(decoded: &[bool], search: usize) -> usize {
    let p = coding::PREAMBLE.len();
    if decoded.len() < p {
        return p;
    }
    (0..=search.min(decoded.len() - p))
        .map(|k| {
            decoded[k..k + p]
                .iter()
                .zip(coding::PREAMBLE.iter())
                .filter(|(a, b)| a != b)
                .count()
        })
        .min()
        .unwrap_or(p)
}

/// Longest run of equal bits in `bits`.
fn max_run(bits: &[bool]) -> usize {
    let mut best = 0;
    let mut run = 0;
    let mut prev = None;
    for &b in bits {
        run = if prev == Some(b) { run + 1 } else { 1 };
        best = best.max(run);
        prev = Some(b);
    }
    best
}

/// Internal helper naming the handle construction for a tenant.
struct CoreHandleOwner;

impl CoreHandleOwner {
    fn handle(setup: &mut AttackSetup, tenant: Tenant) -> mee_machine::CoreHandle<'_> {
        mee_machine::CoreHandle::new(&mut setup.machine, tenant.core, tenant.proc)
    }
}

impl Session {
    /// Establishes the channel (paper §5.3):
    ///
    /// 1. the trojan runs Algorithm 1 over its 4 KiB-stride candidates at
    ///    the agreed in-page offset, producing its eviction set;
    /// 2. the spy scans its own candidates at the same offset for the
    ///    *monitor address*: it primes a candidate, lets the trojan sweep
    ///    its eviction set, and re-probes — a versions miss means the
    ///    candidate conflicts with the trojan's set.
    ///
    /// # Errors
    ///
    /// * Propagates machine errors and Algorithm 1 failures.
    /// * Returns [`ModelError::InvalidConfig`] if no monitor address is
    ///   found (raise `spy_candidates`; each conflicts with probability
    ///   1/8).
    pub fn establish(setup: &mut AttackSetup, cfg: &ChannelConfig) -> Result<Self, ModelError> {
        let (sender, receiver) = (setup.trojan, setup.spy);
        Self::establish_directed(setup, sender, receiver, cfg)
    }

    /// Like [`Self::establish`] with explicit roles — the reverse direction
    /// (`spy` sending, `trojan` receiving) carries the ACKs of the reliable
    /// transport ([`reliable`](crate::channel::reliable)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::establish`].
    pub fn establish_directed(
        setup: &mut AttackSetup,
        sender: Tenant,
        receiver: Tenant,
        cfg: &ChannelConfig,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        // Host-time span over the whole establishment phase (Algorithm 1 +
        // monitor search) — wall-clock only, recorded at the end, so the
        // simulated transcript is untouched.
        let host_start = std::time::Instant::now();
        let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);
        let t0 = setup.machine.core_now(sender.core);
        setup
            .machine
            .trace_phase("establish_start", cfg.trojan_candidates as u64, t0);

        // 1. The sender builds its eviction set.
        let candidates = sender.candidates(cfg.trojan_candidates, cfg.agreed_offset);
        let eviction = {
            let mut cpu = CoreHandleOwner::handle(setup, sender);
            find_eviction_set(&mut cpu, &candidates, &classifier, cfg.setup_reps)?
        };
        let eviction_set = eviction.eviction_set;
        let t1 = setup.machine.core_now(sender.core);
        setup
            .machine
            .trace_phase("eviction_set_ready", eviction_set.len() as u64, t1);

        // 2. The receiver searches for its monitor address.
        let spy_candidates = receiver.candidates(cfg.spy_candidates, cfg.agreed_offset);
        let mut monitor = None;
        'search: for &candidate in &spy_candidates {
            let mut votes = 0usize;
            for _ in 0..cfg.setup_reps {
                setup.sync_clocks();
                // The receiver primes the candidate.
                {
                    let mut spy = CoreHandleOwner::handle(setup, receiver);
                    spy.read(candidate)?;
                    spy.clflush(candidate)?;
                    spy.mfence();
                }
                // The sender sweeps (forward + backward, as for a '1').
                setup.sync_clocks();
                {
                    let mut trojan = CoreHandleOwner::handle(setup, sender);
                    let _ = trojan.sweep_read_flush(&eviction_set)?;
                    trojan.mfence();
                    let _ = trojan.sweep_read_flush_rev(&eviction_set)?;
                    trojan.mfence();
                }
                // The receiver re-probes: a miss means conflict.
                setup.sync_clocks();
                let lat = {
                    let mut spy = CoreHandleOwner::handle(setup, receiver);
                    let lat = spy.read(candidate)?;
                    spy.clflush(candidate)?;
                    lat
                };
                if classifier.is_versions_miss(lat) {
                    votes += 1;
                }
            }
            if votes * 2 > cfg.setup_reps {
                monitor = Some(candidate);
                break 'search;
            }
        }
        let monitor = monitor.ok_or_else(|| ModelError::InvalidConfig {
            reason: format!(
                "no monitor address among {} spy candidates conflicts with the \
                 trojan's eviction set; increase spy_candidates",
                cfg.spy_candidates
            ),
        })?;
        let t2 = setup.machine.core_now(receiver.core);
        setup.machine.trace_phase("monitor_found", monitor.raw(), t2);
        setup
            .machine
            .obs_mut()
            .host
            .record("establish", host_start.elapsed());

        Ok(Session {
            eviction_set,
            monitor,
            config: cfg.clone(),
            sender,
            receiver,
            classifier,
        })
    }

    /// Transmits `bits` over the channel: the trojan and the spy run
    /// concurrently (different cores), one bit per timing window.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn transmit(
        &self,
        setup: &mut AttackSetup,
        bits: &[bool],
    ) -> Result<TransmitOutcome, ModelError> {
        self.transmit_with_noise(setup, bits, &mut [])
    }

    /// Like [`Self::transmit`] but with additional noise actors running
    /// concurrently on other cores (Figure 8's environments).
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn transmit_with_noise(
        &self,
        setup: &mut AttackSetup,
        bits: &[bool],
        noise: &mut [ActorRef<'_>],
    ) -> Result<TransmitOutcome, ModelError> {
        self.transmit_hooked(setup, bits, noise, &mut NoopHook)
    }

    /// Like [`Self::transmit_with_noise`] but with a [`StepHook`] observing
    /// (and possibly perturbing) the machine before every scheduler step —
    /// the entry point the fault injector uses. The hook sees global time
    /// in scheduling order, so a seeded fault plan replays exactly.
    ///
    /// # Errors
    ///
    /// Propagates machine errors, including errors raised by the hook.
    pub fn transmit_hooked(
        &self,
        setup: &mut AttackSetup,
        bits: &[bool],
        noise: &mut [ActorRef<'_>],
        hook: &mut dyn StepHook,
    ) -> Result<TransmitOutcome, ModelError> {
        let window = self.config.window;
        // Host-time span over the wire transmission; like "establish",
        // wall-clock only and recorded at the end.
        let host_start = std::time::Instant::now();
        // Agree on a start boundary comfortably after both clocks.
        let now = setup
            .machine
            .core_now(self.receiver.core)
            .max(setup.machine.core_now(self.sender.core));
        let start = Cycles::new((now.raw() / window.raw() + 3) * window.raw());

        let mut trojan = TrojanActor::with_rotation(
            self.eviction_set.clone(),
            bits.to_vec(),
            window,
            start,
            self.config.strategy,
            self.config.rotate_sweep,
        );
        let timer_classifier = LatencyClassifier {
            threshold: self.classifier.threshold,
            bias: setup.machine.config().timing.timer_read,
        };
        let mut spy = SpyActor::new(self.monitor, window, start, bits.len(), timer_classifier);

        let horizon = start + window * (bits.len() as u64 + 3) + Cycles::new(100_000);
        setup
            .machine
            .trace_phase("transmit_start", bits.len() as u64, start);
        {
            let mut actors: Vec<ActorRef<'_>> = vec![
                (self.receiver.core, self.receiver.proc, &mut spy),
                (self.sender.core, self.sender.proc, &mut trojan),
            ];
            for (core, proc, actor) in noise.iter_mut() {
                actors.push((*core, *proc, &mut **actor));
            }
            run_actor_refs_hooked(&mut setup.machine, &mut actors, horizon, hook)?;
        }
        let t_end = setup.machine.core_now(self.receiver.core);
        setup
            .machine
            .trace_phase("transmit_end", bits.len() as u64, t_end);

        setup
            .machine
            .obs_mut()
            .host
            .record("transmit", host_start.elapsed());
        let received = spy.decoded_bits();
        let errors = BitErrors::compare(bits, &received);
        let elapsed = window * (bits.len() as u64 + 1);
        let clock_hz = setup.machine.config().timing.clock_hz();
        let kbps = (bits.len() as f64 / 8.0) / elapsed.to_seconds(clock_hz) / 1000.0;
        Ok(TransmitOutcome {
            sent: bits.to_vec(),
            received,
            probe_times: spy.probe_times().to_vec(),
            errors,
            elapsed,
            kbps,
            one_costs: trojan.one_costs().to_vec(),
        })
    }

    /// Extra all-zero tail windows appended to a robust frame so a late
    /// preamble can still be found within the probed region.
    pub const RESYNC_SEARCH: usize = 6;

    /// Self-healing transmission: frames `payload` behind the
    /// [`coding::PREAMBLE`] with Hamming(7,4) protection, then decodes the
    /// received windows defensively —
    ///
    /// 1. **adaptive thresholding**: probe latencies are classified by an
    ///    [`AdaptiveClassifier`] that re-centers the hit/miss threshold
    ///    online as faults move the clusters;
    /// 2. **desync detection**: the decoded preamble region is
    ///    sanity-checked (a run of ≥ 4 equal bits, impossible in the
    ///    `10101011` pattern even under a single flip, means window
    ///    alignment was lost);
    /// 3. **resync**: the receiver re-locks by scanning for the preamble
    ///    (one flip tolerated) within [`Self::RESYNC_SEARCH`] window
    ///    offsets, recovering transmissions whose start boundary slipped.
    ///
    /// The fault `hook` applies to the wire transmission, as in
    /// [`Self::transmit_hooked`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors, including errors raised by the hook.
    pub fn transmit_robust(
        &self,
        setup: &mut AttackSetup,
        payload: &[bool],
        hook: &mut dyn StepHook,
    ) -> Result<RobustOutcome, ModelError> {
        let mut wire = coding::frame(payload);
        wire.extend(std::iter::repeat_n(false, Self::RESYNC_SEARCH));
        let raw = self.transmit_hooked(setup, &wire, &mut [], hook)?;
        // Host-time span around the receiver-side decode below; wall-clock
        // only, recorded at the end — determinism is untouched.
        let decode_start = std::time::Instant::now();

        // Receiver-side decode over the de-biased probe samples (probe 0 is
        // the prime probe, not a bit), done twice: once with the setup-time
        // calibrated threshold and once with the online adaptive
        // classifier. The known preamble then acts as a pilot sequence —
        // the stream that reads it more cleanly wins, so a thrashing
        // adaptive threshold can never make the decode worse than the
        // calibrated one.
        let fixed_classifier = LatencyClassifier {
            threshold: self.classifier.threshold,
            bias: Cycles::ZERO,
        };
        let fixed: Vec<bool> = raw
            .probe_times
            .iter()
            .skip(1)
            .map(|&t| fixed_classifier.is_versions_miss(t))
            .collect();
        let mut adaptive = AdaptiveClassifier::new(fixed_classifier);
        let adapted: Vec<bool> = raw
            .probe_times
            .iter()
            .skip(1)
            .map(|&t| adaptive.observe(t))
            .collect();
        let decoded = if preamble_distance(&adapted, Self::RESYNC_SEARCH)
            < preamble_distance(&fixed, Self::RESYNC_SEARCH)
        {
            adapted
        } else {
            fixed
        };

        let preamble_len = coding::PREAMBLE.len();
        let head = &decoded[..preamble_len.min(decoded.len())];
        let head_distance = head
            .iter()
            .zip(coding::PREAMBLE.iter())
            .filter(|(a, b)| a != b)
            .count()
            + preamble_len.saturating_sub(head.len());
        let desynced = max_run(head) >= 4 || head_distance > 1;

        let lock = coding::locate_preamble(&decoded, Self::RESYNC_SEARCH, 1);
        let received = match lock {
            Some(k) => coding::hamming_decode(&decoded[k + preamble_len..], payload.len()),
            // Unrecoverable: best-effort decode at offset 0 so the caller
            // still gets payload-shaped bits (and a CRC above will reject
            // them).
            None => coding::hamming_decode(
                &decoded[preamble_len.min(decoded.len())..],
                payload.len(),
            ),
        };
        let errors = BitErrors::compare(payload, &received);
        setup
            .machine
            .obs_mut()
            .host
            .record("robust_decode", decode_start.elapsed());
        Ok(RobustOutcome {
            received,
            errors,
            desynced,
            resync_offset: lock.filter(|&k| k > 0),
            locked: lock.is_some(),
            recalibrations: adaptive.recalibrations(),
            raw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::{alternating_bits, random_bits};

    #[test]
    fn establish_finds_conflicting_monitor() {
        let mut setup = AttackSetup::quiet(71).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        assert_eq!(session.eviction_set.len(), 8);

        // Ground truth: monitor's versions line shares the set with the
        // eviction set's versions lines.
        let geo = *setup.machine.mee().geometry();
        let sets = setup.machine.mee().cache().config().sets;
        let set_of = |proc, va: VirtAddr| {
            let pa = setup.machine.translate(proc, va).unwrap();
            geo.version_line(geo.walk_path(pa.line()).version)
                .set_index(sets)
        };
        let monitor_set = set_of(setup.spy.proc, session.monitor);
        for &a in &session.eviction_set {
            assert_eq!(set_of(setup.trojan.proc, a), monitor_set);
        }
    }

    #[test]
    fn quiet_channel_is_error_free() {
        let mut setup = AttackSetup::quiet(72).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let bits = alternating_bits(32);
        let out = session.transmit(&mut setup, &bits).unwrap();
        assert_eq!(
            out.received, bits,
            "noise-free transmission must be perfect: {} errors at {:?}",
            out.errors.count(),
            out.errors.positions
        );
    }

    #[test]
    fn probe_times_show_figure6b_separation() {
        let mut setup = AttackSetup::quiet(73).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let bits = alternating_bits(16);
        let out = session.transmit(&mut setup, &bits).unwrap();
        // '0' probes near 480, '1' probes near 750 (§5.4).
        for (i, &bit) in bits.iter().enumerate() {
            let t = out.probe_times[i + 1].raw();
            if bit {
                assert!((640..=1000).contains(&t), "bit {i} ('1') probe {t}");
            } else {
                assert!((380..=620).contains(&t), "bit {i} ('0') probe {t}");
            }
        }
    }

    #[test]
    fn noisy_channel_matches_headline_error_rate() {
        // Default (noisy) machine at the 15000-cycle window: §5.4 reports
        // 1.7% error. Allow a generous band.
        let mut setup = AttackSetup::new(74).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let bits = random_bits(512, 74);
        let out = session.transmit(&mut setup, &bits).unwrap();
        let rate = out.error_rate();
        assert!(rate < 0.08, "error rate {rate} too high");
        // And the bit rate is the paper's 35 KBps ballpark.
        assert!((30.0..=40.0).contains(&out.kbps), "kbps = {}", out.kbps);
    }

    #[test]
    fn robust_transmit_is_clean_on_a_quiet_machine() {
        let mut setup = AttackSetup::quiet(76).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let payload = random_bits(40, 76);
        let out = session
            .transmit_robust(&mut setup, &payload, &mut NoopHook)
            .unwrap();
        assert_eq!(out.received, payload);
        assert!(out.locked, "preamble must lock at offset 0");
        assert!(!out.desynced);
        assert_eq!(out.resync_offset, None);
        assert_eq!(out.error_rate(), 0.0);
    }

    #[test]
    fn robust_transmit_detects_a_jammed_preamble() {
        use mee_faults::{FaultInjector, FaultKind, FaultPlan};

        let mut setup = AttackSetup::quiet(77).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();

        // The MEE-cache set the channel modulates.
        let geo = *setup.machine.mee().geometry();
        let sets = setup.machine.mee().cache().config().sets;
        let pa = setup
            .machine
            .translate(session.receiver.proc, session.monitor)
            .unwrap();
        let set = geo
            .version_line(geo.walk_path(pa.line()).version)
            .set_index(sets);

        // Thrash that set once per window, after the trojan's sweep but
        // before the spy's probe, across the whole preamble region: every
        // probe deep-misses, the preamble decodes as a solid run of 1s,
        // and the run-length sanity check must trip.
        let window = session.config.window;
        let now = setup
            .machine
            .core_now(session.receiver.core)
            .max(setup.machine.core_now(session.sender.core));
        let start = Cycles::new((now.raw() / window.raw() + 3) * window.raw());
        let mut plan = FaultPlan::none();
        for i in 0..10u64 {
            plan = plan.with_event(
                start + window * i + Cycles::new(12_000),
                FaultKind::MeeSetThrash { set },
            );
        }
        let mut injector = FaultInjector::new(plan);
        let payload = vec![false; 8];
        let out = session
            .transmit_robust(&mut setup, &payload, &mut injector)
            .unwrap();
        assert!(
            !injector.applied().is_empty(),
            "the plan must actually fire"
        );
        assert!(out.desynced, "jammed preamble must trip the sanity check");
        assert!(
            !out.locked || out.resync_offset.is_some(),
            "a lock through a jammed preamble must be a re-lock"
        );
    }

    #[test]
    fn sessions_are_reusable() {
        let mut setup = AttackSetup::quiet(75).unwrap();
        let session = Session::establish(&mut setup, &ChannelConfig::default()).unwrap();
        let first = session.transmit(&mut setup, &[true, false, true]).unwrap();
        let second = session.transmit(&mut setup, &[false, true, false]).unwrap();
        assert_eq!(first.received, vec![true, false, true]);
        assert_eq!(second.received, vec![false, true, false]);
    }
}

//! The spy side of Algorithm 2.

use mee_machine::{Actor, CoreHandle, StepOutcome};
use mee_types::{Cycles, ModelError, VirtAddr};

use crate::threshold::LatencyClassifier;

/// The receiving actor: once per window it times a single access to its
/// *monitor address* — bracketing the load between two reads of the
/// hyperthread timer mailbox, since `rdtsc` is unavailable in the enclave
/// (§3, Figure 2(c)) — flushes the line, and decodes versions-hit → `0`,
/// versions-miss → `1`. The probe itself re-primes the MEE cache for the
/// next bit ("the probe … effectively primes the MEE cache", §5.3).
///
/// Phase: the probe for window `i` fires a small *guard* interval before
/// the boundary `W(i+1)`, when the trojan's eviction for bit `i` has long
/// finished and the trojan is idle — so the probe never queues behind the
/// trojan's own walks in the shared MEE pipeline. (Algorithm 2 fixes only
/// the window length; the phase within the window is the implementer's
/// choice.)
#[derive(Debug)]
pub struct SpyActor {
    monitor: VirtAddr,
    window: Cycles,
    start: Cycles,
    /// Cycles before each boundary at which the probe fires.
    guard: Cycles,
    /// Number of data windows to receive (one initial prime probe is
    /// performed before the first data window).
    bits: usize,
    classifier: LatencyClassifier,
    state: State,
    probe_t1: Cycles,
    /// Raw, de-biased probe durations, one per probe (first is the prime).
    probe_times: Vec<Cycles>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the start of probe `i` (probes happen at window starts).
    WaitWindow(usize),
    /// Timer read done; the timed access is next.
    Probe(usize),
    /// Access done; close the measurement and flush.
    Close(usize),
    Finished,
}

impl SpyActor {
    /// Creates the spy. `start` is the agreed first window boundary (the
    /// prime probe happens there; data probes at each subsequent boundary).
    pub fn new(
        monitor: VirtAddr,
        window: Cycles,
        start: Cycles,
        bits: usize,
        classifier: LatencyClassifier,
    ) -> Self {
        let guard = Cycles::new((window.raw() / 10).clamp(400, 1_200));
        SpyActor {
            monitor,
            window,
            start,
            guard,
            bits,
            classifier,
            state: State::WaitWindow(0),
            probe_t1: Cycles::ZERO,
            probe_times: Vec::with_capacity(bits + 1),
        }
    }

    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }

    /// De-biased probe durations (index 0 is the initial prime probe).
    pub fn probe_times(&self) -> &[Cycles] {
        &self.probe_times
    }

    /// Decoded data bits: probe `i + 1` carries bit `i` (the trojan evicts
    /// during window `i`; the spy observes it at the next boundary).
    pub fn decoded_bits(&self) -> Vec<bool> {
        self.probe_times
            .iter()
            .skip(1)
            .map(|&t| {
                // probe_times are already de-biased.
                LatencyClassifier {
                    threshold: self.classifier.threshold,
                    bias: Cycles::ZERO,
                }
                .is_versions_miss(t)
            })
            .collect()
    }
}

impl Actor for SpyActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            State::WaitWindow(i) => {
                if i > self.bits {
                    self.state = State::Finished;
                    return Ok(StepOutcome::Done);
                }
                // Probe just before the boundary W(i): it observes bit i-1
                // and re-primes the monitor line for bit i.
                cpu.busy_until(self.window_start(i).saturating_sub(self.guard));
                self.probe_t1 = cpu.timer_read();
                self.state = State::Probe(i);
            }
            State::Probe(i) => {
                // "measure time to access monitor address" — the access also
                // re-primes the versions line.
                cpu.read(self.monitor)?;
                self.state = State::Close(i);
            }
            State::Close(i) => {
                let t2 = cpu.timer_read();
                cpu.clflush(self.monitor)?;
                let raw = t2.saturating_sub(self.probe_t1);
                self.probe_times.push(self.classifier.debias(raw));
                self.state = State::WaitWindow(i + 1);
            }
            State::Finished => return Ok(StepOutcome::Done),
        }
        Ok(StepOutcome::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::AttackSetup;
    use mee_types::TimingConfig;

    #[test]
    fn spy_alone_decodes_all_zeroes() {
        // With no trojan, every probe after the prime is a versions hit.
        let mut setup = AttackSetup::quiet(61).unwrap();
        let monitor = setup.spy.candidate(0, 0);
        let t = setup.machine.config().timing.clone();
        let mut spy = SpyActor::new(
            monitor,
            Cycles::new(15_000),
            Cycles::new(2_000),
            8,
            LatencyClassifier::for_timer_probes(&t),
        );
        let mut cpu = setup.spy_handle();
        while spy.step(&mut cpu).unwrap() == StepOutcome::Running {}
        assert_eq!(spy.probe_times().len(), 9);
        assert_eq!(spy.decoded_bits(), vec![false; 8]);
        // Probe durations sit near the versions-hit anchor (~480 cycles),
        // within timer quantization.
        for &t in &spy.probe_times()[1..] {
            assert!(
                (380..=600).contains(&t.raw()),
                "probe time {t} far from the 480-cycle anchor"
            );
        }
    }

    #[test]
    fn spy_probes_land_on_window_boundaries() {
        let mut setup = AttackSetup::quiet(62).unwrap();
        let monitor = setup.spy.candidate(0, 0);
        let t: TimingConfig = setup.machine.config().timing.clone();
        let window = Cycles::new(10_000);
        let mut spy = SpyActor::new(
            monitor,
            window,
            Cycles::new(5_000),
            3,
            LatencyClassifier::for_timer_probes(&t),
        );
        let mut cpu = setup.spy_handle();
        // Step until the first probe completes; it fires in the guard slot
        // just before the boundary, so the clock lands near (and never far
        // past) the boundary itself.
        while spy.probe_times().is_empty() {
            spy.step(&mut cpu).unwrap();
        }
        let now = cpu.now().raw();
        assert!(
            (4_000..5_000 + 1_500).contains(&now),
            "first probe at {now}"
        );
    }
}

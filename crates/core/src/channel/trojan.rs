//! The trojan side of Algorithm 2.

use mee_machine::{Actor, CoreHandle, StepOutcome};
use mee_types::{Cycles, ModelError, VirtAddr};

use crate::channel::config::EvictionStrategy;

/// The sending actor: for every `1` bit it sweeps its eviction set through
/// the MEE cache (access + `clflush` per address, forward then — under
/// [`EvictionStrategy::TwoPhase`] — backward, as in Algorithm 2), evicting
/// the spy's versions line; for every `0` it stays idle for the window.
///
/// One refinement over the paper's pseudocode: the sweep's starting element
/// rotates from one `1` to the next (the order stays cyclic-forward then
/// cyclic-backward). Under a deterministic tree-PLRU model, a fixed sweep
/// order can fall into an *absorbing replacement-state cycle* in which the
/// monitor line survives every sweep and the channel silently dies; on real
/// hardware, ambient MEE traffic perturbs the replacement state and prevents
/// the lock-in. Rotating the start point restores that behaviour without
/// extra accesses.
#[derive(Debug)]
pub struct TrojanActor {
    eviction_set: Vec<VirtAddr>,
    bits: Vec<bool>,
    window: Cycles,
    start: Cycles,
    strategy: EvictionStrategy,
    state: State,
    /// Sweep-start rotation, advanced per transmitted `1`.
    rotation: usize,
    /// Whether rotation is enabled.
    rotate: bool,
    /// Cycles spent actively sending each `1` bit (diagnostics for the
    /// Figure-7 discussion: one `1` costs ≈ 9000 cycles).
    one_costs: Vec<Cycles>,
    one_started: Cycles,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    WaitStart,
    BitStart(usize),
    Forward(usize, usize),
    Fence(usize),
    Backward(usize, usize),
    WaitWindowEnd(usize),
    Finished,
}

impl TrojanActor {
    /// Creates the trojan. `start` is the agreed first window boundary.
    ///
    /// # Panics
    ///
    /// Panics if the eviction set is empty.
    pub fn new(
        eviction_set: Vec<VirtAddr>,
        bits: Vec<bool>,
        window: Cycles,
        start: Cycles,
        strategy: EvictionStrategy,
    ) -> Self {
        Self::with_rotation(eviction_set, bits, window, start, strategy, true)
    }

    /// Like [`Self::new`] with explicit control over sweep-start rotation
    /// (the ablation bench disables it to study the naive fixed order).
    ///
    /// # Panics
    ///
    /// Panics if the eviction set is empty.
    pub fn with_rotation(
        eviction_set: Vec<VirtAddr>,
        bits: Vec<bool>,
        window: Cycles,
        start: Cycles,
        strategy: EvictionStrategy,
        rotate: bool,
    ) -> Self {
        assert!(!eviction_set.is_empty(), "eviction set must be non-empty");
        TrojanActor {
            eviction_set,
            bits,
            window,
            start,
            strategy,
            state: State::WaitStart,
            rotation: 0,
            rotate,
            one_costs: Vec::new(),
            one_started: Cycles::ZERO,
        }
    }

    /// Start of window `i`.
    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }

    /// The `j`-th element of the current cyclic sweep order.
    fn sweep_addr(&self, j: usize) -> VirtAddr {
        let n = self.eviction_set.len();
        self.eviction_set[(self.rotation + j) % n]
    }

    /// Per-`1` active sending costs observed so far.
    pub fn one_costs(&self) -> &[Cycles] {
        &self.one_costs
    }
}

impl Actor for TrojanActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            State::WaitStart => {
                cpu.busy_until(self.start);
                self.state = State::BitStart(0);
            }
            State::BitStart(i) => {
                if i >= self.bits.len() {
                    self.state = State::Finished;
                    return Ok(StepOutcome::Done);
                }
                if self.bits[i] {
                    self.one_started = cpu.now();
                    self.state = State::Forward(i, 0);
                } else {
                    // Algorithm 2: "busy loop for time T_sync".
                    cpu.busy_until(self.window_start(i + 1));
                    self.state = State::BitStart(i + 1);
                }
            }
            State::Forward(i, j) => {
                let addr = self.sweep_addr(j);
                cpu.read(addr)?;
                cpu.clflush(addr)?;
                if j + 1 < self.eviction_set.len() {
                    self.state = State::Forward(i, j + 1);
                } else {
                    self.state = State::Fence(i);
                }
            }
            State::Fence(i) => {
                cpu.mfence();
                match self.strategy {
                    EvictionStrategy::TwoPhase => {
                        self.state = State::Backward(i, self.eviction_set.len() - 1);
                    }
                    EvictionStrategy::ForwardOnly => {
                        self.one_costs.push(cpu.now() - self.one_started);
                        if self.rotate {
                            self.rotation = (self.rotation + 1) % self.eviction_set.len();
                        }
                        self.state = State::WaitWindowEnd(i);
                    }
                }
            }
            State::Backward(i, j) => {
                let addr = self.sweep_addr(j);
                cpu.read(addr)?;
                cpu.clflush(addr)?;
                if j > 0 {
                    self.state = State::Backward(i, j - 1);
                } else {
                    self.one_costs.push(cpu.now() - self.one_started);
                    if self.rotate {
                        self.rotation = (self.rotation + 1) % self.eviction_set.len();
                    }
                    self.state = State::WaitWindowEnd(i);
                }
            }
            State::WaitWindowEnd(i) => {
                // "busy loop for remaining time of T_sync".
                cpu.busy_until(self.window_start(i + 1));
                self.state = State::BitStart(i + 1);
            }
            State::Finished => return Ok(StepOutcome::Done),
        }
        Ok(StepOutcome::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::AttackSetup;
    use mee_machine::{run_actors, ActorBinding};

    #[test]
    fn zero_bits_cost_nothing_but_time() {
        let mut setup = AttackSetup::quiet(51).unwrap();
        let addrs = setup.trojan.candidates(8, 0);
        let window = Cycles::new(15_000);
        let trojan = TrojanActor::new(
            addrs,
            vec![false, false, false],
            window,
            Cycles::new(1_000),
            EvictionStrategy::TwoPhase,
        );
        let reads_before = setup.machine.mee().stats().reads;
        let mut bindings = vec![ActorBinding {
            core: setup.trojan.core,
            proc: setup.trojan.proc,
            actor: Box::new(trojan),
        }];
        run_actors(&mut setup.machine, &mut bindings, Cycles::new(1_000_000)).unwrap();
        assert_eq!(setup.machine.mee().stats().reads, reads_before);
        assert!(setup.machine.core_now(setup.trojan.core) >= Cycles::new(1_000 + 45_000));
    }

    #[test]
    fn one_bit_costs_about_9000_cycles() {
        let mut setup = AttackSetup::quiet(52).unwrap();
        let addrs = setup.trojan.candidates(8, 0);
        // Warm the eviction set once so the measurement reflects steady
        // state (mostly versions hits), as during a real transmission.
        {
            let mut cpu = setup.trojan_handle();
            for &a in &addrs {
                cpu.read(a).unwrap();
                cpu.clflush(a).unwrap();
            }
        }
        let start = setup.machine.core_now(setup.trojan.core) + Cycles::new(1_000);
        let mut trojan = TrojanActor::new(
            addrs,
            vec![true, true, true, true],
            Cycles::new(15_000),
            start,
            EvictionStrategy::TwoPhase,
        );
        // Single actor: drive it directly, no scheduler needed.
        let mut cpu = setup.trojan_handle();
        while trojan.step(&mut cpu).unwrap() == StepOutcome::Running {}
        assert_eq!(trojan.one_costs().len(), 4);
        for &c in trojan.one_costs() {
            assert!(
                (7_000..=12_000).contains(&c.raw()),
                "one-bit cost {c} outside the §5.4 ballpark"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_eviction_set_rejected() {
        let _ = TrojanActor::new(
            Vec::new(),
            vec![true],
            Cycles::new(100),
            Cycles::ZERO,
            EvictionStrategy::TwoPhase,
        );
    }
}

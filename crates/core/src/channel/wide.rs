//! The *wide* channel (extension): several MEE-cache sets in parallel.
//!
//! The paper's channel sends one bit per timing window through one cache
//! set. Nothing stops the pair from agreeing on several in-page offsets:
//! each of the 8 version blocks of a page maps to a *different* MEE-cache
//! set (offset `o` lands on set `≡ 2o+1 (mod 16)` within its alignment
//! class), so up to 8 independent lanes coexist without colliding. The
//! trojan sweeps the eviction sets of all `1` lanes inside the window; the
//! spy probes one monitor address per lane in its guard slot.
//!
//! Throughput: a lane's `1` costs ≈ 9000 cycles of trojan time, so the
//! window must grow with the lane count and the speedup saturates around
//! `15000 / 9000 ≈ 1.7×` — but latency per symbol improves, and the lanes
//! share one setup. The [`wide` experiment](crate::experiments::wide)
//! quantifies the trade-off.

use mee_machine::{run_actor_refs, Actor, ActorRef, CoreHandle, StepOutcome};
use mee_types::{Cycles, ModelError, VirtAddr};

use crate::channel::config::ChannelConfig;
use crate::channel::message::BitErrors;
use crate::channel::session::Session;
use crate::setup::AttackSetup;
use crate::threshold::LatencyClassifier;

/// One lane: an eviction set and a monitor address in one MEE-cache set.
#[derive(Debug, Clone)]
pub struct Lane {
    /// The trojan's eviction addresses for this lane.
    pub eviction_set: Vec<VirtAddr>,
    /// The spy's monitor address for this lane.
    pub monitor: VirtAddr,
    /// The agreed in-page offset this lane uses.
    pub offset: usize,
}

/// A multi-lane channel.
#[derive(Debug, Clone)]
pub struct WideSession {
    /// The lanes, in symbol bit order (lane 0 = most significant).
    pub lanes: Vec<Lane>,
    /// Window per symbol.
    pub window: Cycles,
    classifier: LatencyClassifier,
}

/// Outcome of a wide transmission.
#[derive(Debug, Clone)]
pub struct WideOutcome {
    /// Bits sent (flattened symbols, lane-major within each window).
    pub sent: Vec<bool>,
    /// Bits decoded.
    pub received: Vec<bool>,
    /// Positional errors over the flattened stream.
    pub errors: BitErrors,
    /// Effective rate in KBps.
    pub kbps: f64,
}

impl WideSession {
    /// Establishes `lanes` parallel lanes (1 ..= 8) by running the ordinary
    /// establishment once per agreed offset.
    ///
    /// The window defaults to `max(cfg.window, lanes × 9500 + 2500)` so the
    /// trojan can sweep every active lane within one window.
    ///
    /// # Errors
    ///
    /// Propagates establishment errors; returns
    /// [`ModelError::InvalidConfig`] for a lane count outside `1..=8`.
    pub fn establish(
        setup: &mut AttackSetup,
        cfg: &ChannelConfig,
        lanes: usize,
    ) -> Result<Self, ModelError> {
        if !(1..=8).contains(&lanes) {
            return Err(ModelError::InvalidConfig {
                reason: format!("lane count {lanes} must be in 1..=8 (one per version block)"),
            });
        }
        cfg.validate()?;
        let mut built = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let lane_cfg = ChannelConfig {
                agreed_offset: lane,
                ..cfg.clone()
            };
            let session = Session::establish(setup, &lane_cfg)?;
            built.push(Lane {
                eviction_set: session.eviction_set,
                monitor: session.monitor,
                offset: lane,
            });
        }
        let min_window = Cycles::new(lanes as u64 * 9_500 + 2_500);
        Ok(WideSession {
            lanes: built,
            window: cfg.window.max(min_window),
            classifier: LatencyClassifier::from_timing(&setup.machine.config().timing),
        })
    }

    /// Transmits `bits` (flattened symbols: window `w` carries bits
    /// `w*lanes .. (w+1)*lanes`, zero-padded at the tail).
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn transmit(
        &self,
        setup: &mut AttackSetup,
        bits: &[bool],
    ) -> Result<WideOutcome, ModelError> {
        let lanes = self.lanes.len();
        let symbols = bits.len().div_ceil(lanes);
        let mut padded = bits.to_vec();
        padded.resize(symbols * lanes, false);

        let window = self.window;
        let now = setup
            .machine
            .core_now(setup.spy.core)
            .max(setup.machine.core_now(setup.trojan.core));
        let start = Cycles::new((now.raw() / window.raw() + 3) * window.raw());

        let mut trojan = WideTrojanActor::new(
            self.lanes.iter().map(|l| l.eviction_set.clone()).collect(),
            padded.clone(),
            lanes,
            window,
            start,
        );
        let timer_classifier = LatencyClassifier {
            threshold: self.classifier.threshold,
            bias: setup.machine.config().timing.timer_read,
        };
        let mut spy = WideSpyActor::new(
            self.lanes.iter().map(|l| l.monitor).collect(),
            window,
            start,
            symbols,
            timer_classifier,
        );

        let horizon = start + window * (symbols as u64 + 3) + Cycles::new(200_000);
        {
            let mut actors: Vec<ActorRef<'_>> = vec![
                (setup.spy.core, setup.spy.proc, &mut spy),
                (setup.trojan.core, setup.trojan.proc, &mut trojan),
            ];
            run_actor_refs(&mut setup.machine, &mut actors, horizon)?;
        }
        let mut received = spy.decoded_bits();
        received.truncate(bits.len());
        let errors = BitErrors::compare(bits, &received);
        let clock_hz = setup.machine.config().timing.clock_hz();
        let elapsed = window * (symbols as u64 + 1);
        let kbps = (bits.len() as f64 / 8.0) / elapsed.to_seconds(clock_hz) / 1000.0;
        Ok(WideOutcome {
            sent: bits.to_vec(),
            received,
            errors,
            kbps,
        })
    }
}

/// The multi-lane trojan: per window, sweeps the eviction set of every lane
/// whose bit is `1` (forward then backward, rotating starts).
#[derive(Debug)]
pub struct WideTrojanActor {
    lane_sets: Vec<Vec<VirtAddr>>,
    bits: Vec<bool>,
    lanes: usize,
    window: Cycles,
    start: Cycles,
    state: WtState,
    rotation: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WtState {
    WaitStart,
    SymbolStart(usize),
    /// (symbol, lane, phase 0=fwd 1=bwd, index)
    Sweep(usize, usize, u8, usize),
    WaitWindowEnd(usize),
}

impl WideTrojanActor {
    /// Creates the multi-lane trojan.
    ///
    /// # Panics
    ///
    /// Panics if any lane's eviction set is empty or `bits.len()` is not a
    /// multiple of the lane count.
    pub fn new(
        lane_sets: Vec<Vec<VirtAddr>>,
        bits: Vec<bool>,
        lanes: usize,
        window: Cycles,
        start: Cycles,
    ) -> Self {
        assert!(lane_sets.iter().all(|s| !s.is_empty()), "empty lane set");
        assert_eq!(lane_sets.len(), lanes, "lane count mismatch");
        assert_eq!(bits.len() % lanes, 0, "bits must fill whole symbols");
        WideTrojanActor {
            lane_sets,
            bits,
            lanes,
            window,
            start,
            state: WtState::WaitStart,
            rotation: 0,
        }
    }

    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }

    fn bit(&self, symbol: usize, lane: usize) -> bool {
        self.bits[symbol * self.lanes + lane]
    }

    /// First active lane at or after `lane` in `symbol`, if any.
    fn next_active(&self, symbol: usize, lane: usize) -> Option<usize> {
        (lane..self.lanes).find(|&l| self.bit(symbol, l))
    }
}

impl Actor for WideTrojanActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            WtState::WaitStart => {
                cpu.busy_until(self.start);
                self.state = WtState::SymbolStart(0);
            }
            WtState::SymbolStart(s) => {
                if s * self.lanes >= self.bits.len() {
                    return Ok(StepOutcome::Done);
                }
                match self.next_active(s, 0) {
                    Some(lane) => self.state = WtState::Sweep(s, lane, 0, 0),
                    None => {
                        cpu.busy_until(self.window_start(s + 1));
                        self.state = WtState::SymbolStart(s + 1);
                    }
                }
            }
            WtState::Sweep(s, lane, phase, j) => {
                let set = &self.lane_sets[lane];
                let n = set.len();
                let idx = if phase == 0 {
                    (self.rotation + j) % n
                } else {
                    (self.rotation + (n - 1 - j)) % n
                };
                let addr = set[idx];
                cpu.read(addr)?;
                cpu.clflush(addr)?;
                if j + 1 < n {
                    self.state = WtState::Sweep(s, lane, phase, j + 1);
                } else if phase == 0 {
                    cpu.mfence();
                    self.state = WtState::Sweep(s, lane, 1, 0);
                } else {
                    // Lane done; next active lane or wait out the window.
                    match self.next_active(s, lane + 1) {
                        Some(next) => self.state = WtState::Sweep(s, next, 0, 0),
                        None => {
                            self.rotation = self.rotation.wrapping_add(1);
                            self.state = WtState::WaitWindowEnd(s);
                        }
                    }
                }
            }
            WtState::WaitWindowEnd(s) => {
                cpu.busy_until(self.window_start(s + 1));
                self.state = WtState::SymbolStart(s + 1);
            }
        }
        Ok(StepOutcome::Running)
    }
}

/// The multi-lane spy: probes every lane's monitor address in the guard
/// slot before each boundary.
#[derive(Debug)]
pub struct WideSpyActor {
    monitors: Vec<VirtAddr>,
    window: Cycles,
    start: Cycles,
    guard: Cycles,
    symbols: usize,
    classifier: LatencyClassifier,
    state: WsState,
    t1: Cycles,
    /// De-biased probe times, `monitors.len()` per probe round.
    probe_times: Vec<Cycles>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WsState {
    WaitWindow(usize),
    /// (round, lane) — timer read done for this lane.
    Probe(usize, usize),
    Close(usize, usize),
    Finished,
}

impl WideSpyActor {
    /// Creates the multi-lane spy.
    ///
    /// # Panics
    ///
    /// Panics if `monitors` is empty.
    pub fn new(
        monitors: Vec<VirtAddr>,
        window: Cycles,
        start: Cycles,
        symbols: usize,
        classifier: LatencyClassifier,
    ) -> Self {
        assert!(!monitors.is_empty(), "at least one monitor required");
        let guard = Cycles::new((monitors.len() as u64 * 800 + 400).min(window.raw() / 2));
        WideSpyActor {
            monitors,
            window,
            start,
            guard,
            symbols,
            classifier,
            state: WsState::WaitWindow(0),
            t1: Cycles::ZERO,
            probe_times: Vec::new(),
        }
    }

    fn window_start(&self, i: usize) -> Cycles {
        self.start + self.window * i as u64
    }

    /// Decoded flattened bits: probe round `r + 1` carries symbol `r`.
    pub fn decoded_bits(&self) -> Vec<bool> {
        let lanes = self.monitors.len();
        self.probe_times
            .iter()
            .skip(lanes) // the prime round
            .map(|&t| t >= self.classifier.threshold)
            .collect()
    }
}

impl Actor for WideSpyActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        match self.state {
            WsState::WaitWindow(r) => {
                if r > self.symbols {
                    self.state = WsState::Finished;
                    return Ok(StepOutcome::Done);
                }
                cpu.busy_until(self.window_start(r).saturating_sub(self.guard));
                self.t1 = cpu.timer_read();
                self.state = WsState::Probe(r, 0);
            }
            WsState::Probe(r, lane) => {
                cpu.read(self.monitors[lane])?;
                self.state = WsState::Close(r, lane);
            }
            WsState::Close(r, lane) => {
                let t2 = cpu.timer_read();
                cpu.clflush(self.monitors[lane])?;
                self.probe_times
                    .push(self.classifier.debias(t2.saturating_sub(self.t1)));
                if lane + 1 < self.monitors.len() {
                    self.t1 = cpu.timer_read();
                    self.state = WsState::Probe(r, lane + 1);
                } else {
                    self.state = WsState::WaitWindow(r + 1);
                }
            }
            WsState::Finished => return Ok(StepOutcome::Done),
        }
        Ok(StepOutcome::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::message::random_bits;

    #[test]
    fn lane_sets_occupy_distinct_mee_sets() {
        let mut setup = AttackSetup::quiet(501).unwrap();
        let wide = WideSession::establish(&mut setup, &ChannelConfig::default(), 3).unwrap();
        let geo = *setup.machine.mee().geometry();
        let sets = setup.machine.mee().cache().config().sets;
        let set_of = |proc, va| {
            let pa = setup.machine.translate(proc, va).unwrap();
            geo.version_line(geo.walk_path(pa.line()).version)
                .set_index(sets)
        };
        let lane_sets: Vec<usize> = wide
            .lanes
            .iter()
            .map(|l| set_of(setup.spy.proc, l.monitor))
            .collect();
        for i in 0..lane_sets.len() {
            for j in i + 1..lane_sets.len() {
                assert_ne!(lane_sets[i], lane_sets[j], "lanes {i}/{j} collide");
            }
        }
    }

    #[test]
    fn two_lane_channel_is_error_free_quiet() {
        let mut setup = AttackSetup::quiet(502).unwrap();
        let wide = WideSession::establish(&mut setup, &ChannelConfig::default(), 2).unwrap();
        let bits = random_bits(64, 502);
        let out = wide.transmit(&mut setup, &bits).unwrap();
        assert_eq!(out.received, bits);
    }

    #[test]
    fn wide_channel_beats_single_lane_throughput() {
        let mut setup = AttackSetup::quiet(503).unwrap();
        let single = WideSession::establish(&mut setup, &ChannelConfig::default(), 1).unwrap();
        let bits = random_bits(48, 503);
        let single_out = single.transmit(&mut setup, &bits).unwrap();

        let mut setup2 = AttackSetup::quiet(503).unwrap();
        let wide = WideSession::establish(&mut setup2, &ChannelConfig::default(), 4).unwrap();
        let wide_out = wide.transmit(&mut setup2, &bits).unwrap();

        assert_eq!(wide_out.received, bits, "wide channel corrupted data");
        assert!(
            wide_out.kbps > single_out.kbps * 1.2,
            "wide {} KBps vs single {} KBps",
            wide_out.kbps,
            single_out.kbps
        );
    }

    #[test]
    fn lane_count_bounds_enforced() {
        let mut setup = AttackSetup::quiet(504).unwrap();
        assert!(WideSession::establish(&mut setup, &ChannelConfig::default(), 0).is_err());
        assert!(WideSession::establish(&mut setup, &ChannelConfig::default(), 9).is_err());
    }
}

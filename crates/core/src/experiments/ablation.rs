//! Ablation: the trojan's sweep discipline (§5.3) across MEE-cache
//! replacement policies.
//!
//! The paper argues the two-phase (forward + backward) eviction exists
//! because the MEE cache replacement is "approximate LRU". This experiment
//! crosses sweep strategy × sweep-order rotation × replacement policy.
//! Findings in this model:
//!
//! * every *recency-based* policy supports the channel at the paper's
//!   operating point, with fixed sweep orders consistently worse than
//!   rotating ones (fixed orders can fall into replacement-state cycles
//!   that leave the monitor line resident);
//! * under *random* replacement, Algorithm 1 itself collapses — the attack
//!   needs a policy with recency structure, corroborating the paper's
//!   premise that the real MEE cache behaves like an approximate LRU;
//! * under *SRRIP*, whose scan-resistant insertion leaves new fills one
//!   step from eviction, priming is futile and the attack also fails —
//!   suggesting an insertion-policy change as an MEE-cache hardening knob
//!   (complementing the §5.5 discussion).

use std::fmt;

use mee_machine::{MachineConfig, PolicyKind};
use mee_types::ModelError;

use crate::channel::{random_bits, ChannelConfig, EvictionStrategy, Session};
use crate::report;
use crate::setup::AttackSetup;

/// One ablation cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// The MEE-cache replacement policy.
    pub policy: PolicyKind,
    /// The trojan's sweep strategy.
    pub strategy: EvictionStrategy,
    /// Whether the sweep's start element rotates between `1`s.
    pub rotate: bool,
    /// Measured bit error rate; `None` when the channel could not even be
    /// established (Algorithm 1 needs replacement behaviour with *some*
    /// recency structure — under pure random eviction it collapses).
    pub error_rate: Option<f64>,
}

/// Ablation output.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// All policy × strategy cells.
    pub points: Vec<AblationPoint>,
    /// Bits per cell.
    pub bits: usize,
}

impl AblationResult {
    /// Error rate of one cell (`None` if missing or not established).
    pub fn rate(
        &self,
        policy: PolicyKind,
        strategy: EvictionStrategy,
        rotate: bool,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.policy == policy && p.strategy == strategy && p.rotate == rotate)
            .and_then(|p| p.error_rate)
    }
}

/// Runs the ablation grid with `bits` random bits per cell.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_ablation(seed: u64, bits: usize) -> Result<AblationResult, ModelError> {
    let policies = [
        PolicyKind::TreePlru,
        PolicyKind::TrueLru,
        PolicyKind::Srrip,
        PolicyKind::Random { seed: seed ^ 0xabcd },
    ];
    let strategies = [EvictionStrategy::TwoPhase, EvictionStrategy::ForwardOnly];
    let mut points = Vec::new();
    for (i, &policy) in policies.iter().enumerate() {
        for (j, &strategy) in strategies.iter().enumerate() {
            for (k, &rotate) in [true, false].iter().enumerate() {
                let cfg = MachineConfig {
                    mee_policy: policy,
                    ..MachineConfig::default()
                };
                let mut setup = AttackSetup::with_config(
                    cfg,
                    seed.wrapping_add((i * 100 + j * 10 + k) as u64),
                )?;
                let chan_cfg = ChannelConfig {
                    strategy,
                    rotate_sweep: rotate,
                    ..ChannelConfig::default()
                };
                let error_rate = match Session::establish(&mut setup, &chan_cfg) {
                    Ok(session) => {
                        let payload = random_bits(bits, seed.wrapping_add(99 + i as u64));
                        Some(session.transmit(&mut setup, &payload)?.error_rate())
                    }
                    // Establishment itself can fail: Algorithm 1 has nothing
                    // to grip when the replacement policy carries no recency.
                    Err(ModelError::InvalidConfig { .. }) => None,
                    Err(other) => return Err(other),
                };
                points.push(AblationPoint {
                    policy,
                    strategy,
                    rotate,
                    error_rate,
                });
            }
        }
    }
    Ok(AblationResult { points, bits })
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — eviction strategy × MEE replacement policy \
             ({} bits per cell, error rate shown)",
            self.bits
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:?}", p.policy),
                    format!("{:?}", p.strategy),
                    if p.rotate { "rotating" } else { "fixed" }.into(),
                    p.error_rate
                        .map(report::pct)
                        .unwrap_or_else(|| "channel not established".into()),
                ]
            })
            .collect();
        f.write_str(&report::table(
            &["policy", "strategy", "sweep order", "error rate"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recency_policies_work_and_random_replacement_breaks_the_attack() {
        let r = run_ablation(108, 256).unwrap();
        // Every recency-based cell communicates at the paper's operating
        // point.
        for policy in [PolicyKind::TreePlru, PolicyKind::TrueLru] {
            for strategy in [EvictionStrategy::TwoPhase, EvictionStrategy::ForwardOnly] {
                for rotate in [true, false] {
                    let rate = r
                        .rate(policy, strategy, rotate)
                        .expect("recency policy must establish");
                    assert!(
                        rate < 0.10,
                        "{policy:?}/{strategy:?}/rotate={rotate}: error {rate}"
                    );
                }
            }
        }
        // The production configuration (two-phase + rotation) is solid.
        let prod = r
            .rate(PolicyKind::TreePlru, EvictionStrategy::TwoPhase, true)
            .unwrap();
        assert!(prod < 0.05, "production config error {prod}");
        // Under random replacement Algorithm 1 has nothing to grip: the
        // whole attack fails at establishment.
        let random = PolicyKind::Random { seed: 108 ^ 0xabcd };
        for strategy in [EvictionStrategy::TwoPhase, EvictionStrategy::ForwardOnly] {
            assert!(
                r.rate(random, strategy, true).is_none(),
                "random replacement unexpectedly supported the channel"
            );
        }
        // SRRIP's scan-resistant insertion (fills enter at a distant
        // re-reference prediction) makes a freshly primed versions line the
        // first victim of any conflicting fill: Algorithm 1's index/peel
        // logic degenerates and the attack fails at establishment — an
        // incidental mitigation insight.
        for strategy in [EvictionStrategy::TwoPhase, EvictionStrategy::ForwardOnly] {
            assert!(
                r.rate(PolicyKind::Srrip, strategy, true).is_none(),
                "SRRIP unexpectedly supported the channel"
            );
        }
    }
}

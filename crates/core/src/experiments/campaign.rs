//! Crash-safe campaign drivers: the experiment sweeps of [`super::sweep`]
//! scaled up through [`mee_campaign`].
//!
//! A sweep returns every per-session point in memory; a *campaign* streams
//! sessions into constant-memory aggregates, checkpoints completed shards,
//! and survives kills, per-shard panics, and hangs. Each driver here fixes
//! the series schema and the body-version tag (bump the tag whenever the
//! session computation changes — it invalidates stale checkpoints instead
//! of silently mixing incompatible runs), then delegates session execution
//! to the same experiment code the plain sweeps use: session `i` of root
//! seed `r` is exactly the standalone experiment at seed `stream_seed(r,
//! i)`, so every campaign number is replayable one session at a time.

use mee_campaign::{Campaign, CampaignError, CampaignOutcome, CampaignPlan};
use mee_types::Cycles;

use crate::channel::{random_bits, ChannelConfig, Session};
use crate::setup::AttackSetup;

use super::fig5::run_fig5;
use super::fig6::run_fig6_with;

/// Series schema of a channel campaign, in order.
pub const CHANNEL_SERIES: [&str; 5] =
    ["ber", "kbps", "elapsed_cycles", "probe_p50_cycles", "probe_p95_cycles"];

/// Series schema of a Fig. 5 campaign, in order.
pub const FIG5_SERIES: [&str; 3] = ["lat_mean_cycles", "lat_p95_cycles", "samples"];

/// Series schema of a Fig. 6 campaign, in order.
pub const FIG6_SERIES: [&str; 3] = ["prime_probe_ber", "this_work_ber", "this_work_kbps"];

fn series_vec(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| (*s).to_owned()).collect()
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

fn sorted_raw(times: &[Cycles]) -> Vec<u64> {
    let mut xs: Vec<u64> = times.iter().map(|t| t.raw()).collect();
    xs.sort_unstable();
    xs
}

/// Runs a channel campaign: one end-to-end session (establish + transmit
/// of `bits` seed-derived random bits) per campaign session, aggregated
/// into the [`CHANNEL_SERIES`] schema.
///
/// # Errors
///
/// [`CampaignError`] for orchestration faults (corrupt checkpoint,
/// non-empty dir, injected abort…). Per-session model errors do **not**
/// fail the campaign — their shard retries and then quarantines, and the
/// outcome reports exactly which sessions are missing.
pub fn run_channel_campaign(
    plan: CampaignPlan,
    cfg: &ChannelConfig,
    bits: usize,
) -> Result<CampaignOutcome, CampaignError> {
    let campaign = Campaign::new(plan, series_vec(&CHANNEL_SERIES), "channel/v1")?;
    campaign.run(|spec, _ctx| {
        let mut setup = AttackSetup::new(spec.seed).map_err(|e| e.to_string())?;
        let session = Session::establish(&mut setup, cfg).map_err(|e| e.to_string())?;
        let payload = random_bits(bits, spec.seed);
        let out = session.transmit(&mut setup, &payload).map_err(|e| e.to_string())?;
        let probes = sorted_raw(&out.probe_times);
        Ok(vec![
            out.errors.count() as f64 / bits as f64,
            out.kbps,
            out.elapsed.raw() as f64,
            percentile(&probes, 50.0),
            percentile(&probes, 95.0),
        ])
    })
}

/// Runs a Fig. 5 latency-census campaign (`samples` addresses per stride,
/// `passes` timed passes per session) under the [`FIG5_SERIES`] schema.
///
/// # Errors
///
/// As [`run_channel_campaign`].
pub fn run_fig5_campaign(
    plan: CampaignPlan,
    samples: usize,
    passes: usize,
) -> Result<CampaignOutcome, CampaignError> {
    let campaign = Campaign::new(plan, series_vec(&FIG5_SERIES), "fig5/v1")?;
    campaign.run(|spec, _ctx| {
        let result = run_fig5(spec.seed, samples, passes).map_err(|e| e.to_string())?;
        let census = result.pooled();
        let lats = sorted_raw(
            &census.samples.iter().map(|s| s.latency).collect::<Vec<_>>(),
        );
        if lats.is_empty() {
            return Err("fig5 census produced no samples".into());
        }
        let mean = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
        Ok(vec![mean, percentile(&lats, 95.0), lats.len() as f64])
    })
}

/// Runs a Fig. 6 contrast campaign (both panels, `bits` alternating bits
/// each) under the [`FIG6_SERIES`] schema.
///
/// # Errors
///
/// As [`run_channel_campaign`].
pub fn run_fig6_campaign(
    plan: CampaignPlan,
    bits: usize,
    cfg: &ChannelConfig,
) -> Result<CampaignOutcome, CampaignError> {
    let campaign = Campaign::new(plan, series_vec(&FIG6_SERIES), "fig6/v1")?;
    campaign.run(|spec, _ctx| {
        let r = run_fig6_with(spec.seed, bits, cfg).map_err(|e| e.to_string())?;
        Ok(vec![
            r.prime_probe.errors.count() as f64 / bits as f64,
            r.this_work.errors.count() as f64 / bits as f64,
            r.this_work.kbps,
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_campaign_matches_the_plain_sweep_session_for_session() {
        // The campaign and the sweep must agree number for number: the
        // campaign is new orchestration around the *same* session bodies.
        let cfg = ChannelConfig::sweep_setup();
        let bits = 8;
        let sweep = super::super::sweep::run_channel_sweep(
            &super::super::sweep::SweepPlan::new(2019, 3).threads(1),
            &cfg,
            bits,
        )
        .unwrap();
        let outcome = run_channel_campaign(
            CampaignPlan::new("test/channel", 2019, 3, 2).threads(2),
            &cfg,
            bits,
        )
        .unwrap();
        assert!(outcome.is_complete());
        let agg = outcome.aggregate.series("ber").unwrap();
        let sweep_mean_ber =
            sweep.iter().map(|p| p.error_rate()).sum::<f64>() / sweep.len() as f64;
        assert!(
            (agg.stats.mean - sweep_mean_ber).abs() < 1e-12,
            "campaign ber {} vs sweep ber {}",
            agg.stats.mean,
            sweep_mean_ber
        );
        let kbps = outcome.aggregate.series("kbps").unwrap();
        let sweep_mean_kbps = sweep.iter().map(|p| p.kbps).sum::<f64>() / sweep.len() as f64;
        assert!((kbps.stats.mean - sweep_mean_kbps).abs() < 1e-9);
    }

    #[test]
    fn fig6_campaign_reports_the_paper_contrast() {
        let cfg = ChannelConfig::sweep_setup();
        let outcome = run_fig6_campaign(
            CampaignPlan::new("test/fig6", 7, 2, 2).threads(2),
            8,
            &cfg,
        )
        .unwrap();
        assert!(outcome.is_complete());
        let pp = outcome.aggregate.series("prime_probe_ber").unwrap().stats.mean;
        let tw = outcome.aggregate.series("this_work_ber").unwrap().stats.mean;
        // The qualitative Fig. 6 claim: the paper's channel is cleaner than
        // the Prime+Probe baseline.
        assert!(tw <= pp, "this-work BER {tw} should not exceed Prime+Probe BER {pp}");
    }
}

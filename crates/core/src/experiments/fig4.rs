//! Figure 4: eviction probability vs candidate-set size, and the capacity
//! estimate.

use std::fmt;

use mee_types::ModelError;

use crate::recon::capacity::{run_capacity_experiment, CapacityResult};
use crate::report;
use crate::setup::AttackSetup;

/// The paper's x-axis.
pub const PAPER_SIZES: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Figure-4 output.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// The sweep.
    pub capacity: CapacityResult,
}

/// Runs the Figure-4 experiment: `trials` eviction tests per candidate-set
/// size (the paper uses 100).
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_fig4(seed: u64, trials: usize) -> Result<Fig4Result, ModelError> {
    let mut setup = AttackSetup::new(seed)?;
    let capacity = run_capacity_experiment(&mut setup, &PAPER_SIZES, trials, 0)?;
    Ok(Fig4Result { capacity })
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4 — eviction probability vs candidate address set size \
             ({} trials per point)",
            self.capacity.trials
        )?;
        let rows: Vec<Vec<String>> = self
            .capacity
            .points
            .iter()
            .map(|(k, p)| vec![k.to_string(), format!("{p:.2}")])
            .collect();
        f.write_str(&report::table(&["candidates", "eviction probability"], &rows))?;
        let entries: Vec<(String, f64)> = self
            .capacity
            .points
            .iter()
            .map(|(k, p)| (format!("k={k:<3}"), *p))
            .collect();
        f.write_str(&report::bar_chart(&entries, 40))?;
        match self.capacity.estimated_capacity_bytes {
            Some(bytes) => writeln!(
                f,
                "estimated MEE cache capacity: {} KiB (paper: 64 KiB)",
                bytes / 1024
            ),
            None => writeln!(f, "eviction probability never saturated — capacity unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_reproduces_shape_and_capacity() {
        let r = run_fig4(101, 25).unwrap();
        let first = r.capacity.points.first().unwrap().1;
        let last = r.capacity.points.last().unwrap().1;
        assert!(first < 0.3, "p(2) = {first}");
        assert!(last > 0.85, "p(64) = {last}");
        if let Some(bytes) = r.capacity.estimated_capacity_bytes {
            assert_eq!(bytes, 64 * 1024);
        }
        let text = r.to_string();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("64"));
    }
}

//! Figure 5: histogram of protected-region access latency by MEE hit level.

use std::fmt;

use mee_engine::HitLevel;
use mee_types::ModelError;

use crate::recon::latency::LatencyCensus;
use crate::report;
use crate::setup::AttackSetup;

/// The paper's strides: 64 B, 512 B, 4 KiB, 32 KiB, 256 KiB.
pub const PAPER_STRIDES: [usize; 5] = [64, 512, 4096, 32 << 10, 256 << 10];

/// Figure-5 output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig5Result {
    /// One census per stride.
    pub censuses: Vec<LatencyCensus>,
}

impl Fig5Result {
    /// Pools every sample across strides.
    pub fn pooled(&self) -> LatencyCensus {
        LatencyCensus {
            stride: 0,
            samples: self
                .censuses
                .iter()
                .flat_map(|c| c.samples.iter().copied())
                .collect(),
        }
    }
}

/// Runs the Figure-5 census.
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_fig5(seed: u64, samples: usize, passes: usize) -> Result<Fig5Result, ModelError> {
    let mut setup = AttackSetup::new(seed)?;
    let mut censuses = Vec::new();
    for &stride in &PAPER_STRIDES {
        // Page-and-above strides need a working set larger than the MEE
        // cache, or version lines simply stay resident between passes and
        // the deep-walk levels never appear.
        let n = if stride >= 4096 { samples * 6 } else { samples };
        censuses.push(crate::recon::latency::census_for_stride(
            &mut setup, stride, n, passes,
        )?);
    }
    Ok(Fig5Result { censuses })
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5 — protected data region main-memory access latency by MEE hit level"
        )?;
        let pooled = self.pooled();
        let mut rows = Vec::new();
        for level in HitLevel::ALL {
            let count = pooled.level_histogram()[level.ladder_index()];
            let mean = pooled
                .mean_at(level)
                .map(|c| c.raw().to_string())
                .unwrap_or_else(|| "-".into());
            rows.push(vec![level.label().to_string(), count.to_string(), mean]);
        }
        f.write_str(&report::table(&["hit level", "samples", "mean cycles"], &rows))?;

        writeln!(f, "\nlatency histogram (all strides pooled, 40-cycle bins):")?;
        let samples: Vec<u64> = pooled.samples.iter().map(|s| s.latency.raw()).collect();
        f.write_str(&report::latency_histogram(&samples, 40, 30))?;

        writeln!(f, "\nper-stride dominant level:")?;
        let rows: Vec<Vec<String>> = self
            .censuses
            .iter()
            .map(|c| {
                vec![
                    format!("{} B", c.stride),
                    c.dominant_level()
                        .map(|l| l.label().to_string())
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        f.write_str(&report::table(&["stride", "dominant hit level"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_ladder_holds() {
        let r = run_fig5(102, 48, 2).unwrap();
        let pooled = r.pooled();
        // Versions-hit mean ≈ 480 and strictly below any deeper level mean.
        let versions = pooled.mean_at(HitLevel::Versions).unwrap();
        assert!((420..=560).contains(&versions.raw()), "versions = {versions}");
        for level in [HitLevel::L0, HitLevel::L1, HitLevel::L2, HitLevel::Root] {
            if let Some(m) = pooled.mean_at(level) {
                assert!(m > versions, "{level} mean {m} not above versions");
            }
        }
        let text = r.to_string();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("versions hit"));
    }
}

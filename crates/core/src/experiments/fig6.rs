//! Figure 6: MEE-cache covert channel with (a) Prime+Probe — which fails —
//! and (b) this work's single-way channel, both sending `0101…`.

use std::fmt;

use mee_types::{Cycles, ModelError};

use crate::channel::prime_probe::{PrimeProbeOutcome, PrimeProbeSession};
use crate::channel::{alternating_bits, ChannelConfig, Session, TransmitOutcome};
use crate::report;
use crate::setup::AttackSetup;

/// Figure-6 output.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// (a): the Prime+Probe baseline.
    pub prime_probe: PrimeProbeOutcome,
    /// (b): this work.
    pub this_work: TransmitOutcome,
}

/// Runs both panels with a `0101…` sequence of `bits` bits, using the
/// paper's default channel parameters.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_fig6(seed: u64, bits: usize) -> Result<Fig6Result, ModelError> {
    run_fig6_with(seed, bits, &ChannelConfig::default())
}

/// Like [`run_fig6`] with explicit channel parameters — seed sweeps use
/// [`ChannelConfig::sweep_setup`] so that establishment cost does not
/// dominate a 16-session pooled run.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_fig6_with(seed: u64, bits: usize, cfg: &ChannelConfig) -> Result<Fig6Result, ModelError> {
    let payload = alternating_bits(bits);

    let mut setup_a = AttackSetup::new(seed)?;
    let pp = PrimeProbeSession::establish(&mut setup_a, cfg)?;
    let prime_probe = pp.transmit(&mut setup_a, &payload)?;

    let mut setup_b = AttackSetup::new(seed.wrapping_add(1))?;
    let session = Session::establish(&mut setup_b, cfg)?;
    let this_work = session.transmit(&mut setup_b, &payload)?;

    Ok(Fig6Result {
        prime_probe,
        this_work,
    })
}

fn series(f: &mut fmt::Formatter<'_>, sent: &[bool], times: &[Cycles]) -> fmt::Result {
    let rows: Vec<Vec<String>> = sent
        .iter()
        .enumerate()
        .map(|(i, &bit)| {
            vec![
                (i + 1).to_string(),
                if bit { "1" } else { "0" }.to_string(),
                times
                    .get(i + 1)
                    .map(|t| t.raw().to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    f.write_str(&report::table(&["bit #", "sent", "probe time (cycles)"], &rows))
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6(a) — Prime+Probe over the MEE cache (trojan sends 0101…)"
        )?;
        series(f, &self.prime_probe.sent, &self.prime_probe.probe_times)?;
        writeln!(
            f,
            "decoded error rate: {}  (probe sweeps exceed 3500 cycles; the \
             ~300-cycle signal drowns)",
            report::pct(self.prime_probe.errors.rate())
        )?;
        writeln!(f)?;
        writeln!(f, "Figure 6(b) — this work (single-way probe)")?;
        series(f, &self.this_work.sent, &self.this_work.probe_times)?;
        writeln!(
            f,
            "decoded error rate: {}  (~480 cycles ⇒ '0', ~750 cycles ⇒ '1')",
            report::pct(self.this_work.errors.rate())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_contrast_holds() {
        let r = run_fig6(103, 24).unwrap();
        // (a) probes are ~8x more expensive than (b) probes.
        let pp_mean: u64 = r
            .prime_probe
            .probe_times
            .iter()
            .map(|t| t.raw())
            .sum::<u64>()
            / r.prime_probe.probe_times.len() as u64;
        let ours_mean: u64 = r
            .this_work
            .probe_times
            .iter()
            .map(|t| t.raw())
            .sum::<u64>()
            / r.this_work.probe_times.len() as u64;
        assert!(pp_mean > 3_500, "P+P probe mean {pp_mean}");
        assert!(ours_mean < 1_000, "our probe mean {ours_mean}");
        // (b) communicates; (a) does so much worse.
        assert!(r.this_work.errors.rate() < 0.1);
        assert!(r.prime_probe.errors.rate() > r.this_work.errors.rate());
        let text = r.to_string();
        assert!(text.contains("Figure 6(a)"));
        assert!(text.contains("Figure 6(b)"));
    }
}

//! Figure 7: bit rate vs error rate as the timing window varies.

use std::fmt;

use mee_types::{Cycles, ModelError};

use crate::channel::{random_bits, ChannelConfig, Session};
use crate::report;
use crate::setup::AttackSetup;

/// The paper's window sweep.
pub const PAPER_WINDOWS: [u64; 7] = [5_000, 7_500, 10_000, 15_000, 20_000, 25_000, 30_000];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Window size in cycles.
    pub window: u64,
    /// Raw channel rate in KBps (clock / window / 8).
    pub kbps: f64,
    /// Measured bit error rate.
    pub error_rate: f64,
}

/// Figure-7 output.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// One point per window size.
    pub points: Vec<WindowPoint>,
    /// Bits transmitted per point.
    pub bits: usize,
}

impl Fig7Result {
    /// The operating point with the lowest error rate (the paper: 15000
    /// cycles at 1.7%).
    pub fn best(&self) -> Option<WindowPoint> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.error_rate.total_cmp(&b.error_rate))
    }
}

/// Runs the sweep: a fresh machine and session per window size (the paper
/// re-ran its channel per configuration), transmitting `bits` random bits.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_fig7(seed: u64, bits: usize, windows: &[u64]) -> Result<Fig7Result, ModelError> {
    let mut points = Vec::with_capacity(windows.len());
    for (i, &window) in windows.iter().enumerate() {
        let mut setup = AttackSetup::new(seed.wrapping_add(i as u64))?;
        let cfg = ChannelConfig {
            window: Cycles::new(window),
            ..ChannelConfig::default()
        };
        let session = Session::establish(&mut setup, &cfg)?;
        let payload = random_bits(bits, seed.wrapping_add(1000 + i as u64));
        let out = session.transmit(&mut setup, &payload)?;
        points.push(WindowPoint {
            window,
            kbps: setup
                .machine
                .config()
                .timing
                .window_to_kbps(Cycles::new(window)),
            error_rate: out.error_rate(),
        });
    }
    Ok(Fig7Result { points, bits })
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — bit rate vs error rate over timing window size \
             ({} random bits per point)",
            self.bits
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.window.to_string(),
                    format!("{:.1}", p.kbps),
                    report::pct(p.error_rate),
                ]
            })
            .collect();
        f.write_str(&report::table(
            &["window (cycles)", "bit rate (KBps)", "error rate"],
            &rows,
        ))?;
        if let Some(best) = self.best() {
            writeln!(
                f,
                "best operating point: {} cycles → {:.1} KBps at {} error \
                 (paper: 15000 cycles → 35 KBps at 1.7%)",
                best.window,
                best.kbps,
                report::pct(best.error_rate)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_tradeoff_shape() {
        // Scaled down: fewer windows/bits to keep the test quick.
        let r = run_fig7(104, 256, &[7_500, 15_000, 30_000]).unwrap();
        let at = |w: u64| r.points.iter().find(|p| p.window == w).copied().unwrap();
        // Bit rate decreases with window size.
        assert!(at(7_500).kbps > at(15_000).kbps);
        assert!(at(15_000).kbps > at(30_000).kbps);
        // The error cliff below the ~9000-cycle cost of sending a '1'.
        assert!(
            at(7_500).error_rate > 0.15,
            "7500-cycle window should break: {}",
            at(7_500).error_rate
        );
        assert!(
            at(15_000).error_rate < 0.08,
            "15000-cycle window should work: {}",
            at(15_000).error_rate
        );
        // 15000 beats 30000 on error (or ties) — the paper's sweet spot.
        assert!(at(15_000).error_rate <= at(30_000).error_rate + 0.02);
        // Headline bit rate at 15000 cycles ≈ 35 KBps.
        assert!((34.0..=36.0).contains(&at(15_000).kbps));
    }
}

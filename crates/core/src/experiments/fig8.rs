//! Figure 8: channel robustness under four noise environments, sending the
//! 128-bit `100100…` sequence.

use std::fmt;

use mee_machine::{ActorRef, CoreId};
use mee_types::ModelError;

use crate::channel::{paper_100_pattern, ChannelConfig, Session, TransmitOutcome};
use crate::noise::{MeeNoiseActor, MemStressActor};
use crate::report;
use crate::setup::AttackSetup;

/// The four panels of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseEnvironment {
    /// (a) no noise.
    None,
    /// (b) main-memory / LLC stress that never touches the MEE.
    MemStress,
    /// (c) another tenant loading integrity-tree data at 512 B stride.
    MeeStride512,
    /// (d) the same at 4 KiB stride.
    MeeStride4k,
}

impl NoiseEnvironment {
    /// All four panels in paper order.
    pub const ALL: [NoiseEnvironment; 4] = [
        NoiseEnvironment::None,
        NoiseEnvironment::MemStress,
        NoiseEnvironment::MeeStride512,
        NoiseEnvironment::MeeStride4k,
    ];

    /// Panel label.
    pub fn label(self) -> &'static str {
        match self {
            NoiseEnvironment::None => "(a) no noise",
            NoiseEnvironment::MemStress => "(b) main memory / cache stress",
            NoiseEnvironment::MeeStride512 => "(c) MEE noise, 512 B stride",
            NoiseEnvironment::MeeStride4k => "(d) MEE noise, 4 KiB stride",
        }
    }
}

/// Figure-8 output: one transmission per environment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// `(environment, outcome)` in paper order.
    pub runs: Vec<(NoiseEnvironment, TransmitOutcome)>,
    /// Bits per run.
    pub bits: usize,
}

/// Runs one environment.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_environment(
    seed: u64,
    env: NoiseEnvironment,
    bits: usize,
) -> Result<TransmitOutcome, ModelError> {
    let mut setup = AttackSetup::new(seed)?;
    let cfg = ChannelConfig::default();
    let session = Session::establish(&mut setup, &cfg)?;
    let payload = paper_100_pattern(bits);
    let noise_core = CoreId::new(2);
    match env {
        NoiseEnvironment::None => session.transmit(&mut setup, &payload),
        NoiseEnvironment::MemStress => {
            let (proc, mut actor) = MemStressActor::install_on(&mut setup, 512)?;
            let mut noise: Vec<ActorRef<'_>> = vec![(noise_core, proc, &mut actor)];
            session.transmit_with_noise(&mut setup, &payload, &mut noise)
        }
        NoiseEnvironment::MeeStride512 => {
            let (proc, mut actor) = MeeNoiseActor::install_on(&mut setup, 512, 128)?;
            let mut noise: Vec<ActorRef<'_>> = vec![(noise_core, proc, &mut actor)];
            session.transmit_with_noise(&mut setup, &payload, &mut noise)
        }
        NoiseEnvironment::MeeStride4k => {
            let (proc, mut actor) = MeeNoiseActor::install_on(&mut setup, 4096, 256)?;
            let mut noise: Vec<ActorRef<'_>> = vec![(noise_core, proc, &mut actor)];
            session.transmit_with_noise(&mut setup, &payload, &mut noise)
        }
    }
}

/// Runs all four environments (fresh machine per panel, same seed base).
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_fig8(seed: u64, bits: usize) -> Result<Fig8Result, ModelError> {
    let mut runs = Vec::with_capacity(4);
    for env in NoiseEnvironment::ALL {
        runs.push((env, run_environment(seed, env, bits)?));
    }
    Ok(Fig8Result { runs, bits })
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8 — {}-bit '100100…' sequence under noise (window 15000 cycles)",
            self.bits
        )?;
        let rows: Vec<Vec<String>> = self
            .runs
            .iter()
            .map(|(env, out)| {
                vec![
                    env.label().to_string(),
                    out.errors.count().to_string(),
                    report::pct(out.error_rate()),
                    format!("{:?}", out.errors.positions.iter().take(8).collect::<Vec<_>>()),
                ]
            })
            .collect();
        f.write_str(&report::table(
            &["environment", "error bits", "error rate", "first error positions"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_noise_ordering() {
        let r = run_fig8(105, 128).unwrap();
        let rate = |env: NoiseEnvironment| {
            r.runs
                .iter()
                .find(|(e, _)| *e == env)
                .map(|(_, o)| o.error_rate())
                .unwrap()
        };
        // (a): a handful of errors at most (paper: 1/128).
        assert!(rate(NoiseEnvironment::None) < 0.06, "quiet: {}", rate(NoiseEnvironment::None));
        // (b): memory stress has minimal impact — the MEE cache is not
        // accessed.
        assert!(
            rate(NoiseEnvironment::MemStress) < rate(NoiseEnvironment::MeeStride4k) + 0.05,
            "mem stress should not be the worst environment"
        );
        // (c)/(d): MEE pressure hurts (paper: 4–5 errors in 128 bits).
        let worst = rate(NoiseEnvironment::MeeStride512).max(rate(NoiseEnvironment::MeeStride4k));
        assert!(worst >= rate(NoiseEnvironment::None), "MEE noise had no effect at all");
        assert!(worst < 0.35, "MEE noise destroyed the channel: {worst}");
        let text = r.to_string();
        assert!(text.contains("(a) no noise"));
        assert!(text.contains("(d) MEE noise"));
    }
}

//! The headline numbers (§1, §5.4): ~35 KBps at ~1.7% error with a
//! 15000-cycle window and no error handling — plus the coded extension.

use std::fmt;

use mee_types::ModelError;

use crate::channel::coding::{deframe, frame};
use crate::channel::{random_bits, BitErrors, ChannelConfig, Session};
use crate::report;
use crate::setup::AttackSetup;

/// Headline output.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineResult {
    /// Raw channel rate in KBps.
    pub kbps: f64,
    /// Raw bit error rate (no error handling, as in the paper).
    pub raw_error_rate: f64,
    /// Residual error rate after the Hamming(7,4) + preamble extension
    /// (counts the coding overhead against the rate below).
    pub coded_error_rate: f64,
    /// Effective data rate of the coded channel in KBps.
    pub coded_kbps: f64,
    /// Bits transmitted for the raw measurement.
    pub bits: usize,
}

/// Runs the headline measurement with `bits` random payload bits.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_headline(seed: u64, bits: usize) -> Result<HeadlineResult, ModelError> {
    let mut setup = AttackSetup::new(seed)?;
    let cfg = ChannelConfig::default();
    let session = Session::establish(&mut setup, &cfg)?;

    // Raw channel.
    let payload = random_bits(bits, seed);
    let raw = session.transmit(&mut setup, &payload)?;

    // Coded channel: frame, transmit, deframe.
    let data = random_bits(bits / 2, seed.wrapping_add(1));
    let framed = frame(&data);
    let coded_out = session.transmit(&mut setup, &framed)?;
    let decoded = deframe(&coded_out.received, data.len(), 4).unwrap_or_default();
    let coded_errors = BitErrors::compare(&data, &decoded);
    let coded_kbps = raw.kbps * (data.len() as f64 / framed.len() as f64);

    Ok(HeadlineResult {
        kbps: raw.kbps,
        raw_error_rate: raw.error_rate(),
        coded_error_rate: coded_errors.rate(),
        coded_kbps,
        bits,
    })
}

impl fmt::Display for HeadlineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline — 15000-cycle window, {} random bits", self.bits)?;
        let rows = vec![
            vec![
                "raw (paper)".to_string(),
                format!("{:.1}", self.kbps),
                report::pct(self.raw_error_rate),
            ],
            vec![
                "Hamming(7,4) coded (extension)".to_string(),
                format!("{:.1}", self.coded_kbps),
                report::pct(self.coded_error_rate),
            ],
        ];
        f.write_str(&report::table(&["channel", "rate (KBps)", "error rate"], &rows))?;
        writeln!(f, "paper reports: 35 KBps at 1.7% error, no error handling")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper_band() {
        let r = run_headline(106, 1024).unwrap();
        assert!((30.0..=40.0).contains(&r.kbps), "kbps = {}", r.kbps);
        assert!(r.raw_error_rate < 0.08, "raw error = {}", r.raw_error_rate);
        // Coding reduces the error rate (or keeps a clean run clean).
        assert!(
            r.coded_error_rate <= r.raw_error_rate + 0.005,
            "coded {} vs raw {}",
            r.coded_error_rate,
            r.raw_error_rate
        );
        assert!(r.coded_kbps < r.kbps);
        assert!(r.to_string().contains("Headline"));
    }
}

//! §5.5: why naive way-partitioning does not stop the channel.
//!
//! The paper observes that LLC-style way partitioning "cannot be directly
//! applied to \[the\] MEE cache … since the integrity tree is shared". This
//! experiment partitions the MEE cache's fill ways globally (the only
//! partitioning possible when one tree serves every tenant) and shows the
//! channel keeps working: both parties simply contend inside the smaller
//! effective associativity.

use std::fmt;

use mee_types::ModelError;

use crate::channel::{random_bits, ChannelConfig, Session};
use crate::report;
use crate::setup::AttackSetup;

/// One partitioning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPoint {
    /// Ways available for fills (8 = unpartitioned).
    pub fill_ways: usize,
    /// Whether the channel could even be established.
    pub established: bool,
    /// Bit error rate of a transmission (when established).
    pub error_rate: Option<f64>,
}

/// Mitigation output.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationResult {
    /// One point per fill-way budget.
    pub points: Vec<MitigationPoint>,
    /// Bits per transmission.
    pub bits: usize,
}

/// Runs the partitioning sweep over `fill_ways` budgets.
///
/// # Errors
///
/// Propagates machine errors (establishment failures are recorded, not
/// raised).
pub fn run_mitigation(
    seed: u64,
    bits: usize,
    way_budgets: &[usize],
) -> Result<MitigationResult, ModelError> {
    let mut points = Vec::new();
    for (i, &ways) in way_budgets.iter().enumerate() {
        let mut setup = AttackSetup::new(seed.wrapping_add(i as u64))?;
        let total_ways = setup.machine.mee().cache().config().ways;
        let mask: Vec<bool> = (0..total_ways).map(|w| w < ways).collect();
        setup.machine.mee_mut().set_fill_mask(mask);

        let cfg = ChannelConfig::default();
        match Session::establish(&mut setup, &cfg) {
            Ok(session) => {
                let payload = random_bits(bits, seed.wrapping_add(55 + i as u64));
                let out = session.transmit(&mut setup, &payload)?;
                points.push(MitigationPoint {
                    fill_ways: ways,
                    established: true,
                    error_rate: Some(out.error_rate()),
                });
            }
            Err(_) => points.push(MitigationPoint {
                fill_ways: ways,
                established: false,
                error_rate: None,
            }),
        }
    }
    Ok(MitigationResult { points, bits })
}

impl fmt::Display for MitigationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Mitigation sketch (§5.5) — global way-partitioning of MEE fills \
             ({} bits per point)",
            self.bits
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.fill_ways.to_string(),
                    if p.established { "yes" } else { "no" }.to_string(),
                    p.error_rate
                        .map(report::pct)
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        f.write_str(&report::table(
            &["fill ways", "channel established", "error rate"],
            &rows,
        ))?;
        writeln!(
            f,
            "shared-tree partitioning leaves the channel alive — matching the \
             paper's argument that LLC-style defenses do not transfer directly"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_does_not_kill_the_channel() {
        let r = run_mitigation(109, 128, &[8, 4]).unwrap();
        // Unpartitioned and half-partitioned: both work. Algorithm 1
        // discovers whatever the *effective* associativity is, so the
        // channel re-establishes itself inside the partition.
        for p in &r.points {
            assert!(p.established, "channel died at {} ways", p.fill_ways);
            let rate = p.error_rate.unwrap();
            // Partitioning degrades the channel (versions lines now compete
            // with tree lines inside fewer ways) but must not kill it.
            let ceiling = if p.fill_ways >= 8 { 0.10 } else { 0.35 };
            assert!(rate < ceiling, "error {rate} at {} ways", p.fill_ways);
        }
        assert!(r.to_string().contains("Mitigation"));
    }
}

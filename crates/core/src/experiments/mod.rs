//! Experiment drivers: one per figure of the paper's evaluation, plus the
//! headline numbers and the extensions promised in DESIGN.md.
//!
//! Every driver is a pure function of a seed (and scale parameters), builds
//! its own machine(s), and returns a result struct whose `Display`
//! implementation prints the same rows/series the paper reports. The
//! `mee-bench` crate exposes each as a binary.

pub mod ablation;
pub mod campaign;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod mitigation;
pub mod resilience;
pub mod stealth;
pub mod sweep;
pub mod timers;
pub mod wide;

pub use ablation::{run_ablation, AblationResult};
pub use campaign::{
    run_channel_campaign, run_fig5_campaign, run_fig6_campaign, CHANNEL_SERIES, FIG5_SERIES,
    FIG6_SERIES,
};
pub use fig4::{run_fig4, Fig4Result};
pub use fig5::{run_fig5, Fig5Result};
pub use fig6::{run_fig6, run_fig6_with, Fig6Result};
pub use fig7::{run_fig7, Fig7Result};
pub use fig8::{run_fig8, Fig8Result, NoiseEnvironment};
pub use headline::{run_headline, HeadlineResult};
pub use mitigation::{run_mitigation, MitigationResult};
pub use resilience::{
    run_resilience, run_resilience_sweep, session_fault_targets, ResiliencePoint, ResilienceResult,
};
pub use stealth::{run_stealth, StealthResult};
pub use sweep::{
    run_channel_sweep, run_fig5_sweep, run_fig6_sweep, ChannelSweepPoint, Fig5Sweep, Fig6Sweep,
    PooledContrast, SweepPlan,
};
pub use timers::{run_timers, TimersResult};
pub use wide::{run_wide, WideResult};

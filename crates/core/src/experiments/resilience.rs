//! Resilience under structured adversity (robustness extension).
//!
//! The paper evaluates the channel on a quiet testbed; a real deployment
//! faces preemption storms, migrations, EPC paging, timer drift, and
//! co-runners thrashing the very MEE-cache sets the channel modulates.
//! This experiment sweeps those faults across three intensities
//! ([`FaultIntensity`]) and measures, per intensity:
//!
//! * **raw** — the plain channel with no recovery at the paper's 15 000
//!   cycle window: its BER shows how hard the faults actually hit;
//! * **robust** — one self-healing transmission
//!   ([`Session::transmit_robust`]): preamble lock, desync detection,
//!   adaptive thresholding, Hamming correction — but no retransmission;
//! * **recovering** — the full ARQ stack
//!   ([`ReliableLink`]) with exponential backoff and the graceful
//!   window-degradation ladder, reporting residual errors and the
//!   honestly-measured goodput.
//!
//! Every phase replays a seed-derived [`FaultPlan`], so a table cell can
//! be reproduced in isolation from the seed alone.

use std::fmt;

use mee_faults::{FaultInjector, FaultIntensity, FaultPlan, FaultTargets};
use mee_rng::stream_seed;
use mee_sweep::SessionSpec;
use mee_types::{Cycles, ModelError, VirtAddr, PAGE_SIZE};

use crate::channel::{random_bits, ChannelConfig, ReliableLink, Session};
use crate::setup::AttackSetup;

use super::sweep::SweepPlan;

/// One intensity's row of the resilience table.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// The fault intensity this row was measured under.
    pub intensity: FaultIntensity,
    /// Fault events that actually fired across all three phases.
    pub faults_applied: usize,
    /// Bits sent in the raw and robust phases.
    pub raw_bits: usize,
    /// Bit errors of the plain, non-recovering channel.
    pub raw_errors: usize,
    /// Bit errors after session-level self-healing (no ARQ).
    pub robust_errors: usize,
    /// Whether the robust phase's desync sanity check tripped.
    pub desynced: bool,
    /// Whether the robust phase re-locked the preamble off offset 0.
    pub resynced: bool,
    /// Online threshold recalibrations during the robust decode.
    pub recalibrations: usize,
    /// Payload bits pushed through the recovering ARQ stack.
    pub payload_bits: usize,
    /// Errors remaining in the ARQ-delivered payload.
    pub residual_errors: usize,
    /// ARQ retransmissions.
    pub retransmissions: usize,
    /// Times the ARQ widened its timing window.
    pub window_escalations: usize,
    /// The timing window the ARQ finished on.
    pub final_window: Cycles,
    /// Honest goodput of the ARQ transfer, from measured elapsed time.
    pub goodput_kbps: f64,
}

impl ResiliencePoint {
    /// Raw (non-recovering) bit error rate.
    #[must_use]
    pub fn raw_ber(&self) -> f64 {
        self.raw_errors as f64 / self.raw_bits as f64
    }

    /// Bit error rate after session-level self-healing.
    #[must_use]
    pub fn robust_ber(&self) -> f64 {
        self.robust_errors as f64 / self.raw_bits as f64
    }

    /// Residual error rate of the recovering stack.
    #[must_use]
    pub fn residual_rate(&self) -> f64 {
        self.residual_errors as f64 / self.payload_bits as f64
    }
}

/// The resilience table of one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceResult {
    /// The machine/establishment seed.
    pub seed: u64,
    /// Payload length per phase, in bits.
    pub bits: usize,
    /// One row per [`FaultIntensity`], in [`FaultIntensity::ALL`] order.
    pub points: Vec<ResiliencePoint>,
}

impl ResilienceResult {
    /// The row for one intensity.
    #[must_use]
    pub fn point(&self, intensity: FaultIntensity) -> &ResiliencePoint {
        self.points
            .iter()
            .find(|p| p.intensity == intensity)
            .expect("every intensity has a row")
    }
}

impl fmt::Display for ResilienceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Resilience under fault injection (seed {}, {} bits/phase)",
            self.seed, self.bits
        )?;
        writeln!(
            f,
            "{:<7} {:>6} {:>8} {:>10} {:>7} {:>6} {:>5} {:>6} {:>9} {:>8}",
            "plan", "faults", "raw_ber", "robust_ber", "resid", "retx", "escal", "recal", "final_w", "KB/s"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<7} {:>6} {:>8.4} {:>10.4} {:>7.4} {:>6} {:>5} {:>6} {:>9} {:>8.2}",
                p.intensity.label(),
                p.faults_applied,
                p.raw_ber(),
                p.robust_ber(),
                p.residual_rate(),
                p.retransmissions,
                p.window_escalations,
                p.recalibrations,
                p.final_window.raw(),
                p.goodput_kbps,
            )?;
        }
        Ok(())
    }
}

/// The fault targets of an established session: its two cores, the page
/// hosting the receiver's monitor address, and the MEE-cache set the
/// channel modulates.
///
/// # Errors
///
/// Propagates translation errors for the monitor address.
pub fn session_fault_targets(
    setup: &AttackSetup,
    session: &Session,
) -> Result<FaultTargets, ModelError> {
    let geo = *setup.machine.mee().geometry();
    let sets = setup.machine.mee().cache().config().sets;
    let pa = setup
        .machine
        .translate(session.receiver.proc, session.monitor)?;
    let set = geo
        .version_line(geo.walk_path(pa.line()).version)
        .set_index(sets);
    let page = VirtAddr::new(session.monitor.raw() & !(PAGE_SIZE as u64 - 1));
    Ok(
        FaultTargets::cores(session.receiver.core, session.sender.core)
            .with_victim_page(session.receiver.proc, page)
            .with_mee_set(set),
    )
}

/// Phase tags used to split per-phase fault streams from one seed.
const PHASE_RAW: u64 = 0;
const PHASE_ROBUST: u64 = 1;
const PHASE_ARQ: u64 = 2;

fn machine_now(setup: &AttackSetup, session: &Session) -> Cycles {
    setup
        .machine
        .core_now(session.sender.core)
        .max(setup.machine.core_now(session.receiver.core))
}

/// Runs the resilience experiment for one seed: for each intensity,
/// measures the raw channel, one robust transmission, and a full ARQ
/// transfer, each under an independent seed-derived fault plan.
///
/// # Errors
///
/// Propagates machine, establishment, and ARQ-exhaustion errors.
pub fn run_resilience(seed: u64, bits: usize) -> Result<ResilienceResult, ModelError> {
    let cfg = ChannelConfig::sweep_setup();
    let payload = random_bits(bits, stream_seed(seed, 0xBE));
    // Root of every fault stream of this result; phase plans split off it.
    let fault_root = stream_seed(seed, 0xFA);
    let mut points = Vec::with_capacity(FaultIntensity::ALL.len());
    for (idx, intensity) in FaultIntensity::ALL.into_iter().enumerate() {
        let phase_seed = |phase: u64| stream_seed(fault_root, idx as u64 * 3 + phase);

        // Phases raw + robust share one machine and one establishment.
        let mut setup = AttackSetup::new(seed)?;
        let session = Session::establish(&mut setup, &cfg)?;
        let targets = session_fault_targets(&setup, &session)?;
        let span = Cycles::new(bits as u64 * cfg.window.raw() * 4 + 2_000_000);

        let raw_plan = FaultPlan::generate(
            intensity,
            &targets,
            machine_now(&setup, &session),
            span,
            phase_seed(PHASE_RAW),
        );
        let mut raw_inj = FaultInjector::new(raw_plan);
        let raw = session.transmit_hooked(&mut setup, &payload, &mut [], &mut raw_inj)?;

        let robust_plan = FaultPlan::generate(
            intensity,
            &targets,
            machine_now(&setup, &session),
            span,
            phase_seed(PHASE_ROBUST),
        );
        let mut robust_inj = FaultInjector::new(robust_plan);
        let robust = session.transmit_robust(&mut setup, &payload, &mut robust_inj)?;

        // The recovering phase gets a fresh machine (same seed): the ARQ
        // establishes its own forward + reverse sessions.
        let mut arq_setup = AttackSetup::new(seed)?;
        let mut link = ReliableLink::establish(&mut arq_setup, &cfg)?;
        let arq_targets = session_fault_targets(&arq_setup, link.forward())?;
        // The storm covers the *nominal* transfer span — like a real
        // interrupt storm it is dense but finite, and the recovering
        // stack's job (backoff, window widening, retransmission) is to
        // outlast it: retries pushed past the storm's tail complete in
        // quiet air. Density (events per cycle), not the span, sets the
        // intensity.
        let arq_span = span;
        let arq_plan = FaultPlan::generate(
            intensity,
            &arq_targets,
            machine_now(&arq_setup, link.forward()),
            arq_span,
            phase_seed(PHASE_ARQ),
        );
        let mut arq_inj = FaultInjector::new(arq_plan);
        let (delivered, stats) = link.send_with(&mut arq_setup, &payload, &mut arq_inj)?;
        let residual_errors = delivered
            .iter()
            .zip(payload.iter())
            .filter(|(a, b)| a != b)
            .count()
            + payload.len().abs_diff(delivered.len());
        let goodput_kbps = link.goodput_kbps(&arq_setup, payload.len(), &stats);

        points.push(ResiliencePoint {
            intensity,
            faults_applied: raw_inj.applied().len()
                + robust_inj.applied().len()
                + arq_inj.applied().len(),
            raw_bits: bits,
            raw_errors: raw.errors.count(),
            robust_errors: robust.errors.count(),
            desynced: robust.desynced,
            resynced: robust.resync_offset.is_some(),
            recalibrations: robust.recalibrations,
            payload_bits: bits,
            residual_errors,
            retransmissions: stats.retransmissions,
            window_escalations: stats.window_escalations,
            final_window: stats.final_window,
            goodput_kbps,
        });
    }
    Ok(ResilienceResult { seed, bits, points })
}

/// Runs [`run_resilience`] once per session of `plan`, in parallel through
/// the sweep runner; results are in session order and bit-identical to
/// serial execution for any thread count.
///
/// # Errors
///
/// Returns the lowest-indexed failing session's error, deterministically.
pub fn run_resilience_sweep(
    plan: &SweepPlan,
    bits: usize,
) -> Result<Vec<(SessionSpec, ResilienceResult)>, ModelError> {
    plan.runner()
        .try_seed_sweep(plan.root_seed, plan.sessions, |spec| {
            run_resilience(spec.seed, bits).map(|r| (spec, r))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_intensity_applies_no_faults_and_stays_clean() {
        let r = run_resilience(901, 32).unwrap();
        let off = r.point(FaultIntensity::Off);
        assert_eq!(off.faults_applied, 0);
        assert_eq!(off.residual_errors, 0, "quiet ARQ must deliver exactly");
        assert_eq!(off.window_escalations, 0);
        assert!(off.goodput_kbps > 0.0);
        assert_eq!(r.points.len(), FaultIntensity::ALL.len());
    }

    #[test]
    fn resilience_is_replayable() {
        let a = run_resilience(902, 24).unwrap();
        let b = run_resilience(902, 24).unwrap();
        assert_eq!(a, b, "same seed must reproduce the table bit-for-bit");
    }
}

//! Stealth comparison (extension): the MEE channel vs classic LLC
//! Prime+Probe, as seen by LLC-state defenses.
//!
//! The paper's abstract calls the MEE cache "a shared resource but only
//! utilized when accessing the integrity tree data", providing "opportunity
//! for a stealthy covert channel attack", and §5.5 notes that the deployed
//! detector/defense literature watches the LLC. This experiment quantifies
//! that: during a transmission we count *conflict evictions the channel
//! inflicts on the LLC* — what occupancy-based defenses (e.g. CATalyst-
//! style partition monitors) and eviction-pattern detectors observe. The
//! MEE channel's working set is a handful of lines that it flushes itself
//! (`clflush` leaves no conflict evictions); the LLC channel lives by
//! hammering one LLC set with conflict misses.

use std::fmt;

use mee_types::{Cycles, ModelError};

use crate::channel::llc::LlcSession;
use crate::channel::{random_bits, ChannelConfig, Session};
use crate::report;
use crate::setup::AttackSetup;

/// Footprint of one channel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFootprint {
    /// Raw rate in KBps.
    pub kbps: f64,
    /// Bit error rate.
    pub error_rate: f64,
    /// LLC conflict evictions caused per transmitted bit.
    pub llc_evictions_per_bit: f64,
    /// MEE-cache walks per transmitted bit.
    pub mee_walks_per_bit: f64,
}

/// Stealth-comparison output.
#[derive(Debug, Clone, PartialEq)]
pub struct StealthResult {
    /// The paper's MEE-cache channel.
    pub mee_channel: ChannelFootprint,
    /// The classic LLC Prime+Probe channel.
    pub llc_channel: ChannelFootprint,
    /// Bits per run.
    pub bits: usize,
}

/// Runs both channels for `bits` random bits and compares footprints.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_stealth(seed: u64, bits: usize) -> Result<StealthResult, ModelError> {
    // MEE channel.
    let mee_channel = {
        let mut setup = AttackSetup::new(seed)?;
        let session = Session::establish(&mut setup, &ChannelConfig::default())?;
        let llc_evictions_before = setup.machine.llc().stats().evictions;
        let mee_reads_before = setup.machine.mee().stats().reads;
        let payload = random_bits(bits, seed);
        let out = session.transmit(&mut setup, &payload)?;
        ChannelFootprint {
            kbps: out.kbps,
            error_rate: out.error_rate(),
            llc_evictions_per_bit: (setup.machine.llc().stats().evictions
                - llc_evictions_before) as f64
                / bits as f64,
            mee_walks_per_bit: (setup.machine.mee().stats().reads - mee_reads_before) as f64
                / bits as f64,
        }
    };

    // LLC channel.
    let llc_channel = {
        let mut setup = AttackSetup::new(seed.wrapping_add(1))?;
        let session = LlcSession::establish(&mut setup, Cycles::new(4_000))?;
        let llc_evictions_before = setup.machine.llc().stats().evictions;
        let mee_reads_before = setup.machine.mee().stats().reads;
        let payload = random_bits(bits, seed.wrapping_add(1));
        let out = session.transmit(&mut setup, &payload)?;
        ChannelFootprint {
            kbps: out.kbps,
            error_rate: out.errors.rate(),
            llc_evictions_per_bit: (setup.machine.llc().stats().evictions
                - llc_evictions_before) as f64
                / bits as f64,
            mee_walks_per_bit: (setup.machine.mee().stats().reads - mee_reads_before) as f64
                / bits as f64,
        }
    };

    Ok(StealthResult {
        mee_channel,
        llc_channel,
        bits,
    })
}

impl fmt::Display for StealthResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Stealth comparison (extension) — footprint per transmitted bit \
             ({} random bits per channel)",
            self.bits
        )?;
        let row = |name: &str, c: &ChannelFootprint| {
            vec![
                name.to_string(),
                format!("{:.1}", c.kbps),
                report::pct(c.error_rate),
                format!("{:.2}", c.llc_evictions_per_bit),
                format!("{:.2}", c.mee_walks_per_bit),
            ]
        };
        let rows = vec![
            row("MEE cache (this work)", &self.mee_channel),
            row("LLC Prime+Probe [7]", &self.llc_channel),
        ];
        f.write_str(&report::table(
            &[
                "channel",
                "rate (KBps)",
                "error",
                "LLC evictions/bit",
                "MEE walks/bit",
            ],
            &rows,
        ))?;
        writeln!(
            f,
            "the LLC channel is faster but lives on LLC conflict evictions, \
             visible to occupancy/eviction monitors; the MEE channel flushes \
             its own lines and leaves the LLC essentially undisturbed"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mee_channel_is_quieter_in_the_llc() {
        let r = run_stealth(401, 192).unwrap();
        // Both channels actually work.
        assert!(r.mee_channel.error_rate < 0.08);
        assert!(r.llc_channel.error_rate < 0.08);
        // LLC channel is faster (the paper concedes this)…
        assert!(r.llc_channel.kbps > r.mee_channel.kbps);
        // …but inflicts far more LLC conflict evictions.
        assert!(
            r.llc_channel.llc_evictions_per_bit
                > r.mee_channel.llc_evictions_per_bit * 3.0,
            "LLC {} vs MEE {} evictions/bit",
            r.llc_channel.llc_evictions_per_bit,
            r.mee_channel.llc_evictions_per_bit
        );
        // And the MEE channel is the only one touching the MEE.
        assert!(r.mee_channel.mee_walks_per_bit > 1.0);
        assert!(r.llc_channel.mee_walks_per_bit < 0.01);
    }
}

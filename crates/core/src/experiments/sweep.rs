//! Seed sweeps over the experiment drivers, run in parallel through
//! [`mee_sweep`].
//!
//! The paper's quantitative claims are statistical: the Fig. 5 latency
//! histogram, the Fig. 6 BER contrast, and the §5.4 headline numbers all
//! pool many independent sessions. A [`SweepPlan`] names such a pool — a
//! root seed, a session count, and an optional thread override — and the
//! drivers here run one full experiment per session with the per-session
//! seed split from the root via [`mee_sweep::session_seeds`]. Results come
//! back in session order and are **bit-identical to serial execution** for
//! any thread count, so a sweep can be reproduced one session at a time:
//! session `i` of root seed `r` is exactly `run_*` with seed
//! `stream_seed(r, i)`.

use mee_sweep::{SessionSpec, Sweep};
use mee_types::{Cycles, ModelError};

use crate::channel::{random_bits, ChannelConfig, Session};
use crate::recon::latency::LatencyCensus;
use crate::setup::AttackSetup;

use super::fig5::{run_fig5, Fig5Result};
use super::fig6::{run_fig6_with, Fig6Result};

/// A pooled multi-session run: root seed, session count, thread override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPlan {
    /// The root seed every per-session seed is split from.
    pub root_seed: u64,
    /// Number of independent sessions to pool.
    pub sessions: usize,
    /// Worker-thread override; `None` uses `MEE_SWEEP_THREADS` or the
    /// host's available parallelism.
    pub threads: Option<usize>,
}

impl SweepPlan {
    /// A plan with the environment-default thread count.
    pub fn new(root_seed: u64, sessions: usize) -> Self {
        SweepPlan {
            root_seed,
            sessions,
            threads: None,
        }
    }

    /// Pins the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The runner this plan executes on.
    pub fn runner(&self) -> Sweep {
        Sweep::new().threads(self.threads)
    }

    /// The per-session specs (index + split seed) of this plan.
    pub fn session_specs(&self) -> Vec<SessionSpec> {
        mee_sweep::session_seeds(self.root_seed, self.sessions)
    }
}

/// One session of a channel seed sweep, reduced to the numbers the
/// statistical tests and the bench trajectory pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSweepPoint {
    /// Position in the sweep.
    pub index: usize,
    /// The session's split seed (replay: `AttackSetup::new(seed)`).
    pub seed: u64,
    /// Payload length in bits.
    pub bits: usize,
    /// Positional bit errors.
    pub bit_errors: usize,
    /// Achieved rate in KB/s of simulated time.
    pub kbps: f64,
    /// Simulated duration of the transmission.
    pub elapsed: Cycles,
    /// Median spy probe time.
    pub probe_p50: Cycles,
    /// 95th-percentile spy probe time.
    pub probe_p95: Cycles,
}

impl ChannelSweepPoint {
    /// Bit error rate in `[0, 1]`.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        self.bit_errors as f64 / self.bits as f64
    }
}

fn percentile_cycles(sorted: &[u64], p: f64) -> Cycles {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    Cycles::new(sorted[rank.min(sorted.len() - 1)])
}

/// Runs `plan.sessions` independent end-to-end channel sessions (noisy
/// machine, establish + transmit of `bits` seed-derived random bits each)
/// and returns one [`ChannelSweepPoint`] per session, in session order.
///
/// # Errors
///
/// Returns the lowest-indexed failing session's error, deterministically.
pub fn run_channel_sweep(
    plan: &SweepPlan,
    cfg: &ChannelConfig,
    bits: usize,
) -> Result<Vec<ChannelSweepPoint>, ModelError> {
    plan.runner()
        .try_seed_sweep(plan.root_seed, plan.sessions, |spec| {
            let mut setup = AttackSetup::new(spec.seed)?;
            let session = Session::establish(&mut setup, cfg)?;
            let payload = random_bits(bits, spec.seed);
            let out = session.transmit(&mut setup, &payload)?;
            let mut probes: Vec<u64> = out.probe_times.iter().map(|t| t.raw()).collect();
            probes.sort_unstable();
            Ok(ChannelSweepPoint {
                index: spec.index,
                seed: spec.seed,
                bits,
                bit_errors: out.errors.count(),
                kbps: out.kbps,
                elapsed: out.elapsed,
                probe_p50: percentile_cycles(&probes, 50.0),
                probe_p95: percentile_cycles(&probes, 95.0),
            })
        })
}

/// Pooled error counts of a Fig. 6 sweep: both panels over every session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PooledContrast {
    /// Total bits sent per panel across the sweep.
    pub total_bits: usize,
    /// Pooled bit errors of the Prime+Probe baseline (panel a).
    pub prime_probe_errors: usize,
    /// Pooled bit errors of the paper's channel (panel b).
    pub this_work_errors: usize,
}

impl PooledContrast {
    /// Pooled BER of the Prime+Probe baseline.
    pub fn prime_probe_rate(&self) -> f64 {
        self.prime_probe_errors as f64 / self.total_bits as f64
    }

    /// Pooled BER of the paper's channel.
    pub fn this_work_rate(&self) -> f64 {
        self.this_work_errors as f64 / self.total_bits as f64
    }
}

/// A Fig. 6 seed sweep: one full two-panel run per session.
#[derive(Debug, Clone)]
pub struct Fig6Sweep {
    /// Per-session spec and result, in session order.
    pub sessions: Vec<(SessionSpec, Fig6Result)>,
}

impl Fig6Sweep {
    /// Pools both panels' error counts across every session.
    pub fn pooled(&self) -> PooledContrast {
        let mut pooled = PooledContrast {
            total_bits: 0,
            prime_probe_errors: 0,
            this_work_errors: 0,
        };
        for (_, r) in &self.sessions {
            pooled.total_bits += r.this_work.sent.len();
            pooled.prime_probe_errors += r.prime_probe.errors.count();
            pooled.this_work_errors += r.this_work.errors.count();
        }
        pooled
    }
}

/// Runs [`run_fig6_with`] once per session of `plan`, sending `bits`
/// alternating bits per panel.
///
/// # Errors
///
/// Returns the lowest-indexed failing session's error, deterministically.
pub fn run_fig6_sweep(
    plan: &SweepPlan,
    bits: usize,
    cfg: &ChannelConfig,
) -> Result<Fig6Sweep, ModelError> {
    let sessions = plan
        .runner()
        .try_seed_sweep(plan.root_seed, plan.sessions, |spec| {
            run_fig6_with(spec.seed, bits, cfg).map(|r| (spec, r))
        })?;
    Ok(Fig6Sweep { sessions })
}

/// A Fig. 5 seed sweep: one full latency census per session.
#[derive(Debug, Clone)]
pub struct Fig5Sweep {
    /// Per-session spec and result, in session order.
    pub sessions: Vec<(SessionSpec, Fig5Result)>,
}

impl Fig5Sweep {
    /// Pools every sample of every session into one census.
    pub fn pooled(&self) -> LatencyCensus {
        LatencyCensus {
            stride: 0,
            samples: self
                .sessions
                .iter()
                .flat_map(|(_, r)| r.pooled().samples)
                .collect(),
        }
    }
}

/// Runs [`run_fig5`] once per session of `plan` (`samples` addresses per
/// stride, `passes` timed passes).
///
/// # Errors
///
/// Returns the lowest-indexed failing session's error, deterministically.
pub fn run_fig5_sweep(
    plan: &SweepPlan,
    samples: usize,
    passes: usize,
) -> Result<Fig5Sweep, ModelError> {
    let sessions = plan
        .runner()
        .try_seed_sweep(plan.root_seed, plan.sessions, |spec| {
            run_fig5(spec.seed, samples, passes).map(|r| (spec, r))
        })?;
    Ok(Fig5Sweep { sessions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_specs_follow_the_stream_seed_convention() {
        let plan = SweepPlan::new(2019, 4).threads(2);
        let specs = plan.session_specs();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[1].seed, mee_rng::stream_seed(2019, 1));
        assert_eq!(plan.runner().thread_count(), 2);
    }

    #[test]
    fn channel_sweep_is_thread_count_invariant() {
        // The determinism guarantee, end to end on real sessions: the same
        // plan on 1 and 3 threads produces bit-identical points.
        let cfg = ChannelConfig::sweep_setup();
        let serial = run_channel_sweep(&SweepPlan::new(7, 3).threads(1), &cfg, 8).unwrap();
        let parallel = run_channel_sweep(&SweepPlan::new(7, 3).threads(3), &cfg, 8).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|p| p.bits == 8));
        // Replayability: a session rerun standalone from its JSON-visible
        // seed matches the sweep's own result.
        let spec = SweepPlan::new(7, 3).session_specs()[2];
        let alone = run_channel_sweep(
            &SweepPlan {
                root_seed: 7,
                sessions: 3,
                threads: Some(1),
            },
            &cfg,
            8,
        )
        .unwrap()[2]
            .clone();
        assert_eq!(alone.seed, spec.seed);
    }

    #[test]
    fn pooled_contrast_arithmetic() {
        let pooled = PooledContrast {
            total_bits: 200,
            prime_probe_errors: 50,
            this_work_errors: 4,
        };
        assert!((pooled.prime_probe_rate() - 0.25).abs() < 1e-12);
        assert!((pooled.this_work_rate() - 0.02).abs() < 1e-12);
    }
}

//! §3 challenge 4: the cost of each timestamp primitive available to
//! enclave code (Figure 2's three approaches).

use std::fmt;

use mee_mem::AddressSpaceKind;
use mee_types::{Cycles, ModelError};

use crate::report;
use crate::setup::AttackSetup;

/// Cost census of the timing primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimersResult {
    /// `rdtsc` cost outside an enclave (Figure 2(a)).
    pub rdtsc_cost: Cycles,
    /// Whether `rdtsc` faults inside an enclave (it must).
    pub rdtsc_faults_in_enclave: bool,
    /// Sampled OCALL round-trip costs (Figure 2(b); paper: 8000–15000).
    pub ocall_costs: Vec<Cycles>,
    /// Hyperthread timer-mailbox read cost (Figure 2(c); paper: ~50).
    pub timer_read_cost: Cycles,
    /// The mailbox refresh quantum (timestamp granularity).
    pub timer_quantum: u64,
}

/// Measures every primitive on a fresh machine.
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_timers(seed: u64, ocall_samples: usize) -> Result<TimersResult, ModelError> {
    let mut setup = AttackSetup::quiet(seed)?;
    let quantum = setup.machine.config().timer_quantum;

    // rdtsc outside an enclave.
    let regular = setup.machine.create_process(AddressSpaceKind::Regular);
    let core = setup.spy.core;
    let before = setup.machine.core_now(core);
    setup.machine.rdtsc(core, regular)?;
    let rdtsc_cost = setup.machine.core_now(core) - before;

    // rdtsc inside the enclave faults.
    let rdtsc_faults_in_enclave = setup.machine.rdtsc(core, setup.spy.proc).is_err();

    // OCALL round trips.
    let mut ocall_costs = Vec::with_capacity(ocall_samples);
    for _ in 0..ocall_samples {
        let before = setup.machine.core_now(core);
        setup.machine.ocall_rdtsc(core);
        ocall_costs.push(setup.machine.core_now(core) - before);
    }

    // Timer-mailbox read.
    let before = setup.machine.core_now(core);
    setup.machine.timer_read(core);
    let timer_read_cost = setup.machine.core_now(core) - before;

    Ok(TimersResult {
        rdtsc_cost,
        rdtsc_faults_in_enclave,
        ocall_costs,
        timer_read_cost,
        timer_quantum: quantum,
    })
}

impl TimersResult {
    /// Min/max OCALL cost observed.
    pub fn ocall_range(&self) -> (Cycles, Cycles) {
        let min = self.ocall_costs.iter().min().copied().unwrap_or(Cycles::ZERO);
        let max = self.ocall_costs.iter().max().copied().unwrap_or(Cycles::ZERO);
        (min, max)
    }
}

impl fmt::Display for TimersResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Timing primitives available to enclave code (paper §3)")?;
        let (omin, omax) = self.ocall_range();
        let rows = vec![
            vec![
                "rdtsc (non-enclave, fig 2a)".to_string(),
                self.rdtsc_cost.raw().to_string(),
                "faults inside SGX1 enclaves".to_string(),
            ],
            vec![
                "OCALL rdtsc (fig 2b)".to_string(),
                format!("{}–{}", omin.raw(), omax.raw()),
                "paper: 8000–15000 cycles".to_string(),
            ],
            vec![
                "timer-thread mailbox (fig 2c)".to_string(),
                self.timer_read_cost.raw().to_string(),
                format!("paper: ~50 cycles, ±{}-cycle granularity", self.timer_quantum),
            ],
        ];
        f.write_str(&report::table(&["primitive", "cost (cycles)", "notes"], &rows))?;
        writeln!(
            f,
            "rdtsc in enclave: {}",
            if self.rdtsc_faults_in_enclave {
                "#UD fault (as on SGX1)"
            } else {
                "UNEXPECTEDLY PERMITTED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_costs_match_paper() {
        let r = run_timers(107, 16).unwrap();
        assert!(r.rdtsc_faults_in_enclave);
        assert_eq!(r.timer_read_cost, Cycles::new(50));
        let (min, max) = r.ocall_range();
        assert!(min.raw() >= 8_000, "ocall min {min}");
        assert!(max.raw() <= 15_000, "ocall max {max}");
        // OCALL is two orders of magnitude worse than the mailbox.
        assert!(min.raw() > r.timer_read_cost.raw() * 100);
        assert!(r.to_string().contains("OCALL"));
    }
}

//! Wide-channel throughput sweep (extension): bits per window vs lanes.
//!
//! Sending a `1` costs the trojan ≈ 9000 cycles of sweeping, so the
//! single-lane channel wastes most of a 15000-cycle window on `0`s and all
//! of it on inter-window padding. Running several MEE-cache sets in
//! parallel amortizes the window: throughput climbs toward the
//! 1-bit-per-9500-cycles asymptote (~55 KBps at 4.2 GHz) as lanes are
//! added.

use std::fmt;

use mee_types::ModelError;

use crate::channel::wide::WideSession;
use crate::channel::{random_bits, ChannelConfig};
use crate::report;
use crate::setup::AttackSetup;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidePoint {
    /// Parallel lanes.
    pub lanes: usize,
    /// Window used (grows with lanes).
    pub window: u64,
    /// Effective rate in KBps.
    pub kbps: f64,
    /// Bit error rate.
    pub error_rate: f64,
}

/// Wide-sweep output.
#[derive(Debug, Clone, PartialEq)]
pub struct WideResult {
    /// One point per lane count.
    pub points: Vec<WidePoint>,
    /// Bits per point.
    pub bits: usize,
}

/// Runs the sweep over `lane_counts`, transmitting `bits` random bits per
/// point on a fresh noisy machine.
///
/// # Errors
///
/// Propagates machine and setup errors.
pub fn run_wide(seed: u64, bits: usize, lane_counts: &[usize]) -> Result<WideResult, ModelError> {
    let mut points = Vec::with_capacity(lane_counts.len());
    for (i, &lanes) in lane_counts.iter().enumerate() {
        let mut setup = AttackSetup::new(seed.wrapping_add(i as u64))?;
        let session = WideSession::establish(&mut setup, &ChannelConfig::default(), lanes)?;
        let payload = random_bits(bits, seed.wrapping_add(77 + i as u64));
        let out = session.transmit(&mut setup, &payload)?;
        points.push(WidePoint {
            lanes,
            window: session.window.raw(),
            kbps: out.kbps,
            error_rate: out.errors.rate(),
        });
    }
    Ok(WideResult { points, bits })
}

impl fmt::Display for WideResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Wide channel (extension) — parallel MEE-cache sets \
             ({} random bits per point)",
            self.bits
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.lanes.to_string(),
                    p.window.to_string(),
                    format!("{:.1}", p.kbps),
                    report::pct(p.error_rate),
                ]
            })
            .collect();
        f.write_str(&report::table(
            &["lanes", "window (cycles)", "rate (KBps)", "error rate"],
            &rows,
        ))?;
        writeln!(
            f,
            "throughput approaches the 1-bit-per-~9500-cycle sweep asymptote \
             (~55 KBps) as lanes are added"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_lanes() {
        let r = run_wide(601, 192, &[1, 4]).unwrap();
        let one = r.points[0];
        let four = r.points[1];
        assert!(one.error_rate < 0.08, "1-lane error {}", one.error_rate);
        assert!(four.error_rate < 0.10, "4-lane error {}", four.error_rate);
        assert!(
            four.kbps > one.kbps * 1.2,
            "4 lanes {} KBps vs 1 lane {} KBps",
            four.kbps,
            one.kbps
        );
        assert!(r.to_string().contains("Wide channel"));
    }
}

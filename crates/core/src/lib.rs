#![warn(missing_docs)]
//! The paper's contribution: the MEE-cache covert channel.
//!
//! This crate implements, against the simulated machine of [`mee_machine`]:
//!
//! * **Reverse engineering** (paper §4): the capacity experiment of Figure 4
//!   ([`recon::capacity`]), the eviction-set / associativity discovery of
//!   Algorithm 1 ([`recon::eviction`]), and the latency census of Figure 5
//!   ([`recon::latency`]);
//! * **The covert channel** (paper §5): the Prime+Probe baseline that fails
//!   over the MEE cache ([`channel::prime_probe`], Figure 6a), and the
//!   paper's role-reversed single-way channel of Algorithm 2
//!   ([`channel::TrojanActor`] / [`channel::SpyActor`], Figure 6b), plus framing and
//!   error-correction extensions ([`channel::coding`]);
//! * **Noise programs** standing in for the paper's co-located workloads and
//!   `stress-ng` ([`noise`], Figure 8);
//! * **Experiment drivers** that regenerate every figure
//!   ([`experiments`]).
//!
//! # Quickstart
//!
//! ```
//! use mee_attack::channel::{ChannelConfig, Session};
//! use mee_attack::setup::AttackSetup;
//!
//! # fn main() -> Result<(), mee_types::ModelError> {
//! let mut setup = AttackSetup::quiet(7)?; // deterministic, noise-free
//! let mut session = Session::establish(&mut setup, &ChannelConfig::default())?;
//! let sent = vec![true, false, true, true, false, false, true, false];
//! let outcome = session.transmit(&mut setup, &sent)?;
//! assert_eq!(outcome.received, sent);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod experiments;
pub mod noise;
pub mod recon;
pub mod report;
pub mod setup;
pub mod threshold;

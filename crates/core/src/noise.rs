//! Noise programs standing in for the paper's §5.4 "noisy environments".
//!
//! * [`MeeNoiseActor`] — another tenant on a third physical core constantly
//!   loading fresh integrity-tree data through the MEE cache, at either a
//!   512 B or 4 KiB stride (Figure 8(c)/(d)). Different strides pollute the
//!   MEE cache differently: 512 B walks the versions region sequentially,
//!   4 KiB jumps pages and drags L0/L1 lines in too.
//! * [`MemStressActor`] — the `stress-ng`-like load: hammers ordinary
//!   (non-enclave) memory, thrashing the LLC and DRAM but never touching
//!   the MEE (Figure 8(b) — "minimal impact since the MEE cache is not
//!   accessed").

use mee_machine::{Actor, CoreHandle, Machine, ProcId, StepOutcome};
use mee_mem::AddressSpaceKind;
use mee_types::{ModelError, VirtAddr, PAGE_SIZE};

use crate::setup::AttackSetup;

/// An enclave tenant sweeping its own protected buffer at a fixed stride,
/// keeping the MEE cache under pressure. Runs until the scheduler horizon.
#[derive(Debug)]
pub struct MeeNoiseActor {
    base: VirtAddr,
    stride: usize,
    span: usize,
    cursor: usize,
}

impl MeeNoiseActor {
    /// Creates the noise tenant: maps `pages` enclave pages for `proc` and
    /// sweeps them at `stride` bytes.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors; rejects strides that are not positive
    /// multiples of 64.
    pub fn install(
        machine: &mut Machine,
        stride: usize,
        pages: usize,
        base: VirtAddr,
    ) -> Result<(ProcId, Self), ModelError> {
        if stride == 0 || !stride.is_multiple_of(64) {
            return Err(ModelError::InvalidConfig {
                reason: format!("noise stride {stride} must be a positive multiple of 64"),
            });
        }
        let proc = machine.create_process(AddressSpaceKind::Enclave);
        machine.map_pages(proc, base, pages)?;
        Ok((
            proc,
            MeeNoiseActor {
                base,
                stride,
                span: pages * PAGE_SIZE,
                cursor: 0,
            },
        ))
    }

    /// Convenience for [`AttackSetup`]: installs the noise tenant at a fresh
    /// scratch range.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn install_on(
        setup: &mut AttackSetup,
        stride: usize,
        pages: usize,
    ) -> Result<(ProcId, Self), ModelError> {
        // Scratch from a brand-new process keeps the address spaces apart.
        let base = VirtAddr::new(0x7000_0000);
        Self::install(&mut setup.machine, stride, pages, base)
    }
}

impl Actor for MeeNoiseActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        let va = self.base + self.cursor as u64;
        cpu.read(va)?;
        cpu.clflush(va)?;
        self.cursor = (self.cursor + self.stride) % self.span;
        Ok(StepOutcome::Running)
    }
}

/// A regular (non-enclave) process chasing through a large ordinary buffer,
/// saturating LLC and DRAM bandwidth without involving the MEE.
#[derive(Debug)]
pub struct MemStressActor {
    base: VirtAddr,
    span: usize,
    cursor: usize,
    /// Large odd stride so successive lines map to different sets/banks.
    stride: usize,
}

impl MemStressActor {
    /// Creates the stress process with `pages` of general memory.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn install(
        machine: &mut Machine,
        pages: usize,
        base: VirtAddr,
    ) -> Result<(ProcId, Self), ModelError> {
        let proc = machine.create_process(AddressSpaceKind::Regular);
        machine.map_pages(proc, base, pages)?;
        Ok((
            proc,
            MemStressActor {
                base,
                span: pages * PAGE_SIZE,
                cursor: 0,
                stride: 64 * 97, // co-prime with set counts: scatters widely
            },
        ))
    }

    /// Convenience for [`AttackSetup`].
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn install_on(
        setup: &mut AttackSetup,
        pages: usize,
    ) -> Result<(ProcId, Self), ModelError> {
        Self::install(&mut setup.machine, pages, VirtAddr::new(0x7800_0000))
    }
}

impl Actor for MemStressActor {
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
        let va = self.base + self.cursor as u64;
        cpu.read(va)?;
        cpu.clflush(va)?;
        self.cursor = (self.cursor + self.stride) % self.span;
        Ok(StepOutcome::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_machine::{run_actor_refs, CoreId};
    use mee_types::Cycles;

    #[test]
    fn mee_noise_pressures_the_mee_cache() {
        let mut setup = AttackSetup::quiet(91).unwrap();
        let (proc, mut actor) = MeeNoiseActor::install_on(&mut setup, 512, 64).unwrap();
        let before = setup.machine.mee().stats().reads;
        let mut actors: Vec<mee_machine::ActorRef<'_>> =
            vec![(CoreId::new(2), proc, &mut actor)];
        run_actor_refs(&mut setup.machine, &mut actors, Cycles::new(200_000)).unwrap();
        let after = setup.machine.mee().stats().reads;
        assert!(after > before + 100, "only {} MEE reads", after - before);
    }

    #[test]
    fn mem_stress_never_touches_the_mee() {
        let mut setup = AttackSetup::quiet(92).unwrap();
        let (proc, mut actor) = MemStressActor::install_on(&mut setup, 128).unwrap();
        let before = setup.machine.mee().stats().reads;
        let mut actors: Vec<mee_machine::ActorRef<'_>> =
            vec![(CoreId::new(2), proc, &mut actor)];
        run_actor_refs(&mut setup.machine, &mut actors, Cycles::new(200_000)).unwrap();
        assert_eq!(setup.machine.mee().stats().reads, before);
        // But it does hammer the LLC.
        assert!(setup.machine.llc().stats().misses > 100);
    }

    #[test]
    fn bad_stride_rejected() {
        let mut setup = AttackSetup::quiet(93).unwrap();
        assert!(MeeNoiseActor::install_on(&mut setup, 100, 8).is_err());
        assert!(MeeNoiseActor::install_on(&mut setup, 0, 8).is_err());
    }
}

//! The MEE cache capacity experiment (paper §4.1, Figure 4).

use mee_types::{Cycles, ModelError, LINE_SIZE, LINES_PER_PAGE};

use crate::setup::AttackSetup;
use crate::threshold::LatencyClassifier;

/// Result of the Figure-4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityResult {
    /// `(candidate-set size, eviction probability)` pairs.
    pub points: Vec<(usize, f64)>,
    /// Trials behind each probability.
    pub trials: usize,
    /// Capacity inferred from the saturation point, if one was reached:
    /// `k_sat × 16 lines × 64 B` (the paper's §4.1 arithmetic — each
    /// candidate pins one cache way's worth of one consecutive versions
    /// data region, which spans 16 interleaved lines).
    pub estimated_capacity_bytes: Option<u64>,
}

impl CapacityResult {
    /// The smallest candidate-set size whose eviction probability reached
    /// `level`.
    pub fn saturation_point(&self, level: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|(_, p)| *p >= level)
            .map(|(k, _)| *k)
    }
}

/// Runs one eviction trial with `k` fresh candidate pages: primes every
/// candidate's versions line into the MEE cache, then re-probes all of them
/// and reports whether any probed as a versions miss (i.e. was evicted).
///
/// # Errors
///
/// Propagates machine errors.
pub fn eviction_trial(
    setup: &mut AttackSetup,
    k: usize,
    offset: usize,
    classifier: &LatencyClassifier,
) -> Result<bool, ModelError> {
    let proc = setup.trojan.proc;
    let base = setup.scratch_pages(proc, k)?;
    let candidates: Vec<_> = (0..k)
        .map(|i| base + (i * mee_types::PAGE_SIZE + offset * mee_types::VERSION_BLOCK_SIZE) as u64)
        .collect();

    let mut cpu = setup.trojan_handle();
    // Prime: load every candidate's versions line (and flush the data line
    // so later probes reach the MEE again).
    for &c in &candidates {
        cpu.read(c)?;
        cpu.clflush(c)?;
    }
    cpu.mfence();
    // Probe: any versions miss means something was evicted.
    let mut any_evicted = false;
    for &c in &candidates {
        let lat = cpu.read(c)?;
        cpu.clflush(c)?;
        if classifier.is_versions_miss(lat) {
            any_evicted = true;
        }
    }
    setup.release_scratch(proc, base, k)?;
    Ok(any_evicted)
}

/// Runs the full Figure-4 sweep: for each candidate-set size in `sizes`,
/// `trials` independent trials (fresh, randomly placed pages each time),
/// reporting the eviction probability.
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_capacity_experiment(
    setup: &mut AttackSetup,
    sizes: &[usize],
    trials: usize,
    offset: usize,
) -> Result<CapacityResult, ModelError> {
    let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);
    let mut points = Vec::with_capacity(sizes.len());
    for &k in sizes {
        let mut evictions = 0usize;
        for _ in 0..trials {
            if eviction_trial(setup, k, offset, &classifier)? {
                evictions += 1;
            }
        }
        points.push((k, evictions as f64 / trials as f64));
    }
    let estimated_capacity_bytes = points
        .iter()
        .find(|(_, p)| *p >= 0.99)
        .map(|(k, _)| *k as u64 * 2 * (LINES_PER_PAGE / 8) as u64 * LINE_SIZE as u64);
    Ok(CapacityResult {
        points,
        trials,
        estimated_capacity_bytes,
    })
}

/// Nominal per-candidate footprint used in the capacity arithmetic: the 16
/// interleaved version/PD_Tag lines of one consecutive versions data region.
pub const REGION_LINES: usize = 16;

/// Convenience: the capacity a saturation point `k` implies.
pub fn capacity_from_saturation(k: usize) -> u64 {
    (k * REGION_LINES * LINE_SIZE) as u64
}

/// The probability mass function sanity check used in tests: expected
/// eviction probability if candidates fall uniformly into `classes`
/// alignment classes of `ways` ways each — eviction happens when some class
/// exceeds its ways. Monte-Carlo with a simple LCG (no rand dependency in
/// the hot path).
pub fn theoretical_eviction_probability(k: usize, classes: usize, ways: usize, iters: u64) -> f64 {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut hits = 0u64;
    for _ in 0..iters {
        let mut bins = vec![0usize; classes];
        let mut overflow = false;
        for _ in 0..k {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bin = ((state >> 33) as usize) % classes;
            bins[bin] += 1;
            if bins[bin] > ways {
                overflow = true;
            }
        }
        if overflow {
            hits += 1;
        }
    }
    hits as f64 / iters as f64
}

/// A latency printed in Figure 4 captions; re-exported for the harness.
pub fn classifier_threshold(setup: &AttackSetup) -> Cycles {
    LatencyClassifier::from_timing(&setup.machine.config().timing).threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_arithmetic_matches_paper() {
        // 64 candidates × 16 lines × 64 B = 64 KiB.
        assert_eq!(capacity_from_saturation(64), 64 * 1024);
    }

    #[test]
    fn theoretical_probability_is_monotone() {
        let mut prev = 0.0;
        for k in [2, 4, 8, 16, 32, 64] {
            let p = theoretical_eviction_probability(k, 8, 8, 2000);
            assert!(p >= prev - 0.02, "p({k}) = {p} < p(prev) = {prev}");
            prev = p;
        }
        assert!(theoretical_eviction_probability(2, 8, 8, 2000) < 0.01);
        assert!(theoretical_eviction_probability(64, 8, 8, 2000) > 0.9);
    }

    #[test]
    fn small_candidate_sets_never_evict() {
        let mut setup = AttackSetup::quiet(21).unwrap();
        let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);
        for _ in 0..5 {
            // 2 candidates cannot overflow an 8-way set.
            assert!(!eviction_trial(&mut setup, 2, 0, &classifier).unwrap());
        }
    }

    #[test]
    fn large_candidate_sets_usually_evict() {
        let mut setup = AttackSetup::quiet(22).unwrap();
        let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);
        let mut evictions = 0;
        for _ in 0..10 {
            if eviction_trial(&mut setup, 64, 0, &classifier).unwrap() {
                evictions += 1;
            }
        }
        assert!(evictions >= 9, "only {evictions}/10 trials evicted at k=64");
    }

    #[test]
    fn sweep_shows_figure4_shape() {
        let mut setup = AttackSetup::quiet(23).unwrap();
        let result =
            run_capacity_experiment(&mut setup, &[2, 8, 32, 64], 12, 0).unwrap();
        assert_eq!(result.points.len(), 4);
        let p2 = result.points[0].1;
        let p64 = result.points[3].1;
        assert!(p2 < 0.2, "p(2) = {p2}");
        assert!(p64 > 0.8, "p(64) = {p64}");
        if let Some(k) = result.saturation_point(0.99) {
            assert!(k >= 32);
        }
    }
}

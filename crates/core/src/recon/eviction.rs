//! Algorithm 1: finding the eviction address set (paper §4.2).
//!
//! The algorithm discovers, from timing alone, a set of virtual addresses
//! whose versions lines all land in one MEE-cache set; its size is the
//! associativity. The paper's machine (and our default) yields 8.

use mee_machine::CoreHandle;
use mee_types::{Cycles, ModelError, VirtAddr};

use crate::threshold::LatencyClassifier;

/// Output of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionSetResult {
    /// Addresses whose versions lines conflict in one MEE-cache set.
    pub eviction_set: Vec<VirtAddr>,
    /// The test address the eviction set evicts.
    pub test_address: VirtAddr,
    /// Size of the intermediate index address set.
    pub index_set_size: usize,
}

impl EvictionSetResult {
    /// The measured associativity: the eviction set size.
    pub fn associativity(&self) -> usize {
        self.eviction_set.len()
    }
}

/// The `eviction test` subroutine of Algorithm 1 (lines 1–11): loads the
/// victim's versions line, sweeps `set`, then re-times the victim. Returns
/// the re-access latency; a versions miss means `set` evicted the victim.
///
/// # Errors
///
/// Propagates machine errors.
pub fn eviction_test(
    cpu: &mut CoreHandle<'_>,
    set: &[VirtAddr],
    victim: VirtAddr,
) -> Result<Cycles, ModelError> {
    // access victim; flush victim (load versions data into the MEE cache
    // but flush the data from the LLC).
    cpu.read(victim)?;
    cpu.clflush(victim)?;
    cpu.mfence();
    let _ = cpu.sweep_read_flush(set)?;
    cpu.mfence();
    // measure time to access victim; flush victim.
    let time = cpu.read(victim)?;
    cpu.clflush(victim)?;
    Ok(time)
}

/// Majority-voted eviction test: runs [`eviction_test`] `reps` times and
/// reports whether the victim was evicted in the majority of runs. On a
/// noisy machine single samples misclassify occasionally (§4's experiments
/// were all repeated).
///
/// # Errors
///
/// Propagates machine errors.
pub fn eviction_test_voted(
    cpu: &mut CoreHandle<'_>,
    set: &[VirtAddr],
    victim: VirtAddr,
    classifier: &LatencyClassifier,
    reps: usize,
) -> Result<bool, ModelError> {
    assert!(reps >= 1, "at least one repetition required");
    let mut misses = 0usize;
    for _ in 0..reps {
        let t = eviction_test(cpu, set, victim)?;
        if classifier.is_versions_miss(t) {
            misses += 1;
        }
    }
    Ok(misses * 2 > reps)
}

/// Algorithm 1 proper: finds an eviction address set among `candidates`
/// (4 KiB-stride virtual addresses with a common in-page offset).
///
/// Phase 1 (lines 12–18): grow the *index address set* with every candidate
/// that survives an eviction test against the current index set — once a
/// cache set is full, further same-set candidates are evicted and excluded.
///
/// Phase 2 (lines 19–23): find a *test address* among the excluded
/// candidates that the index set reliably evicts.
///
/// Phase 3 (lines 24–34): for each index-set member, re-run the eviction
/// test with that member excluded; if the test address now survives, the
/// member belongs to the eviction address set.
///
/// # Errors
///
/// * Propagates machine errors.
/// * Returns [`ModelError::InvalidConfig`] if no test address could be
///   found (candidate set too small — the paper requires ≥ 64).
pub fn find_eviction_set(
    cpu: &mut CoreHandle<'_>,
    candidates: &[VirtAddr],
    classifier: &LatencyClassifier,
    reps: usize,
) -> Result<EvictionSetResult, ModelError> {
    // Phase 1: build the index address set.
    let mut index_set: Vec<VirtAddr> = Vec::new();
    let mut excluded: Vec<VirtAddr> = Vec::new();
    for &candidate in candidates {
        if eviction_test_voted(cpu, &index_set, candidate, classifier, reps)? {
            excluded.push(candidate);
        } else {
            index_set.push(candidate);
        }
    }

    // Phase 2: find test addresses the index set evicts. A single test
    // address can be unlucky — its MEE-cache set may also host L0/L1 lines
    // of other index members, whose interference defeats the peeling step —
    // so several are tried (the paper's experiments were likewise repeated
    // until consistent).
    let mut tried_any = false;
    let mut tries = 0usize;
    // Peeling an unlucky test address is expensive; after this many failed
    // peels the replacement policy is simply not giving Algorithm 1 any
    // grip (e.g. scan-resistant insertion), so give up.
    const MAX_PEEL_ATTEMPTS: usize = 40;
    let mut best: Option<(Vec<VirtAddr>, VirtAddr)> = None;
    for &test in &excluded {
        if tries >= MAX_PEEL_ATTEMPTS {
            break;
        }
        warm(cpu, &index_set)?;
        if !eviction_test_voted(cpu, &index_set, test, classifier, reps)? {
            continue;
        }
        tried_any = true;
        tries += 1;

        // Phase 3: peel off index-set members one at a time, then *iterate*
        // the peel on its own output until it reaches a fixpoint. A single
        // pass over the full index set can over-accept badly: every removal
        // perturbs which L0/L1 lines the sweep drags through the test's
        // cache set, and near the eviction boundary that chaos "rescues"
        // unrelated members. Re-peeling over the much smaller set removes
        // that pollution (standard eviction-set minimization).
        let mut current: Vec<VirtAddr> = index_set.clone();
        for _round in 0..6 {
            let mut kept = Vec::new();
            for (i, &target) in current.iter().enumerate() {
                warm(cpu, &current)?;
                let reduced: Vec<VirtAddr> = current
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &a)| a)
                    .collect();
                if !eviction_test_voted(cpu, &reduced, test, classifier, reps)? {
                    kept.push(target);
                }
            }
            if kept.is_empty() || kept.len() == current.len() {
                if !kept.is_empty() {
                    current = kept;
                }
                break;
            }
            current = kept;
        }
        // The minimized set must still evict the test address on its own.
        warm(cpu, &current)?;
        let verified = !current.is_empty()
            && current.len() < index_set.len()
            && eviction_test_voted(cpu, &current, test, classifier, reps)?;
        if verified {
            let better = best
                .as_ref()
                .map(|(b, _)| current.len() < b.len())
                .unwrap_or(true);
            if better {
                best = Some((current, test));
            }
        }
        // A plausible associativity (a small conflicting set) is accepted;
        // otherwise the test address was polluted — try another one.
        if best.as_ref().is_some_and(|(b, _)| (2..=16).contains(&b.len())) {
            break;
        }
    }

    match best {
        Some((eviction_set, test_address)) if !eviction_set.is_empty() => Ok(EvictionSetResult {
            eviction_set,
            test_address,
            index_set_size: index_set.len(),
        }),
        _ if tried_any => Err(ModelError::InvalidConfig {
            reason: "eviction-set peeling failed for every test address; \
                     retry with a different candidate set"
                .into(),
        }),
        _ => Err(ModelError::InvalidConfig {
            reason: format!(
                "no test address found among {} candidates ({} excluded); \
                 use at least 64 candidates",
                candidates.len(),
                excluded.len()
            ),
        }),
    }
}

/// Accesses and flushes every address (lines 20–22 / 26–28 of Algorithm 1).
fn warm(cpu: &mut CoreHandle<'_>, set: &[VirtAddr]) -> Result<(), ModelError> {
    let _ = cpu.sweep_read_flush(set)?;
    cpu.mfence();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::AttackSetup;

    fn classifier(setup: &AttackSetup) -> LatencyClassifier {
        LatencyClassifier::from_timing(&setup.machine.config().timing)
    }

    #[test]
    fn eviction_test_detects_survival_and_eviction() {
        let mut setup = AttackSetup::quiet(31).unwrap();
        let cls = classifier(&setup);
        let victim = setup.trojan.candidate(0, 0);
        // Empty sweep: victim survives.
        let mut cpu = setup.trojan_handle();
        let t = eviction_test(&mut cpu, &[], victim).unwrap();
        assert!(cls.is_versions_hit(t), "victim evicted by empty set: {t}");
    }

    #[test]
    fn algorithm1_recovers_associativity_8() {
        let mut setup = AttackSetup::quiet(32).unwrap();
        let cls = classifier(&setup);
        let candidates = setup.trojan.candidates(160, 0);
        let mut cpu = setup.trojan_handle();
        let result = find_eviction_set(&mut cpu, &candidates, &cls, 1).unwrap();
        assert_eq!(
            result.associativity(),
            8,
            "expected 8 ways, got {} (index set {})",
            result.associativity(),
            result.index_set_size
        );
    }

    #[test]
    fn eviction_set_members_share_the_test_sets_conflict() {
        let mut setup = AttackSetup::quiet(33).unwrap();
        let cls = classifier(&setup);
        let candidates = setup.trojan.candidates(160, 2);
        let result = {
            let mut cpu = setup.trojan_handle();
            // 3 repetitions: even noiseless, tree-PLRU's state-dependence
            // makes single-shot eviction tests occasionally misclassify.
            find_eviction_set(&mut cpu, &candidates, &cls, 3).unwrap()
        };
        // Ground truth: every member's versions line must map to the same
        // MEE-cache set as the test address's.
        let geo = *setup.machine.mee().geometry();
        let sets = setup.machine.mee().cache().config().sets;
        let set_of = |va: VirtAddr| {
            let pa = setup.machine.translate(setup.trojan.proc, va).unwrap();
            let block = geo.walk_path(pa.line()).version;
            geo.version_line(block).set_index(sets)
        };
        let expected = set_of(result.test_address);
        for &member in &result.eviction_set {
            assert_eq!(set_of(member), expected, "member in wrong set");
        }
    }

    #[test]
    fn eviction_set_actually_evicts() {
        let mut setup = AttackSetup::quiet(34).unwrap();
        let cls = classifier(&setup);
        let candidates = setup.trojan.candidates(160, 0);
        let (eviction_set, test) = {
            let mut cpu = setup.trojan_handle();
            let r = find_eviction_set(&mut cpu, &candidates, &cls, 1).unwrap();
            (r.eviction_set, r.test_address)
        };
        let mut cpu = setup.trojan_handle();
        // The full eviction set evicts the test address...
        let t = eviction_test(&mut cpu, &eviction_set, test).unwrap();
        assert!(cls.is_versions_miss(t), "full set failed to evict: {t}");
        // ...but any 7 of them do not (associativity is exactly 8).
        let seven = &eviction_set[..7];
        let t = eviction_test(&mut cpu, seven, test).unwrap();
        assert!(cls.is_versions_hit(t), "7 addresses already evict: {t}");
    }

    #[test]
    fn too_few_candidates_reports_helpful_error() {
        let mut setup = AttackSetup::quiet(35).unwrap();
        let cls = classifier(&setup);
        let candidates = setup.trojan.candidates(8, 0);
        let mut cpu = setup.trojan_handle();
        let err = find_eviction_set(&mut cpu, &candidates, &cls, 1).unwrap_err();
        assert!(err.to_string().contains("64 candidates"));
    }

    #[test]
    fn works_on_noisy_machine_with_voting() {
        let mut setup = AttackSetup::new(36).unwrap();
        let cls = classifier(&setup);
        let candidates = setup.trojan.candidates(160, 1);
        let mut cpu = setup.trojan_handle();
        let result = find_eviction_set(&mut cpu, &candidates, &cls, 3).unwrap();
        // Voting keeps the answer within one of the truth even under noise.
        let a = result.associativity();
        assert!((7..=9).contains(&a), "associativity {a} too far off");
    }
}

//! The protected-access latency census (paper §5.1, Figure 5).

use mee_engine::HitLevel;
use mee_types::{Cycles, ModelError, PAGE_SIZE};

use crate::setup::AttackSetup;

/// One timed protected access with its ground-truth walk outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// Measured access latency.
    pub latency: Cycles,
    /// Where the MEE walk stopped (`None` when the access was served
    /// on-chip, which the census avoids by flushing).
    pub level: Option<HitLevel>,
}

/// All samples collected for one stride.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyCensus {
    /// The stride in bytes.
    pub stride: usize,
    /// Timed samples from the steady-state passes.
    pub samples: Vec<LatencySample>,
}

impl LatencyCensus {
    /// Mean latency of samples that stopped at `level`.
    pub fn mean_at(&self, level: HitLevel) -> Option<Cycles> {
        let xs: Vec<u64> = self
            .samples
            .iter()
            .filter(|s| s.level == Some(level))
            .map(|s| s.latency.raw())
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(Cycles::new(xs.iter().sum::<u64>() / xs.len() as u64))
        }
    }

    /// Number of samples per hit level, indexed by
    /// [`HitLevel::ladder_index`].
    pub fn level_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for s in &self.samples {
            if let Some(level) = s.level {
                h[level.ladder_index()] += 1;
            }
        }
        h
    }

    /// The dominant hit level among the samples, if any sample reached the
    /// MEE.
    pub fn dominant_level(&self) -> Option<HitLevel> {
        let h = self.level_histogram();
        let (idx, &count) = h.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if count == 0 {
            None
        } else {
            Some(HitLevel::ALL[idx])
        }
    }
}

/// Runs the stride census for one stride: maps only the touched pages,
/// performs `passes + 1` sweeps of `samples` accesses (each timed access is
/// followed by a `clflush` so the next pass reaches the MEE again), and
/// keeps the samples of every pass after the cold first one.
///
/// # Errors
///
/// Propagates machine errors; returns [`ModelError::InvalidConfig`] for a
/// stride that is not a positive multiple of 64.
pub fn census_for_stride(
    setup: &mut AttackSetup,
    stride: usize,
    samples: usize,
    passes: usize,
) -> Result<LatencyCensus, ModelError> {
    if stride == 0 || !stride.is_multiple_of(64) {
        return Err(ModelError::InvalidConfig {
            reason: format!("stride {stride} must be a positive multiple of 64"),
        });
    }
    let proc = setup.trojan.proc;
    // Map exactly the pages the sweep touches.
    let span_bytes = stride * samples;
    let (base, mapped_pages) = if stride >= PAGE_SIZE {
        // One page per sample, spaced `stride` apart in VA.
        let base = setup.scratch_pages(proc, 1)?;
        for i in 1..samples {
            let page_base = base + (i * stride) as u64;
            let got = setup.scratch_pages_at(proc, page_base, 1)?;
            debug_assert_eq!(got, page_base);
        }
        (base, samples)
    } else {
        let pages = span_bytes.div_ceil(PAGE_SIZE).max(1);
        (setup.scratch_pages(proc, pages)?, pages)
    };

    let mut census = LatencyCensus {
        stride,
        samples: Vec::with_capacity(samples * passes),
    };
    {
        let mut cpu = setup.trojan_handle();
        for pass in 0..=passes {
            for i in 0..samples {
                let va = base + (i * stride) as u64;
                let lat = cpu.read(va)?;
                let level = cpu.machine().last_mee_hit();
                cpu.clflush(va)?;
                if pass > 0 {
                    census.samples.push(LatencySample {
                        latency: lat,
                        level,
                    });
                }
            }
        }
    }

    // Release the mapped pages so later strides get fresh frames.
    if stride >= PAGE_SIZE {
        for i in 0..samples {
            setup.release_scratch(proc, base + (i * stride) as u64, 1)?;
        }
    } else {
        setup.release_scratch(proc, base, mapped_pages)?;
    }
    Ok(census)
}

/// Runs the full Figure-5 census across `strides`.
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_latency_census(
    setup: &mut AttackSetup,
    strides: &[usize],
    samples: usize,
    passes: usize,
) -> Result<Vec<LatencyCensus>, ModelError> {
    strides
        .iter()
        .map(|&s| census_for_stride(setup, s, samples, passes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_STRIDES: [usize; 5] = [64, 512, 4096, 32 << 10, 256 << 10];

    #[test]
    fn small_strides_are_versions_dominated() {
        let mut setup = AttackSetup::quiet(41).unwrap();
        let census = census_for_stride(&mut setup, 64, 64, 2).unwrap();
        assert_eq!(census.dominant_level(), Some(HitLevel::Versions));
        // §5.1: 64 B stride has strong spatial locality in the versions line.
        let h = census.level_histogram();
        assert!(h[0] > census.samples.len() * 8 / 10);
    }

    #[test]
    fn stride_512_hits_versions_or_l0() {
        let mut setup = AttackSetup::quiet(42).unwrap();
        let census = census_for_stride(&mut setup, 512, 64, 2).unwrap();
        let h = census.level_histogram();
        assert!(
            h[0] + h[1] > census.samples.len() * 9 / 10,
            "histogram {h:?}"
        );
    }

    #[test]
    fn large_strides_walk_higher() {
        let mut setup = AttackSetup::quiet(43).unwrap();
        // Enough pages that the per-pass tree footprint exceeds the MEE
        // cache, so version lines cannot simply stay resident between
        // passes (the paper swept far more than 64 KiB of tree data).
        let census = census_for_stride(&mut setup, 256 << 10, 640, 2).unwrap();
        let h = census.level_histogram();
        let total: usize = h.iter().sum();
        // Version lines thrash (the working set far exceeds the MEE cache)…
        assert!(
            h[0] < total / 10,
            "versions hits should be rare at huge strides: {h:?}"
        );
        // …and the walk spends its time in the upper levels. With SGX's
        // scattered physical pages a large VA stride yields a *mix* of
        // L1/L2/root outcomes rather than one clean level — the paper's
        // "often results in level 1 or level 2 data hit".
        assert!(
            h[2] + h[3] + h[4] > total * 2 / 5,
            "expected upper-level walks to dominate: {h:?}"
        );
    }

    #[test]
    fn ladder_means_increase_across_strides() {
        let mut setup = AttackSetup::quiet(44).unwrap();
        let censuses =
            run_latency_census(&mut setup, &PAPER_STRIDES, 48, 2).unwrap();
        // Pool all samples; per-level means must be strictly increasing in
        // ladder order wherever adjacent levels both have samples.
        let mut pooled: Vec<LatencySample> = Vec::new();
        for c in &censuses {
            pooled.extend_from_slice(&c.samples);
        }
        let all = LatencyCensus {
            stride: 0,
            samples: pooled,
        };
        let mut prev: Option<Cycles> = None;
        for level in HitLevel::ALL {
            if let Some(mean) = all.mean_at(level) {
                if let Some(p) = prev {
                    assert!(
                        mean > p,
                        "{level} mean {mean} not above previous {p}"
                    );
                }
                prev = Some(mean);
            }
        }
    }

    #[test]
    fn versions_hit_near_480_and_miss_near_750() {
        // The §5.4 anchor numbers.
        let mut setup = AttackSetup::quiet(45).unwrap();
        let censuses = run_latency_census(&mut setup, &[64, 4096], 64, 2).unwrap();
        let hit = censuses[0].mean_at(HitLevel::Versions).unwrap();
        assert!(
            (430..=540).contains(&hit.raw()),
            "versions hit mean = {hit}"
        );
        // 4 KiB stride misses versions; whatever level it lands on, the
        // latency is ≥ ~700.
        let miss_mean = {
            let misses: Vec<u64> = censuses[1]
                .samples
                .iter()
                .filter(|s| s.level.is_some() && s.level != Some(HitLevel::Versions))
                .map(|s| s.latency.raw())
                .collect();
            misses.iter().sum::<u64>() / misses.len().max(1) as u64
        };
        assert!(miss_mean >= 690, "miss mean = {miss_mean}");
    }

    #[test]
    fn rejects_bad_strides() {
        let mut setup = AttackSetup::quiet(46).unwrap();
        assert!(census_for_stride(&mut setup, 0, 8, 1).is_err());
        assert!(census_for_stride(&mut setup, 100, 8, 1).is_err());
    }
}

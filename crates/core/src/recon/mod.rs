//! Reverse engineering the MEE cache (paper §4).
//!
//! The MEE cache organization is not public, so the paper infers it from
//! timing alone:
//!
//! * [`capacity`] — grow a 4 KiB-stride candidate address set until
//!   accessing all of it reliably evicts some versions line (Figure 4);
//!   the saturation point gives the capacity (64 candidates × 16 lines ×
//!   64 B = 64 KiB).
//! * [`eviction`] — Algorithm 1: build an *index address set*, find a test
//!   address it evicts, then peel addresses off one at a time to isolate the
//!   *eviction address set*, whose size is the associativity (8).
//! * [`latency`] — the stride census behind Figure 5's latency histogram.
//! * [`profile`] — the whole pipeline end-to-end, against *unknown*
//!   geometries.

pub mod capacity;
pub mod eviction;
pub mod latency;
pub mod profile;

pub use capacity::{run_capacity_experiment, CapacityResult};
pub use eviction::{eviction_test, find_eviction_set, EvictionSetResult};
pub use latency::{run_latency_census, LatencyCensus, LatencySample};
pub use profile::{profile_mee_cache, MeeProfile};

//! The complete §4 pipeline: profile an *unknown* MEE cache from timing
//! alone.
//!
//! The paper's reverse engineering combines the capacity sweep (§4.1,
//! Figure 4) with Algorithm 1's associativity discovery (§4.2). This module
//! runs the whole pipeline and squeezes one more quantity out of
//! Algorithm 1's by-product: the *index address set* holds up to
//! `associativity` addresses per alignment class, so its size divided by
//! the associativity estimates the number of classes — and each class
//! corresponds to one 16-line consecutive-versions-data-region alignment,
//! giving the set count and hence the capacity *exactly*:
//!
//! ```text
//! classes  = round(|index set| / ways)
//! sets     = classes × 16          (region spans 16 interleaved lines)
//! capacity = sets × ways × 64 B
//! ```
//!
//! For the paper's machine: 64 / 8 = 8 classes → 128 sets → 64 KiB, the
//! published answer. The tests point the pipeline at machines with
//! geometries the attacker does not know and check it recovers them.

use mee_types::{ModelError, LINE_SIZE, LINES_PER_PAGE};

use crate::recon::capacity::run_capacity_experiment;
use crate::recon::eviction::find_eviction_set;
use crate::setup::AttackSetup;
use crate::threshold::LatencyClassifier;

/// Lines spanned by one consecutive versions data region (8 versions +
/// 8 PD_Tag interleaved).
const REGION_LINES: usize = 2 * LINES_PER_PAGE / 8;

/// The organization inferred for the MEE cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeeProfile {
    /// Set associativity (Algorithm 1's eviction-set size).
    pub associativity: usize,
    /// Number of sets (from the index-set/associativity ratio).
    pub sets: usize,
    /// Line size in bytes (published, not inferred — the paper takes 64 B
    /// from \[Gueron 2016\]).
    pub line_size: usize,
    /// Candidate-set size at which the Figure-4 sweep saturated, as a
    /// corroborating capacity bound (`None` if the sweep stage was skipped
    /// or never saturated).
    pub sweep_saturation: Option<usize>,
}

impl MeeProfile {
    /// Capacity in bytes implied by the profile.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.associativity * self.line_size) as u64
    }

    /// Whether the Figure-4 saturation point is consistent with the
    /// profiled capacity: saturation should occur within a factor of two of
    /// `classes × ways` candidates.
    pub fn sweep_consistent(&self) -> Option<bool> {
        let k = self.sweep_saturation? as u64;
        let expected = (self.sets / REGION_LINES * self.associativity) as u64;
        Some(k >= expected / 2 && k <= expected * 2)
    }
}

impl std::fmt::Display for MeeProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} KiB, {}-way set-associative, {} sets of {} B lines",
            self.capacity_bytes() / 1024,
            self.associativity,
            self.sets,
            self.line_size
        )
    }
}

/// Runs the full reverse-engineering pipeline against the machine in
/// `setup`.
///
/// `trials` controls the corroborating Figure-4 sweep (0 skips it);
/// `reps` is the eviction-test vote count for Algorithm 1.
///
/// # Errors
///
/// * Propagates machine errors.
/// * Returns [`ModelError::InvalidConfig`] if Algorithm 1 fails (e.g. a
///   replacement policy without recency structure).
pub fn profile_mee_cache(
    setup: &mut AttackSetup,
    trials: usize,
    reps: usize,
) -> Result<MeeProfile, ModelError> {
    let classifier = LatencyClassifier::from_timing(&setup.machine.config().timing);

    // Algorithm 1 over every candidate the tenant has: the index set must
    // be able to fill each alignment class to its associativity.
    let candidates = setup.trojan.candidates(setup.trojan.pages, 0);
    let eviction = {
        let mut cpu = setup.trojan_handle();
        find_eviction_set(&mut cpu, &candidates, &classifier, reps)?
    };
    let ways = eviction.associativity().max(1);
    let classes =
        ((eviction.index_set_size as f64 / ways as f64).round() as usize).max(1);
    let sets = classes * REGION_LINES;

    // Corroborating capacity sweep (Figure 4): find the first power-of-two
    // candidate count that always evicts.
    let mut sweep_saturation = None;
    if trials > 0 {
        for k in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let result = run_capacity_experiment(setup, &[k], trials, 0)?;
            if result.points[0].1 >= 0.99 {
                sweep_saturation = Some(k);
                break;
            }
        }
    }

    Ok(MeeProfile {
        associativity: ways,
        sets,
        line_size: LINE_SIZE,
        sweep_saturation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_cache::CacheConfig;
    use mee_machine::MachineConfig;

    fn profile_for(mee_cache: CacheConfig, seed: u64) -> MeeProfile {
        let mut cfg = MachineConfig::default().without_noise();
        cfg.mee_cache = mee_cache;
        let mut setup = AttackSetup::with_config(cfg, seed).unwrap();
        profile_mee_cache(&mut setup, 10, 3).unwrap()
    }

    #[test]
    fn recovers_the_papers_geometry() {
        let profile = profile_for(
            CacheConfig {
                sets: 128,
                ways: 8,
                line_size: 64,
            },
            201,
        );
        assert_eq!(profile.associativity, 8);
        assert_eq!(profile.sets, 128);
        assert_eq!(profile.capacity_bytes(), 64 * 1024);
        assert_eq!(profile.sweep_consistent(), Some(true));
        assert_eq!(
            profile.to_string(),
            "64 KiB, 8-way set-associative, 128 sets of 64 B lines"
        );
    }

    #[test]
    fn recovers_a_smaller_four_way_cache() {
        // A hypothetical 16 KiB, 4-way MEE cache (64 sets): nothing in the
        // pipeline may assume the paper's numbers.
        let profile = profile_for(
            CacheConfig {
                sets: 64,
                ways: 4,
                line_size: 64,
            },
            202,
        );
        assert_eq!(profile.associativity, 4);
        assert_eq!(profile.sets, 64);
        assert_eq!(profile.capacity_bytes(), 16 * 1024);
    }

    #[test]
    fn recovers_a_sixteen_way_cache() {
        // 128 KiB, 16-way, 128 sets.
        let profile = profile_for(
            CacheConfig {
                sets: 128,
                ways: 16,
                line_size: 64,
            },
            203,
        );
        assert_eq!(profile.associativity, 16);
        assert_eq!(profile.sets, 128);
        assert_eq!(profile.capacity_bytes(), 128 * 1024);
    }

    #[test]
    fn works_on_the_noisy_default_machine() {
        let mut setup = AttackSetup::new(204).unwrap();
        let profile = profile_mee_cache(&mut setup, 0, 3).unwrap();
        assert_eq!(profile.associativity, 8);
        assert_eq!(profile.sets, 128);
        assert_eq!(profile.sweep_saturation, None);
    }
}

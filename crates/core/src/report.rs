//! Plain-text rendering for experiment results: aligned tables, ASCII
//! histograms, and CSV — everything the `fig*` harness binaries print.

use std::fmt::Write as _;

/// Renders an aligned text table.
///
/// ```
/// let t = mee_attack::report::table(
///     &["k", "p"],
///     &[vec!["2".into(), "0.00".into()], vec!["64".into(), "1.00".into()]],
/// );
/// assert!(t.contains("k"));
/// assert!(t.lines().count() >= 4);
/// ```
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(*w));
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "| {h:w$} ");
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "| {cell:w$} ");
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Renders values as CSV with a header line.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders a horizontal ASCII bar chart: one line per `(label, value)` with
/// bars scaled to `width` characters.
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    let max = entries.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(out, "{label:label_w$} | {} {value:.3}", "#".repeat(bar_len));
    }
    out
}

/// Buckets samples into a latency histogram (fixed-width bins) rendered as
/// an ASCII chart — the Figure-5 visual.
pub fn latency_histogram(samples: &[u64], bin_width: u64, max_rows: usize) -> String {
    if samples.is_empty() || bin_width == 0 {
        return String::from("(no samples)\n");
    }
    let lo = samples.iter().min().copied().unwrap_or(0) / bin_width * bin_width;
    let hi = samples.iter().max().copied().unwrap_or(0);
    let bins = ((hi - lo) / bin_width + 1).min(max_rows as u64) as usize;
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let idx = (((s - lo) / bin_width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let entries: Vec<(String, f64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                format!("{:>6}", lo + i as u64 * bin_width),
                c as f64,
            )
        })
        .collect();
    bar_chart(&entries, 50)
}

/// Formats a probability as a percentage with one decimal.
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_shape() {
        let c = csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(
            &[("a".into(), 1.0), ("b".into(), 2.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[0].matches('#').count() == 5);
    }

    #[test]
    fn histogram_handles_degenerate_input() {
        assert!(latency_histogram(&[], 10, 40).contains("no samples"));
        let h = latency_histogram(&[480, 485, 750], 50, 40);
        assert!(h.contains("450") || h.contains("480"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.017), "1.7%");
    }
}

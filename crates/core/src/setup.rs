//! Attack scaffolding: the machine plus the trojan and spy tenants.
//!
//! The threat model (paper §2.3): a multi-core SGX machine shared by
//! multiple tenants; the trojan and the spy run in *separate enclaves on
//! different physical cores*, with no shared memory, no hugepages, and no
//! OS cooperation. [`AttackSetup`] builds exactly that arrangement.

use mee_machine::{CoreHandle, CoreId, Machine, MachineConfig, ProcId};
use mee_mem::AddressSpaceKind;
use mee_types::{ModelError, VirtAddr, PAGE_SIZE, VERSION_BLOCK_SIZE};

/// One tenant: an enclave bound to a core, with a mapped scratch region.
#[derive(Debug, Clone, Copy)]
pub struct Tenant {
    /// The tenant's enclave process.
    pub proc: ProcId,
    /// The physical core the tenant's attack thread runs on.
    pub core: CoreId,
    /// Base of the tenant's mapped region.
    pub base: VirtAddr,
    /// Pages mapped at `base`.
    pub pages: usize,
}

impl Tenant {
    /// The `i`-th candidate address: 4 KiB stride from `base`, displaced to
    /// the agreed 512 B unit `offset` within the page (the paper's "same
    /// index in consecutive versions data region", §5.3).
    ///
    /// # Panics
    ///
    /// Panics if `i >= pages` or `offset >= 8`.
    pub fn candidate(&self, i: usize, offset: usize) -> VirtAddr {
        assert!(i < self.pages, "candidate index {i} beyond mapped region");
        assert!(
            offset < PAGE_SIZE / VERSION_BLOCK_SIZE,
            "offset must select one of the 8 version blocks of a page"
        );
        self.base + (i * PAGE_SIZE + offset * VERSION_BLOCK_SIZE) as u64
    }

    /// All candidate addresses for the given offset.
    pub fn candidates(&self, count: usize, offset: usize) -> Vec<VirtAddr> {
        (0..count).map(|i| self.candidate(i, offset)).collect()
    }
}

/// The machine with the trojan and spy enclaves installed.
///
/// Core assignment: spy on core 0, trojan on core 1, leaving cores 2..N for
/// noise programs (paper §5.4 uses a third core for its noisy environments).
#[derive(Debug)]
pub struct AttackSetup {
    /// The simulated machine.
    pub machine: Machine,
    /// The receiving tenant.
    pub spy: Tenant,
    /// The sending tenant.
    pub trojan: Tenant,
    /// Virtual-address cursor for scratch allocations.
    scratch_cursor: u64,
}

/// Pages pre-mapped for each tenant — enough for Algorithm 1's candidate
/// sets (≥ 64 candidates guarantee an eviction set, §4.2) with headroom.
const TENANT_PAGES: usize = 192;

/// Virtual bases, arbitrary but page-aligned and far apart.
const SPY_BASE: u64 = 0x0100_0000;
const TROJAN_BASE: u64 = 0x0200_0000;
const SCRATCH_BASE: u64 = 0x1000_0000;

impl AttackSetup {
    /// Builds the attack arrangement on a machine configured by `cfg`, with
    /// every RNG in the system derived from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and allocation errors.
    pub fn with_config(mut cfg: MachineConfig, seed: u64) -> Result<Self, ModelError> {
        cfg.alloc_seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
        cfg.stall_seed = seed.wrapping_mul(0x85eb_ca6b).wrapping_add(2);
        cfg.dram.seed = seed.wrapping_mul(0xc2b2_ae35).wrapping_add(3);
        if cfg.cores < 2 {
            return Err(ModelError::InvalidConfig {
                reason: "the attack needs at least two cores".into(),
            });
        }
        let mut machine = Machine::new(cfg)?;
        let spy_proc = machine.create_process(AddressSpaceKind::Enclave);
        let trojan_proc = machine.create_process(AddressSpaceKind::Enclave);
        let spy = Tenant {
            proc: spy_proc,
            core: CoreId::new(0),
            base: VirtAddr::new(SPY_BASE),
            pages: TENANT_PAGES,
        };
        let trojan = Tenant {
            proc: trojan_proc,
            core: CoreId::new(1),
            base: VirtAddr::new(TROJAN_BASE),
            pages: TENANT_PAGES,
        };
        machine.map_pages(spy.proc, spy.base, spy.pages)?;
        machine.map_pages(trojan.proc, trojan.base, trojan.pages)?;
        Ok(AttackSetup {
            machine,
            spy,
            trojan,
            scratch_cursor: SCRATCH_BASE,
        })
    }

    /// The default machine with all noise sources enabled (the evaluation
    /// configuration).
    ///
    /// # Errors
    ///
    /// Propagates configuration and allocation errors.
    pub fn new(seed: u64) -> Result<Self, ModelError> {
        Self::with_config(MachineConfig::default(), seed)
    }

    /// The default machine with all noise disabled (for white-box tests and
    /// clean calibration).
    ///
    /// # Errors
    ///
    /// Propagates configuration and allocation errors.
    pub fn quiet(seed: u64) -> Result<Self, ModelError> {
        Self::with_config(MachineConfig::default().without_noise(), seed)
    }

    /// A handle driving the spy's thread.
    pub fn spy_handle(&mut self) -> CoreHandle<'_> {
        CoreHandle::new(&mut self.machine, self.spy.core, self.spy.proc)
    }

    /// A handle driving the trojan's thread.
    pub fn trojan_handle(&mut self) -> CoreHandle<'_> {
        CoreHandle::new(&mut self.machine, self.trojan.core, self.trojan.proc)
    }

    /// Aligns the spy's and trojan's core clocks to the later of the two.
    ///
    /// Setup handshakes drive the two cores *sequentially* through machine
    /// handles; without re-alignment their clocks drift apart and shared-
    /// resource timing (MEE pipeline occupancy) would be computed across
    /// nonsensical time gaps. During real transmissions the scheduler keeps
    /// clocks naturally aligned.
    pub fn sync_clocks(&mut self) {
        let t = self
            .machine
            .core_now(self.spy.core)
            .max(self.machine.core_now(self.trojan.core));
        self.machine.busy_until(self.spy.core, t);
        self.machine.busy_until(self.trojan.core, t);
    }

    /// Maps `count` fresh enclave pages for `tenant` at a new virtual range
    /// and returns their base. Pair with [`Self::release_scratch`] to
    /// recycle the physical frames (the Figure-4 experiment burns through
    /// many candidate sets).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn scratch_pages(&mut self, proc: ProcId, count: usize) -> Result<VirtAddr, ModelError> {
        let base = VirtAddr::new(self.scratch_cursor);
        self.scratch_cursor += (count * PAGE_SIZE) as u64;
        self.machine.map_pages(proc, base, count)?;
        Ok(base)
    }

    /// Maps `count` fresh enclave pages at a caller-chosen virtual base
    /// (used by the stride census, which needs sparse page placement in VA
    /// space). Advances the scratch cursor past the range.
    ///
    /// # Errors
    ///
    /// Propagates allocation and mapping errors.
    pub fn scratch_pages_at(
        &mut self,
        proc: ProcId,
        base: VirtAddr,
        count: usize,
    ) -> Result<VirtAddr, ModelError> {
        let end = base.raw() + (count * PAGE_SIZE) as u64;
        if end > self.scratch_cursor {
            self.scratch_cursor = end;
        }
        self.machine.map_pages(proc, base, count)?;
        Ok(base)
    }

    /// Unmaps a scratch range mapped by [`Self::scratch_pages`].
    ///
    /// # Errors
    ///
    /// Propagates unmapping errors.
    pub fn release_scratch(
        &mut self,
        proc: ProcId,
        base: VirtAddr,
        count: usize,
    ) -> Result<(), ModelError> {
        self.machine.unmap_pages(proc, base, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_are_isolated_enclaves_on_distinct_cores() {
        let setup = AttackSetup::quiet(1).unwrap();
        assert_ne!(setup.spy.core, setup.trojan.core);
        assert_ne!(setup.spy.proc, setup.trojan.proc);
        assert!(setup.machine.is_enclave(setup.spy.proc));
        assert!(setup.machine.is_enclave(setup.trojan.proc));
    }

    #[test]
    fn candidates_follow_4k_stride_with_offset() {
        let setup = AttackSetup::quiet(2).unwrap();
        let c0 = setup.trojan.candidate(0, 3);
        let c1 = setup.trojan.candidate(1, 3);
        assert_eq!(c1 - c0, PAGE_SIZE as u64);
        assert_eq!(c0.page_offset(), 3 * VERSION_BLOCK_SIZE as u64);
        let all = setup.trojan.candidates(5, 0);
        assert_eq!(all.len(), 5);
        assert_eq!(all[4] - all[0], 4 * PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "beyond mapped region")]
    fn candidate_bounds_checked() {
        let setup = AttackSetup::quiet(3).unwrap();
        let _ = setup.trojan.candidate(TENANT_PAGES, 0);
    }

    #[test]
    fn scratch_pages_recycle_frames() {
        let mut setup = AttackSetup::quiet(4).unwrap();
        let proc = setup.trojan.proc;
        // Burn through far more pages than the PRM holds; recycling must
        // make this work.
        for _ in 0..40 {
            let base = setup.scratch_pages(proc, 128).unwrap();
            setup.release_scratch(proc, base, 128).unwrap();
        }
    }

    #[test]
    fn single_core_machine_rejected() {
        let mut cfg = MachineConfig::small();
        cfg.cores = 1;
        assert!(AttackSetup::with_config(cfg, 0).is_err());
    }

    #[test]
    fn different_seeds_give_different_physical_placement() {
        let a = AttackSetup::quiet(10).unwrap();
        let b = AttackSetup::quiet(11).unwrap();
        let pa = a.machine.translate(a.trojan.proc, a.trojan.base).unwrap();
        let pb = b.machine.translate(b.trojan.proc, b.trojan.base).unwrap();
        assert_ne!(pa, pb, "placement should depend on the seed");
    }
}

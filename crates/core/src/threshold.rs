//! Latency classification: versions hit vs versions miss.
//!
//! The entire channel decodes one bit from one latency sample, so the
//! threshold between the "≈480 cycle" versions-hit cluster and the
//! "≈750 cycle" miss cluster (§5.4) is the decoder. [`LatencyClassifier`]
//! carries that threshold plus the measurement bias of the timing primitive
//! in use (the hyperthread timer mailbox costs ~50 cycles per read).

use mee_machine::CoreHandle;
use mee_types::{Cycles, ModelError, TimingConfig, VirtAddr};

/// Classifies protected-access latencies into versions hit / miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyClassifier {
    /// Latencies strictly below this are versions hits.
    pub threshold: Cycles,
    /// Fixed measurement overhead subtracted from raw timed samples (e.g.
    /// one timer-mailbox read bracketing the access).
    pub bias: Cycles,
}

impl LatencyClassifier {
    /// Builds the classifier from the machine's nominal timing, with no
    /// measurement bias (for samples that are true latencies).
    pub fn from_timing(t: &TimingConfig) -> Self {
        LatencyClassifier {
            threshold: t.versions_threshold(),
            bias: Cycles::ZERO,
        }
    }

    /// Builds the classifier for samples measured by bracketing the access
    /// between two timer-mailbox reads: the raw sample then includes one
    /// mailbox-read cost.
    pub fn for_timer_probes(t: &TimingConfig) -> Self {
        LatencyClassifier {
            threshold: t.versions_threshold(),
            bias: t.timer_read,
        }
    }

    /// Removes the measurement bias from a raw sample.
    pub fn debias(&self, raw: Cycles) -> Cycles {
        raw.saturating_sub(self.bias)
    }

    /// Whether a raw sample is a versions hit.
    pub fn is_versions_hit(&self, raw: Cycles) -> bool {
        self.debias(raw) < self.threshold
    }

    /// Whether a raw sample is a versions miss (the signal for a `1`).
    pub fn is_versions_miss(&self, raw: Cycles) -> bool {
        !self.is_versions_hit(raw)
    }

    /// Calibrates a classifier empirically, the way a real attacker must:
    /// samples the versions-hit cluster by repeatedly accessing and flushing
    /// one address (after the cold access, every re-access is a versions
    /// hit), samples the deep-miss cluster by touching addresses 256 KiB
    /// apart (fresh subtrees), and places the threshold 40% of the way up
    /// the gap — below the L0-hit latency that a trojan eviction produces.
    ///
    /// # Errors
    ///
    /// Propagates machine errors from the probing accesses.
    pub fn calibrate(
        cpu: &mut CoreHandle<'_>,
        probe: VirtAddr,
        deep: &[VirtAddr],
        samples: usize,
    ) -> Result<Self, ModelError> {
        assert!(samples >= 4, "calibration needs at least 4 samples");
        // Warm: ensure the versions line is resident.
        cpu.read(probe)?;
        cpu.clflush(probe)?;
        let mut hit_total = 0u64;
        for _ in 0..samples {
            let lat = cpu.read(probe)?;
            cpu.clflush(probe)?;
            hit_total += lat.raw();
        }
        let hit_mean = hit_total / samples as u64;

        let mut deep_total = 0u64;
        let mut deep_count = 0u64;
        for &addr in deep.iter().take(samples) {
            let lat = cpu.read(addr)?;
            cpu.clflush(addr)?;
            deep_total += lat.raw();
            deep_count += 1;
        }
        if deep_count == 0 {
            return Err(ModelError::InvalidConfig {
                reason: "calibration needs at least one deep-miss address".into(),
            });
        }
        let deep_mean = deep_total / deep_count;
        if deep_mean <= hit_mean {
            return Err(ModelError::InvalidConfig {
                reason: format!(
                    "calibration found no latency gap (hit {hit_mean}, deep {deep_mean})"
                ),
            });
        }
        let threshold = hit_mean + (deep_mean - hit_mean) * 2 / 5;
        Ok(LatencyClassifier {
            threshold: Cycles::new(threshold),
            bias: Cycles::ZERO,
        })
    }
}

/// A [`LatencyClassifier`] that recalibrates its threshold online.
///
/// Faults move the latency clusters: a thrashed MEE set turns hits into
/// deep misses, drift smears the probe timing, and a migration cold-starts
/// the private caches. A fixed threshold silently decays — and a scheme
/// that updates per-cluster averages *by its own classification* cannot
/// recover once both clusters drift past the stale threshold. This wrapper
/// instead keeps a sliding window of recent samples and, once the window is
/// full, re-derives the two clusters from scratch: sort the window, split
/// at the largest latency gap (requiring at least [`Self::MIN_CLUSTER`]
/// samples on each side, so stray deep-walk outliers cannot define a
/// cluster), and re-center the threshold 40% of the way up the gap — the
/// same placement [`LatencyClassifier::calibrate`] uses. Everything is
/// integer arithmetic, so recalibration is bit-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveClassifier {
    current: LatencyClassifier,
    window: Vec<u64>,
    cursor: usize,
    recalibrations: usize,
}

impl AdaptiveClassifier {
    /// Sliding-window size (samples).
    pub const WINDOW: usize = 32;
    /// Minimum samples per cluster for a split to be credible.
    pub const MIN_CLUSTER: usize = 4;
    /// Minimum latency gap (cycles) between clusters for a split to be
    /// credible — below this the window is treated as a single cluster
    /// (e.g. a long run of equal bits) and the threshold is left alone.
    pub const MIN_GAP: u64 = 80;
    /// Recalibrate only when the proposed threshold differs from the
    /// current one by more than this many cycles.
    pub const RECAL_MARGIN: u64 = 40;

    /// Starts from a calibrated classifier.
    #[must_use]
    pub fn new(base: LatencyClassifier) -> Self {
        AdaptiveClassifier {
            current: base,
            window: Vec::with_capacity(Self::WINDOW),
            cursor: 0,
            recalibrations: 0,
        }
    }

    /// The classifier as currently calibrated.
    #[must_use]
    pub fn classifier(&self) -> LatencyClassifier {
        self.current
    }

    /// How many times the threshold has been re-centered.
    #[must_use]
    pub fn recalibrations(&self) -> usize {
        self.recalibrations
    }

    /// Classifies one raw sample (`true` = versions miss, the signal for a
    /// `1`) with the *current* threshold, then folds the sample into the
    /// window and re-centers the threshold if the window's clusters have
    /// drifted away from it.
    pub fn observe(&mut self, raw: Cycles) -> bool {
        let miss = self.current.is_versions_miss(raw);
        let sample = self.current.debias(raw).raw();
        if self.window.len() < Self::WINDOW {
            self.window.push(sample);
        } else {
            self.window[self.cursor] = sample;
            self.cursor = (self.cursor + 1) % Self::WINDOW;
        }
        if self.window.len() == Self::WINDOW {
            self.recalibrate();
        }
        miss
    }

    fn recalibrate(&mut self) {
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut best_gap = 0u64;
        let mut split = 0usize;
        for i in Self::MIN_CLUSTER..=(n - Self::MIN_CLUSTER) {
            let gap = sorted[i] - sorted[i - 1];
            if gap > best_gap {
                best_gap = gap;
                split = i;
            }
        }
        if best_gap < Self::MIN_GAP {
            return;
        }
        let (lo, hi) = sorted.split_at(split);
        let lo_mean = lo.iter().sum::<u64>() / lo.len() as u64;
        let hi_mean = hi.iter().sum::<u64>() / hi.len() as u64;
        let target = lo_mean + (hi_mean - lo_mean) * 2 / 5;
        if target.abs_diff(self.current.threshold.raw()) > Self::RECAL_MARGIN {
            self.current.threshold = Cycles::new(target);
            self.recalibrations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::AttackSetup;

    #[test]
    fn nominal_classifier_separates_clusters() {
        let t = TimingConfig::default();
        let c = LatencyClassifier::from_timing(&t);
        assert!(c.is_versions_hit(t.protected_hit_latency(0)));
        assert!(c.is_versions_miss(t.protected_hit_latency(1)));
        assert!(c.is_versions_miss(t.protected_root_latency()));
    }

    #[test]
    fn timer_classifier_debiases() {
        let t = TimingConfig::default();
        let c = LatencyClassifier::for_timer_probes(&t);
        let hit_raw = t.protected_hit_latency(0) + t.timer_read;
        let miss_raw = t.protected_hit_latency(1) + t.timer_read;
        assert!(c.is_versions_hit(hit_raw));
        assert!(c.is_versions_miss(miss_raw));
        assert_eq!(c.debias(hit_raw), t.protected_hit_latency(0));
    }

    #[test]
    fn empirical_calibration_matches_nominal() {
        let mut setup = AttackSetup::quiet(5).unwrap();
        let probe = setup.spy.candidate(0, 0);
        // Deep misses: 256 KiB apart in VA; physical scatter makes them
        // touch fresh subtrees.
        let deep: Vec<VirtAddr> = (1..9).map(|i| setup.spy.candidate(i * 16, 0)).collect();
        let nominal = LatencyClassifier::from_timing(&setup.machine.config().timing);
        let mut cpu = setup.spy_handle();
        let cal = LatencyClassifier::calibrate(&mut cpu, probe, &deep, 8).unwrap();
        let diff = cal.threshold.raw() as i64 - nominal.threshold.raw() as i64;
        assert!(diff.abs() < 120, "calibrated {} vs nominal {}", cal.threshold, nominal.threshold);
        // And the calibrated threshold still separates the clusters.
        let t = &setup.machine.config().timing;
        assert!(cal.is_versions_hit(t.protected_hit_latency(0)));
        assert!(cal.is_versions_miss(t.protected_hit_latency(1)));
    }

    #[test]
    fn adaptive_classifier_tracks_a_drifting_gap() {
        // Start with a threshold placed for clusters at 480/750, then feed
        // samples from clusters that drifted up by 300 cycles. A fixed
        // classifier would call the new 780-cycle hits "misses" forever;
        // the adaptive one re-centers after a handful of samples.
        let base = LatencyClassifier {
            threshold: Cycles::new(590),
            bias: Cycles::ZERO,
        };
        let mut a = AdaptiveClassifier::new(base);
        // Seed both clusters at the original operating point.
        for _ in 0..4 {
            a.observe(Cycles::new(480));
            a.observe(Cycles::new(750));
        }
        assert_eq!(a.recalibrations(), 0, "no drift, no recalibration");
        // Clusters drift upward; keep feeding alternating samples.
        for _ in 0..40 {
            a.observe(Cycles::new(780));
            a.observe(Cycles::new(1_050));
        }
        assert!(a.recalibrations() > 0);
        let t = a.classifier().threshold;
        assert!(
            (Cycles::new(820)..=Cycles::new(960)).contains(&t),
            "threshold {t} should sit 40% up the drifted gap"
        );
        // And the recalibrated classifier separates the drifted clusters.
        assert!(a.classifier().is_versions_hit(Cycles::new(780)));
        assert!(a.classifier().is_versions_miss(Cycles::new(1_050)));
    }

    #[test]
    fn adaptive_classifier_is_stable_on_a_steady_channel() {
        let base = LatencyClassifier {
            threshold: Cycles::new(590),
            bias: Cycles::ZERO,
        };
        let mut a = AdaptiveClassifier::new(base);
        for i in 0..200u64 {
            // Small deterministic jitter around the nominal clusters.
            a.observe(Cycles::new(475 + (i % 7)));
            a.observe(Cycles::new(745 + (i % 11)));
        }
        assert!(
            a.recalibrations() <= 1,
            "steady clusters caused {} recalibrations",
            a.recalibrations()
        );
    }

    #[test]
    fn calibration_rejects_missing_deep_addresses() {
        let mut setup = AttackSetup::quiet(6).unwrap();
        let probe = setup.spy.candidate(0, 0);
        let mut cpu = setup.spy_handle();
        assert!(LatencyClassifier::calibrate(&mut cpu, probe, &[], 8).is_err());
    }
}

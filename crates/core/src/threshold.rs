//! Latency classification: versions hit vs versions miss.
//!
//! The entire channel decodes one bit from one latency sample, so the
//! threshold between the "≈480 cycle" versions-hit cluster and the
//! "≈750 cycle" miss cluster (§5.4) is the decoder. [`LatencyClassifier`]
//! carries that threshold plus the measurement bias of the timing primitive
//! in use (the hyperthread timer mailbox costs ~50 cycles per read).

use mee_machine::CoreHandle;
use mee_types::{Cycles, ModelError, TimingConfig, VirtAddr};

/// Classifies protected-access latencies into versions hit / miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyClassifier {
    /// Latencies strictly below this are versions hits.
    pub threshold: Cycles,
    /// Fixed measurement overhead subtracted from raw timed samples (e.g.
    /// one timer-mailbox read bracketing the access).
    pub bias: Cycles,
}

impl LatencyClassifier {
    /// Builds the classifier from the machine's nominal timing, with no
    /// measurement bias (for samples that are true latencies).
    pub fn from_timing(t: &TimingConfig) -> Self {
        LatencyClassifier {
            threshold: t.versions_threshold(),
            bias: Cycles::ZERO,
        }
    }

    /// Builds the classifier for samples measured by bracketing the access
    /// between two timer-mailbox reads: the raw sample then includes one
    /// mailbox-read cost.
    pub fn for_timer_probes(t: &TimingConfig) -> Self {
        LatencyClassifier {
            threshold: t.versions_threshold(),
            bias: t.timer_read,
        }
    }

    /// Removes the measurement bias from a raw sample.
    pub fn debias(&self, raw: Cycles) -> Cycles {
        raw.saturating_sub(self.bias)
    }

    /// Whether a raw sample is a versions hit.
    pub fn is_versions_hit(&self, raw: Cycles) -> bool {
        self.debias(raw) < self.threshold
    }

    /// Whether a raw sample is a versions miss (the signal for a `1`).
    pub fn is_versions_miss(&self, raw: Cycles) -> bool {
        !self.is_versions_hit(raw)
    }

    /// Calibrates a classifier empirically, the way a real attacker must:
    /// samples the versions-hit cluster by repeatedly accessing and flushing
    /// one address (after the cold access, every re-access is a versions
    /// hit), samples the deep-miss cluster by touching addresses 256 KiB
    /// apart (fresh subtrees), and places the threshold 40% of the way up
    /// the gap — below the L0-hit latency that a trojan eviction produces.
    ///
    /// # Errors
    ///
    /// Propagates machine errors from the probing accesses.
    pub fn calibrate(
        cpu: &mut CoreHandle<'_>,
        probe: VirtAddr,
        deep: &[VirtAddr],
        samples: usize,
    ) -> Result<Self, ModelError> {
        assert!(samples >= 4, "calibration needs at least 4 samples");
        // Warm: ensure the versions line is resident.
        cpu.read(probe)?;
        cpu.clflush(probe)?;
        let mut hit_total = 0u64;
        for _ in 0..samples {
            let lat = cpu.read(probe)?;
            cpu.clflush(probe)?;
            hit_total += lat.raw();
        }
        let hit_mean = hit_total / samples as u64;

        let mut deep_total = 0u64;
        let mut deep_count = 0u64;
        for &addr in deep.iter().take(samples) {
            let lat = cpu.read(addr)?;
            cpu.clflush(addr)?;
            deep_total += lat.raw();
            deep_count += 1;
        }
        if deep_count == 0 {
            return Err(ModelError::InvalidConfig {
                reason: "calibration needs at least one deep-miss address".into(),
            });
        }
        let deep_mean = deep_total / deep_count;
        if deep_mean <= hit_mean {
            return Err(ModelError::InvalidConfig {
                reason: format!(
                    "calibration found no latency gap (hit {hit_mean}, deep {deep_mean})"
                ),
            });
        }
        let threshold = hit_mean + (deep_mean - hit_mean) * 2 / 5;
        Ok(LatencyClassifier {
            threshold: Cycles::new(threshold),
            bias: Cycles::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::AttackSetup;

    #[test]
    fn nominal_classifier_separates_clusters() {
        let t = TimingConfig::default();
        let c = LatencyClassifier::from_timing(&t);
        assert!(c.is_versions_hit(t.protected_hit_latency(0)));
        assert!(c.is_versions_miss(t.protected_hit_latency(1)));
        assert!(c.is_versions_miss(t.protected_root_latency()));
    }

    #[test]
    fn timer_classifier_debiases() {
        let t = TimingConfig::default();
        let c = LatencyClassifier::for_timer_probes(&t);
        let hit_raw = t.protected_hit_latency(0) + t.timer_read;
        let miss_raw = t.protected_hit_latency(1) + t.timer_read;
        assert!(c.is_versions_hit(hit_raw));
        assert!(c.is_versions_miss(miss_raw));
        assert_eq!(c.debias(hit_raw), t.protected_hit_latency(0));
    }

    #[test]
    fn empirical_calibration_matches_nominal() {
        let mut setup = AttackSetup::quiet(5).unwrap();
        let probe = setup.spy.candidate(0, 0);
        // Deep misses: 256 KiB apart in VA; physical scatter makes them
        // touch fresh subtrees.
        let deep: Vec<VirtAddr> = (1..9).map(|i| setup.spy.candidate(i * 16, 0)).collect();
        let nominal = LatencyClassifier::from_timing(&setup.machine.config().timing);
        let mut cpu = setup.spy_handle();
        let cal = LatencyClassifier::calibrate(&mut cpu, probe, &deep, 8).unwrap();
        let diff = cal.threshold.raw() as i64 - nominal.threshold.raw() as i64;
        assert!(diff.abs() < 120, "calibrated {} vs nominal {}", cal.threshold, nominal.threshold);
        // And the calibrated threshold still separates the clusters.
        let t = &setup.machine.config().timing;
        assert!(cal.is_versions_hit(t.protected_hit_latency(0)));
        assert!(cal.is_versions_miss(t.protected_hit_latency(1)));
    }

    #[test]
    fn calibration_rejects_missing_deep_addresses() {
        let mut setup = AttackSetup::quiet(6).unwrap();
        let probe = setup.spy.candidate(0, 0);
        let mut cpu = setup.spy_handle();
        assert!(LatencyClassifier::calibrate(&mut cpu, probe, &[], 8).is_err());
    }
}

//! Walk logic and timing of the MEE.

use mee_cache::policy::Policy;
use mee_cache::{CacheConfig, SetAssocCache};
use mee_mem::DramModel;
use mee_obs::{EventKind, NullTracer, Tracer, WalkLevel};
use mee_tree::{IntegrityTree, TreeGeometry, TreeLevel};
use mee_types::{Cycles, LineAddr, ModelError, TimingConfig};

/// Where the integrity-tree walk stopped.
///
/// The ordering is the Figure-5 latency ladder: `Versions` is the cheapest
/// outcome, `Root` the most expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// The versions line was cached — the fast path the spy decodes as `0`.
    Versions,
    /// Versions missed; the L0 line was cached.
    L0,
    /// Walk climbed to L1 before hitting.
    L1,
    /// Walk climbed to L2 before hitting.
    L2,
    /// Every in-memory level missed; verified against the on-die root.
    Root,
}

impl HitLevel {
    /// All hit levels, cheapest first.
    pub const ALL: [HitLevel; 5] = [
        HitLevel::Versions,
        HitLevel::L0,
        HitLevel::L1,
        HitLevel::L2,
        HitLevel::Root,
    ];

    /// Index in the latency ladder (0 = versions hit, 4 = root).
    pub fn ladder_index(self) -> usize {
        match self {
            HitLevel::Versions => 0,
            HitLevel::L0 => 1,
            HitLevel::L1 => 2,
            HitLevel::L2 => 3,
            HitLevel::Root => 4,
        }
    }

    /// Human-readable label used by the experiment harnesses.
    pub fn label(self) -> &'static str {
        match self {
            HitLevel::Versions => "versions hit",
            HitLevel::L0 => "level 0 hit",
            HitLevel::L1 => "level 1 hit",
            HitLevel::L2 => "level 2 hit",
            HitLevel::Root => "root access",
        }
    }
}

impl std::fmt::Display for HitLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fixed-capacity inline list of line addresses touched by one walk.
///
/// A walk fills at most five lines (PD_Tag + versions + L0 + L1 + L2) and
/// each fill evicts at most one victim, so both lists fit in an inline
/// array — no heap allocation on the per-memory-op hot path.
#[derive(Clone, Copy)]
pub struct WalkList {
    len: u8,
    items: [LineAddr; Self::CAP],
}

impl WalkList {
    /// Maximum entries: one per walk level.
    pub const CAP: usize = 5;

    /// An empty list.
    pub fn new() -> Self {
        WalkList {
            len: 0,
            items: [LineAddr::new(0); Self::CAP],
        }
    }

    /// Appends a line.
    ///
    /// # Panics
    ///
    /// Panics if the list is full (cannot happen for a well-formed walk).
    pub fn push(&mut self, line: LineAddr) {
        self.items[self.len as usize] = line;
        self.len += 1;
    }

    /// The live entries, in walk order.
    pub fn as_slice(&self) -> &[LineAddr] {
        &self.items[..self.len as usize]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `line` is in the list.
    pub fn contains(&self, line: &LineAddr) -> bool {
        self.as_slice().contains(line)
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, LineAddr> {
        self.as_slice().iter()
    }

    /// Copies the entries into a `Vec` (for order-insensitive comparisons).
    pub fn to_vec(self) -> Vec<LineAddr> {
        self.as_slice().to_vec()
    }
}

impl Default for WalkList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WalkList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for WalkList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WalkList {}

impl<'a> IntoIterator for &'a WalkList {
    type Item = &'a LineAddr;
    type IntoIter = std::slice::Iter<'a, LineAddr>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Microarchitectural outcome of one MEE operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeeAccess {
    /// Level at which the walk stopped.
    pub hit_level: HitLevel,
    /// MEE-added latency: crypto plus any serialized tree fetches. Does
    /// *not* include the data line's own DRAM fetch (the machine charges
    /// that).
    pub latency: Cycles,
    /// Tree lines filled into the MEE cache by this walk.
    pub filled: WalkList,
    /// Tree lines evicted from the MEE cache by those fills.
    pub evicted: WalkList,
}

/// Result of a verified protected read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeeRead {
    /// The microarchitectural outcome.
    pub access: MeeAccess,
    /// The verified data digest.
    pub digest: u64,
}

/// Cumulative MEE statistics, including the per-level hit histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeeStats {
    /// Protected reads served.
    pub reads: u64,
    /// Protected writes served.
    pub writes: u64,
    /// Walk outcomes indexed by [`HitLevel::ladder_index`].
    pub hits_by_level: [u64; 5],
}

impl MeeStats {
    /// Number of walks that stopped at `level`.
    pub fn hits_at(&self, level: HitLevel) -> u64 {
        self.hits_by_level[level.ladder_index()]
    }
}

/// The Memory Encryption Engine: integrity tree + MEE cache + walk timing.
pub struct Mee {
    tree: IntegrityTree,
    cache: SetAssocCache,
    timing: TimingConfig,
    stats: MeeStats,
    /// Way mask applied to MEE-cache fills (all-true normally; the §5.5
    /// mitigation experiment partitions it per security domain).
    fill_mask: Vec<bool>,
    /// Whether `fill_mask` is all-true — the common case, which takes the
    /// cache's mask-free fast path.
    fill_unrestricted: bool,
    /// Global time until which the engine's pipeline is occupied; a walk
    /// arriving earlier queues (shared-resource contention across cores).
    busy_until: Cycles,
}

impl std::fmt::Debug for Mee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mee")
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Mee {
    /// Creates an MEE over `geo`, keyed by `key`, with the given cache
    /// geometry and replacement policy.
    pub fn new(
        geo: TreeGeometry,
        key: u64,
        cache_cfg: CacheConfig,
        policy: impl Into<Policy>,
        timing: TimingConfig,
    ) -> Self {
        let ways = cache_cfg.ways;
        Mee {
            tree: IntegrityTree::new(geo, key),
            cache: SetAssocCache::new(cache_cfg, policy),
            timing,
            stats: MeeStats::default(),
            fill_mask: vec![true; ways],
            fill_unrestricted: true,
            busy_until: Cycles::ZERO,
        }
    }

    /// The tree geometry (for address arithmetic in experiments).
    pub fn geometry(&self) -> &TreeGeometry {
        self.tree.geometry()
    }

    /// Read-only view of the MEE cache.
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    /// The functional integrity tree (tamper injection in tests).
    pub fn tree_mut(&mut self) -> &mut IntegrityTree {
        &mut self.tree
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> MeeStats {
        self.stats
    }

    /// Global time until which the pipeline is occupied.
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Restricts future MEE-cache fills to the ways marked `true` — the
    /// way-partitioning mitigation of §5.5.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the way count or allows no
    /// ways.
    pub fn set_fill_mask(&mut self, mask: Vec<bool>) {
        assert_eq!(mask.len(), self.cache.config().ways, "mask length mismatch");
        assert!(mask.iter().any(|&b| b), "mask allows no ways");
        self.fill_unrestricted = mask.iter().all(|&b| b);
        self.fill_mask = mask;
    }

    /// One MEE-cache access under the current fill mask, skipping the mask
    /// machinery entirely in the unpartitioned (default) case.
    fn cache_access(&mut self, line: LineAddr) -> mee_cache::AccessResult {
        if self.fill_unrestricted {
            self.cache.access(line)
        } else {
            self.cache.access_in_ways(line, &self.fill_mask)
        }
    }

    /// Drops every line of the MEE cache — a whole-cache flush event (e.g.
    /// an aggressive co-runner or a power-management flush). The integrity
    /// tree itself is untouched: the next walk of any address re-fetches and
    /// re-verifies from DRAM, it does not fault.
    pub fn flush_cache(&mut self) {
        self.cache.invalidate_all();
    }

    /// Drops every resident line of one MEE-cache set (a co-runner's
    /// eviction set thrashing exactly that set); returns how many lines
    /// were dropped.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range for the cache geometry.
    pub fn flush_cache_set(&mut self, set: usize) -> usize {
        self.cache.invalidate_set(set)
    }

    /// Drops the per-block walk footprint of `data_line` from the MEE
    /// cache: its versions line and its PD_Tag line. Upper tree levels are
    /// shared across wide address ranges and are left resident — this is
    /// the footprint an EPC page eviction (`EWB`/`ELDU` rewriting the
    /// block's counters) invalidates. Returns how many lines were dropped.
    pub fn evict_walk_footprint(&mut self, data_line: LineAddr) -> usize {
        let geo = *self.tree.geometry();
        if !geo.covers(data_line.base()) {
            return 0;
        }
        let path = geo.walk_path(data_line);
        let mut dropped = 0;
        dropped += usize::from(self.cache.invalidate(geo.version_line(path.version)));
        dropped += usize::from(self.cache.invalidate(geo.pd_tag_line(path.version)));
        dropped
    }

    /// Serves a protected-region read that missed the on-chip hierarchy.
    ///
    /// # Errors
    ///
    /// * [`ModelError::BadPhysAddr`] if `data_line` is not protected data.
    /// * [`ModelError::IntegrityViolation`] if verification fails at any
    ///   walked level.
    pub fn read(
        &mut self,
        data_line: LineAddr,
        now: Cycles,
        dram: &mut DramModel,
    ) -> Result<MeeRead, ModelError> {
        self.read_traced(data_line, now, dram, &mut NullTracer)
    }

    /// [`Self::read`] with walk steps and MEE-cache evictions reported to
    /// `tracer`. The tracer observes the walk; it cannot change it, so
    /// tracing on/off leaves outcomes bit-identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_traced(
        &mut self,
        data_line: LineAddr,
        now: Cycles,
        dram: &mut DramModel,
        tracer: &mut dyn Tracer,
    ) -> Result<MeeRead, ModelError> {
        let access = self.walk(data_line, now, dram, tracer)?;
        self.stats.reads += 1;
        let digest = self
            .tree
            .read_partial(data_line, access.hit_level.ladder_index())?;
        Ok(MeeRead { access, digest })
    }

    /// Serves a protected-region write that missed the on-chip hierarchy:
    /// the same walk as a read (read-modify-write of the counters), then the
    /// counter bump and re-tagging, plus one more `mee_crypto` for the
    /// re-encryption.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn write(
        &mut self,
        data_line: LineAddr,
        digest: u64,
        now: Cycles,
        dram: &mut DramModel,
    ) -> Result<MeeAccess, ModelError> {
        self.write_traced(data_line, digest, now, dram, &mut NullTracer)
    }

    /// [`Self::write`] with walk steps and MEE-cache evictions reported to
    /// `tracer` (observation only — outcomes are unchanged).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn write_traced(
        &mut self,
        data_line: LineAddr,
        digest: u64,
        now: Cycles,
        dram: &mut DramModel,
        tracer: &mut dyn Tracer,
    ) -> Result<MeeAccess, ModelError> {
        let mut access = self.walk(data_line, now, dram, tracer)?;
        self.stats.writes += 1;
        self.tree.write(data_line, digest)?;
        access.latency += self.timing.mee_crypto;
        Ok(access)
    }

    /// The MEE-cache set index of `data_line`'s versions line — the set a
    /// walk of this line contends on (the per-set metrics dimension).
    /// `None` when the line is outside the protected region.
    pub fn versions_set(&self, data_line: LineAddr) -> Option<usize> {
        let geo = self.tree.geometry();
        if !geo.covers(data_line.base()) {
            return None;
        }
        let path = geo.walk_path(data_line);
        let sets = self.cache.config().sets;
        Some(geo.version_line(path.version).set_index(sets))
    }

    /// The walk itself: versions level first, climbing only on misses.
    ///
    /// `now` is the requester's (global-order) arrival time: if the engine
    /// is still serving an earlier walk, the newcomer queues for the
    /// remainder, and either way the pipeline is held for `mee_service`.
    fn walk(
        &mut self,
        data_line: LineAddr,
        now: Cycles,
        dram: &mut DramModel,
        tracer: &mut dyn Tracer,
    ) -> Result<MeeAccess, ModelError> {
        let geo = *self.tree.geometry();
        if !geo.covers(data_line.base()) {
            return Err(ModelError::BadPhysAddr {
                pa: data_line.base(),
            });
        }
        let path = geo.walk_path(data_line);
        // One virtual call up front; `NullTracer` (the bench configuration)
        // then costs nothing per walk step.
        let tracing = tracer.enabled();
        // Queue behind an in-flight walk from another core.
        let queue_delay = self.busy_until.saturating_sub(now);
        self.busy_until = now.max(self.busy_until) + self.timing.mee_service;
        let mut latency = queue_delay + self.timing.mee_crypto;
        let mut filled = WalkList::new();
        let mut evicted = WalkList::new();

        // PD_Tag metadata: always consulted, latency fully overlapped with
        // the data fetch. It still occupies (even) cache sets and DRAM
        // bandwidth when it misses.
        let tag_line = geo.pd_tag_line(path.version);
        let tag_result = self.cache_access(tag_line);
        if tracing {
            tracer.record(
                now,
                EventKind::WalkStep {
                    level: WalkLevel::PdTag,
                    line: tag_line.raw(),
                    hit: tag_result.hit,
                },
            );
        }
        if !tag_result.hit {
            dram.access(tag_line);
            filled.push(tag_line);
            if let Some(e) = tag_result.evicted {
                if tracing {
                    tracer.record(now, EventKind::MeeEvict { line: e.raw() });
                }
                evicted.push(e);
            }
        }

        // Versions level: always checked first (paper challenge 2).
        let vline = geo.version_line(path.version);
        let v = self.cache_access(vline);
        if tracing {
            tracer.record(
                now,
                EventKind::WalkStep {
                    level: WalkLevel::Versions,
                    line: vline.raw(),
                    hit: v.hit,
                },
            );
        }
        if let Some(e) = v.evicted {
            if tracing {
                tracer.record(now, EventKind::MeeEvict { line: e.raw() });
            }
            evicted.push(e);
        }
        if v.hit {
            self.stats.hits_by_level[HitLevel::Versions.ladder_index()] += 1;
            return Ok(MeeAccess {
                hit_level: HitLevel::Versions,
                latency,
                filled,
                evicted,
            });
        }
        filled.push(vline);
        latency += dram.access(vline) + self.timing.walk_step;

        // Climb L0 → L1 → L2, stopping at the first cached level.
        for (level, hit_level, walk_level) in [
            (TreeLevel::L0, HitLevel::L0, WalkLevel::L0),
            (TreeLevel::L1, HitLevel::L1, WalkLevel::L1),
            (TreeLevel::L2, HitLevel::L2, WalkLevel::L2),
        ] {
            let node_line = geo.level_line(level, path.node_at(level));
            let r = self.cache_access(node_line);
            if tracing {
                tracer.record(
                    now,
                    EventKind::WalkStep {
                        level: walk_level,
                        line: node_line.raw(),
                        hit: r.hit,
                    },
                );
            }
            if let Some(e) = r.evicted {
                if tracing {
                    tracer.record(now, EventKind::MeeEvict { line: e.raw() });
                }
                evicted.push(e);
            }
            if r.hit {
                self.stats.hits_by_level[hit_level.ladder_index()] += 1;
                return Ok(MeeAccess {
                    hit_level,
                    latency,
                    filled,
                    evicted,
                });
            }
            filled.push(node_line);
            // Upper-level fetches overlap the previous one in the MEE
            // pipeline; only the incremental exposure is charged, but the
            // DRAM bank state still sees the fetch.
            dram.access(node_line);
            latency += self.timing.upper_level_fetch;
        }

        // Everything missed: compare against the on-die root. The root is
        // on-die and has no line address; the walk step reports line 0.
        if tracing {
            tracer.record(
                now,
                EventKind::WalkStep {
                    level: WalkLevel::Root,
                    line: 0,
                    hit: true,
                },
            );
        }
        latency += self.timing.root_check;
        self.stats.hits_by_level[HitLevel::Root.ladder_index()] += 1;
        Ok(MeeAccess {
            hit_level: HitLevel::Root,
            latency,
            filled,
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_cache::policy::{TreePlru, TrueLru};
    use mee_mem::{DramConfig, PhysLayout};
    use mee_types::{PAGE_SIZE, VERSION_BLOCK_SIZE};

    /// Monotonic arrival clock for sequential single-requester tests: far
    /// enough apart that pipeline queueing never triggers.
    #[derive(Debug)]
    struct Clock(u64);
    impl Clock {
        fn new() -> Self {
            Clock(0)
        }
        fn tick(&mut self) -> Cycles {
            self.0 += 1_000_000;
            Cycles::new(self.0)
        }
    }

    fn setup() -> (Mee, DramModel, LineAddr) {
        setup_with(TimingConfig::noiseless())
    }

    fn setup_with(timing: TimingConfig) -> (Mee, DramModel, LineAddr) {
        let layout = PhysLayout::new(1 << 20, 8 << 20).unwrap();
        let geo = TreeGeometry::new(layout.prm_data(), layout.prm_tree()).unwrap();
        let dram = DramModel::new(DramConfig {
            jitter_std: timing.dram_jitter_std,
            ..DramConfig::default()
        })
        .unwrap();
        let mee = Mee::new(
            geo,
            0xfeed,
            CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap(),
            TreePlru::new(),
            timing,
        );
        let base = layout.prm_data().base().line();
        (mee, dram, base)
    }

    #[test]
    fn cold_read_walks_to_root() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        let r = mee.read(base, clk.tick(), &mut dram).unwrap();
        assert_eq!(r.access.hit_level, HitLevel::Root);
        assert_eq!(r.digest, 0);
        // Fills: PD_Tag + versions + L0 + L1 + L2.
        assert_eq!(r.access.filled.len(), 5);
    }

    #[test]
    fn warm_read_hits_versions() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        let r = mee.read(base, clk.tick(), &mut dram).unwrap();
        assert_eq!(r.access.hit_level, HitLevel::Versions);
        assert!(r.access.filled.is_empty());
        assert_eq!(mee.stats().hits_at(HitLevel::Versions), 1);
        assert_eq!(mee.stats().hits_at(HitLevel::Root), 1);
        assert_eq!(mee.stats().reads, 2);
    }

    #[test]
    fn latency_ladder_matches_nominal() {
        let mut clk = Clock::new();
        // With zero jitter, measured latencies must sit near the nominal
        // TimingConfig ladder (minus the data fetch + hierarchy the machine
        // adds).
        let (mut mee, mut dram, base) = setup();
        let t = TimingConfig::noiseless();
        let cold = mee.read(base, clk.tick(), &mut dram).unwrap();
        let nominal_root =
            t.protected_root_latency() - t.uncached_dram_read() + t.mee_crypto - t.mee_crypto;
        // Tolerate DRAM row-state variation.
        let diff = cold.access.latency.raw() as i64 - nominal_root.raw() as i64;
        assert!(diff.abs() < 120, "root walk latency off by {diff}");

        let warm = mee.read(base, clk.tick(), &mut dram).unwrap();
        assert_eq!(warm.access.latency, t.mee_crypto);
    }

    #[test]
    fn same_block_shares_versions_line() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        // 512 B block = 8 lines; line 7 shares the versions line.
        let sibling = LineAddr::new(base.raw() + 7);
        let r = mee.read(sibling, clk.tick(), &mut dram).unwrap();
        assert_eq!(r.access.hit_level, HitLevel::Versions);
    }

    #[test]
    fn next_block_hits_l0() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        // Next 512 B block: new versions line, same L0 line.
        let next = LineAddr::new(base.raw() + (VERSION_BLOCK_SIZE / 64) as u64);
        let r = mee.read(next, clk.tick(), &mut dram).unwrap();
        assert_eq!(r.access.hit_level, HitLevel::L0);
    }

    #[test]
    fn next_page_hits_l1() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        // 4 KiB away: new versions + L0 lines, same L1.
        let next = LineAddr::new(base.raw() + (PAGE_SIZE / 64) as u64);
        let r = mee.read(next, clk.tick(), &mut dram).unwrap();
        assert_eq!(r.access.hit_level, HitLevel::L1);
    }

    #[test]
    fn stride_32k_hits_l2_and_256k_hits_root() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        let at_32k = LineAddr::new(base.raw() + (32 << 10) / 64);
        assert_eq!(
            mee.read(at_32k, clk.tick(), &mut dram).unwrap().access.hit_level,
            HitLevel::L2
        );
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        let at_256k = LineAddr::new(base.raw() + (256 << 10) / 64);
        assert_eq!(
            mee.read(at_256k, clk.tick(), &mut dram).unwrap().access.hit_level,
            HitLevel::Root
        );
    }

    #[test]
    fn ladder_latencies_strictly_increase() {
        let mut clk = Clock::new();
        let strides: [u64; 4] = [512 / 64, 4096 / 64, (32 << 10) / 64, (256 << 10) / 64];
        let mut prev = Cycles::ZERO;
        for (i, stride) in strides.iter().enumerate() {
            let (mut mee, mut dram, base) = setup();
            mee.read(base, clk.tick(), &mut dram).unwrap();
            let lat = mee
                .read(LineAddr::new(base.raw() + stride), clk.tick(), &mut dram)
                .unwrap()
                .access
                .latency;
            assert!(lat > prev, "ladder step {i} not increasing: {lat} <= {prev}");
            prev = lat;
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        let w = mee.write(base, 0xabcd, clk.tick(), &mut dram).unwrap();
        assert_eq!(w.hit_level, HitLevel::Root);
        let r = mee.read(base, clk.tick(), &mut dram).unwrap();
        assert_eq!(r.digest, 0xabcd);
        assert_eq!(mee.stats().writes, 1);
    }

    #[test]
    fn tamper_detected_on_deep_walk_only() {
        let mut clk = Clock::new();
        // Tamper an L0 counter. While the versions line is cached the walk
        // stops at the versions level and the tamper is NOT noticed —
        // exactly the cached-implies-verified semantics of the real MEE.
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        mee.tree_mut().tamper_counter(TreeLevel::L0, 0);
        assert!(mee.read(base, clk.tick(), &mut dram).is_ok(), "versions hit must trust cache");
        // After flushing the MEE cache the full walk re-verifies and fails.
        let mut fresh = setup();
        fresh.0.read(base, clk.tick(), &mut fresh.1).unwrap();
        fresh.0.tree_mut().tamper_counter(TreeLevel::L0, 0);
        // Force a full walk by building a new MEE sharing nothing cached:
        // simplest is a second cold engine over the same tampered state —
        // instead, flush via invalidating every line.
        let (mut mee2, mut dram2, base2) = setup();
        mee2.read(base2, clk.tick(), &mut dram2).unwrap();
        mee2.tree_mut().tamper_counter(TreeLevel::Version, 0);
        // Versions-level check (PD_Tag) is always performed:
        assert!(mee2.read(base2, clk.tick(), &mut dram2).is_err());
    }

    #[test]
    fn foreign_line_rejected() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, _) = setup();
        assert!(mee.read(LineAddr::new(0), clk.tick(), &mut dram).is_err());
        assert!(mee.write(LineAddr::new(0), 1, clk.tick(), &mut dram).is_err());
    }

    #[test]
    fn versions_fills_odd_sets_tags_even() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        let geo = *mee.geometry();
        let sets = mee.cache().config().sets;
        let path = geo.walk_path(base);
        let vset = geo.version_line(path.version).set_index(sets);
        let tset = geo.pd_tag_line(path.version).set_index(sets);
        assert_eq!(vset % 2, 1);
        assert_eq!(tset % 2, 0);
        assert!(mee.cache().contains(geo.version_line(path.version)));
        assert!(mee.cache().contains(geo.pd_tag_line(path.version)));
    }

    #[test]
    fn fill_mask_partitions_cache() {
        let mut clk = Clock::new();
        let layout = PhysLayout::new(1 << 20, 8 << 20).unwrap();
        let geo = TreeGeometry::new(layout.prm_data(), layout.prm_tree()).unwrap();
        let mut dram = DramModel::new(DramConfig {
            jitter_std: 0.0,
            ..DramConfig::default()
        })
        .unwrap();
        let mut mee = Mee::new(
            geo,
            1,
            CacheConfig::from_capacity(64 * 1024, 8, 64).unwrap(),
            TrueLru::new(),
            TimingConfig::noiseless(),
        );
        mee.set_fill_mask((0..8).map(|w| w < 2).collect());
        let base = layout.prm_data().base().line();
        mee.read(base, clk.tick(), &mut dram).unwrap();
        // Each touched set holds at most 2 lines ever.
        for _ in 0..100 {
            mee.read(base, clk.tick(), &mut dram).unwrap();
        }
        let sets = mee.cache().config().sets;
        for s in 0..sets {
            assert!(mee.cache().set_occupancy(s) <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn bad_mask_length_panics() {
        let (mut mee, _, _) = setup();
        mee.set_fill_mask(vec![true; 3]);
    }

    #[test]
    fn stats_histogram_sums_to_reads_plus_writes() {
        let mut clk = Clock::new();
        let (mut mee, mut dram, base) = setup();
        for i in 0..50u64 {
            mee.read(LineAddr::new(base.raw() + i * 8), clk.tick(), &mut dram).unwrap();
        }
        mee.write(base, 9, clk.tick(), &mut dram).unwrap();
        let s = mee.stats();
        let total: u64 = s.hits_by_level.iter().sum();
        assert_eq!(total, s.reads + s.writes);
    }
}

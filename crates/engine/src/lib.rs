#![warn(missing_docs)]
//! The Memory Encryption Engine (MEE).
//!
//! The MEE sits in the memory controller (paper Figure 1). Every DRAM access
//! that targets the protected data region is intercepted: the data line is
//! decrypted and its integrity verified against the counter tree, walking
//! *bottom-up from the versions level* and stopping at the first tree line
//! that hits in the **MEE cache** — a 64 KiB, 8-way, 128-set cache shared by
//! all cores (the paper's reverse-engineered organization, which is the
//! default here but fully configurable so the reverse-engineering
//! experiments have something real to discover).
//!
//! Timing model (all constants in [`mee_types::TimingConfig`]):
//!
//! * every protected access pays `mee_crypto` (AES-CTR decrypt + MAC check,
//!   pipelined with the data fetch);
//! * a versions-level MEE-cache **hit** adds nothing — this is the fast
//!   "≈480 cycle" case of §5.4;
//! * a versions **miss** adds a serial DRAM fetch of the versions line plus
//!   `walk_step` — the "≈750 cycle" case;
//! * each further level the walk climbs adds `upper_level_fetch` (those
//!   fetches overlap the previous ones in the real pipeline);
//! * missing L2 as well adds `root_check` for the on-die root comparison.
//!
//! The `PD_Tag` metadata line is touched on every versions-level operation
//! and occupies (even-indexed) MEE-cache sets, but its fetch is fully
//! overlapped with the data-line fetch and exposes no extra latency.
//!
//! # Example
//!
//! ```
//! use mee_cache::{CacheConfig, policy::TreePlru};
//! use mee_engine::{HitLevel, Mee};
//! use mee_mem::{DramConfig, DramModel, PhysLayout};
//! use mee_tree::TreeGeometry;
//! use mee_types::TimingConfig;
//!
//! # fn main() -> Result<(), mee_types::ModelError> {
//! let layout = PhysLayout::new(1 << 20, 4 << 20)?;
//! let geo = TreeGeometry::new(layout.prm_data(), layout.prm_tree())?;
//! let mut dram = DramModel::new(DramConfig::default())?;
//! let mut mee = Mee::new(
//!     geo,
//!     0x5eed,
//!     CacheConfig::from_capacity(64 * 1024, 8, 64)?,
//!     TreePlru::new(),
//!     TimingConfig::default(),
//! );
//!
//! let line = layout.prm_data().base().line();
//! let cold = mee.read(line, mee_types::Cycles::new(1_000), &mut dram)?;
//! let warm = mee.read(line, mee_types::Cycles::new(500_000), &mut dram)?;
//! assert_eq!(warm.access.hit_level, HitLevel::Versions);
//! assert!(warm.access.latency < cold.access.latency);
//! # Ok(())
//! # }
//! ```

mod engine;

pub use engine::{HitLevel, Mee, MeeAccess, MeeRead, MeeStats};

//! The hook that replays a [`FaultPlan`] against the machine.

use mee_machine::{HookSchedule, Machine, StepHook};
use mee_types::{Cycles, ModelError};

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// A [`StepHook`] that applies a [`FaultPlan`] to the machine as global
/// time passes.
///
/// The deterministic scheduler calls [`StepHook::before_step`] with the
/// global clock (the chosen actor's core time) before every step; the
/// injector fires every event whose time has been reached, in plan order,
/// and records what it applied. Events are applied exactly once, so the
/// injector is single-use — build a fresh one (the plan is `Clone`) to
/// replay.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    applied: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An injector that will replay `plan` from the beginning.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            cursor: 0,
            applied: Vec::new(),
        }
    }

    /// Events applied so far, in firing order.
    #[must_use]
    pub fn applied(&self) -> &[FaultEvent] {
        &self.applied
    }

    /// Events still waiting for their firing time.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.plan.len() - self.cursor
    }

    /// The plan this injector replays.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn apply(machine: &mut Machine, event: FaultEvent) -> Result<(), ModelError> {
        match event.kind {
            FaultKind::Preempt { core, duration } => {
                machine.preempt_until(core, event.at + duration);
            }
            FaultKind::Migrate { core, downtime } => {
                machine.flush_private_caches(core);
                machine.preempt_until(core, event.at + downtime);
            }
            FaultKind::EpcEvict { proc, page } => {
                machine.epc_evict_page(proc, page)?;
            }
            FaultKind::ClockDrift { core, skew } => {
                machine.skew_clock(core, skew);
            }
            FaultKind::MeeSetThrash { set } => {
                machine.thrash_mee_set(set);
            }
            FaultKind::MeeFlush => machine.flush_mee_cache(),
        }
        machine.trace_fault(event.kind.label(), event.kind.trace_arg(), event.at);
        Ok(())
    }
}

impl StepHook for FaultInjector {
    fn before_step(&mut self, machine: &mut Machine, now: Cycles) -> Result<(), ModelError> {
        while let Some(&event) = self.plan.events().get(self.cursor) {
            if event.at > now {
                break;
            }
            self.cursor += 1;
            Self::apply(machine, event)?;
            self.applied.push(event);
        }
        Ok(())
    }

    /// The injector is a pure no-op until its next pending event's time,
    /// and idle once the plan drains — every effect it applies is keyed
    /// off `event.at`, not the observed `now`, so the event-driven
    /// scheduler may skip the silent calls without changing the replay.
    fn schedule(&self) -> HookSchedule {
        match self.plan.events().get(self.cursor) {
            Some(event) => HookSchedule::At(event.at),
            None => HookSchedule::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_machine::{CoreId, MachineConfig};
    use mee_mem::AddressSpaceKind;
    use mee_types::VirtAddr;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    #[test]
    fn fires_due_events_once_and_in_order() {
        let c0 = CoreId::new(0);
        let plan = FaultPlan::none()
            .with_event(
                Cycles::new(1_000),
                FaultKind::Preempt {
                    core: c0,
                    duration: Cycles::new(5_000),
                },
            )
            .with_event(
                Cycles::new(2_000),
                FaultKind::ClockDrift {
                    core: c0,
                    skew: Cycles::new(300),
                },
            )
            .with_event(Cycles::new(90_000), FaultKind::MeeFlush);
        let mut m = machine();
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.pending(), 3);

        // Nothing due yet.
        inj.before_step(&mut m, Cycles::new(500)).unwrap();
        assert!(inj.applied().is_empty());

        // Both early events fire in one call, in order; the preemption
        // parks the core at event time + duration, then the drift adds on.
        inj.before_step(&mut m, Cycles::new(2_500)).unwrap();
        assert_eq!(inj.applied().len(), 2);
        assert_eq!(inj.applied()[0].at, Cycles::new(1_000));
        assert_eq!(m.core_now(c0), Cycles::new(6_300));
        assert_eq!(inj.pending(), 1);

        // Re-observing the same time does not re-fire anything.
        inj.before_step(&mut m, Cycles::new(2_500)).unwrap();
        assert_eq!(inj.applied().len(), 2);
    }

    #[test]
    fn migrate_flushes_private_caches_and_parks_the_core() {
        let c0 = CoreId::new(0);
        let mut m = machine();
        let p = m.create_process(AddressSpaceKind::Enclave);
        let base = VirtAddr::new(0x40000);
        m.map_pages(p, base, 1).unwrap();
        m.read(c0, p, base).unwrap();
        let line = m.translate(p, base).unwrap().line();
        assert!(m.core_caches_line(c0, line));

        let plan = FaultPlan::none().with_event(
            Cycles::new(100),
            FaultKind::Migrate {
                core: c0,
                downtime: Cycles::new(9_000),
            },
        );
        let mut inj = FaultInjector::new(plan);
        inj.before_step(&mut m, Cycles::new(150)).unwrap();
        assert!(!m.core_caches_line(c0, line), "private copies dropped");
        assert!(m.core_now(c0) >= Cycles::new(9_100), "downtime charged");
    }

    #[test]
    fn schedule_tracks_the_next_pending_event() {
        let plan = FaultPlan::none()
            .with_event(Cycles::new(1_000), FaultKind::MeeFlush)
            .with_event(Cycles::new(5_000), FaultKind::MeeFlush);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.schedule(), HookSchedule::At(Cycles::new(1_000)));

        let mut m = machine();
        inj.before_step(&mut m, Cycles::new(1_500)).unwrap();
        assert_eq!(inj.schedule(), HookSchedule::At(Cycles::new(5_000)));
        inj.before_step(&mut m, Cycles::new(9_000)).unwrap();
        assert_eq!(inj.schedule(), HookSchedule::Idle);
    }

    #[test]
    fn epc_evict_errors_propagate_from_the_hook() {
        let mut m = machine();
        let p = m.create_process(AddressSpaceKind::Enclave);
        let plan = FaultPlan::none().with_event(
            Cycles::new(10),
            FaultKind::EpcEvict {
                proc: p,
                page: VirtAddr::new(0x7000_0000), // never mapped
            },
        );
        let mut inj = FaultInjector::new(plan);
        let err = inj.before_step(&mut m, Cycles::new(20));
        assert!(matches!(err, Err(ModelError::PageFault { .. })));
    }
}

#![warn(missing_docs)]
//! Deterministic, seed-driven fault injection for the simulated machine.
//!
//! The covert channel of the paper runs on a live machine: the OS preempts
//! the spy mid-window (CacheZoom-style interrupt storms), the scheduler
//! migrates threads across cores, the SGX driver evicts EPC pages, timers
//! drift between hyperthreads, and co-runners thrash the very MEE-cache
//! sets the channel modulates. This crate turns that adversity into a
//! *replayable script*: a [`FaultPlan`] is a sorted list of
//! `(cycle, FaultKind)` events, and a [`FaultInjector`] is a
//! [`StepHook`](mee_machine::StepHook) that applies every due event just
//! before the scheduler steps an actor, in global clock order.
//!
//! Because plans are generated from a seed (split per session with
//! [`mee_rng::stream_seed`]) and applied at deterministic global times,
//! the same seed and plan reproduce bit-identical transcripts — faults
//! included. That is what makes the robustness experiments in the parent
//! crate auditable: a "heavy" run can be replayed cycle-for-cycle.
//!
//! # Example
//!
//! ```
//! use mee_faults::{FaultInjector, FaultIntensity, FaultPlan, FaultTargets};
//! use mee_machine::CoreId;
//! use mee_types::Cycles;
//!
//! let targets = FaultTargets::cores(CoreId::new(0), CoreId::new(1));
//! let plan = FaultPlan::generate(
//!     FaultIntensity::Light,
//!     &targets,
//!     Cycles::new(100_000),
//!     Cycles::new(2_000_000),
//!     2019,
//! );
//! assert!(!plan.is_empty());
//! let injector = FaultInjector::new(plan.clone());
//! // Same seed, same plan — replayable by construction.
//! assert_eq!(
//!     plan,
//!     FaultPlan::generate(
//!         FaultIntensity::Light,
//!         &targets,
//!         Cycles::new(100_000),
//!         Cycles::new(2_000_000),
//!         2019,
//!     )
//! );
//! assert_eq!(injector.applied().len(), 0);
//! ```

mod injector;
mod plan;

pub use injector::FaultInjector;
pub use plan::{FaultEvent, FaultIntensity, FaultKind, FaultPlan, FaultTargets};

//! Replayable fault plans: what goes wrong, and when.

use mee_machine::{CoreId, ProcId};
use mee_rng::{stream_seed, Rng};
use mee_types::{Cycles, VirtAddr};

/// One kind of structured adversity the injector can apply to the machine.
///
/// Every variant is something the OS, the scheduler, or a co-runner does
/// *to* the attack without its cooperation; none of them require the spy or
/// the trojan to misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An OS preemption burst (interrupt storm, scheduler tick): `core`
    /// executes nothing for `duration` cycles starting at the event time.
    /// A core that was sleeping past the burst absorbs it for free.
    Preempt {
        /// The victim core.
        core: CoreId,
        /// How long the core is descheduled.
        duration: Cycles,
    },
    /// The scheduler migrates the thread on `core` off and back: its
    /// private L1/L2 contents are lost and the thread is off-core for
    /// `downtime` cycles. The channel's shared state in the LLC and the
    /// MEE cache survives, which is why the attack tolerates migrations.
    Migrate {
        /// The core whose thread bounces.
        core: CoreId,
        /// Round-trip scheduling delay.
        downtime: Cycles,
    },
    /// The SGX driver evicts the enclave page at `page` from the EPC and
    /// immediately re-loads it (`EWB` + `ELDU`): every line of the page
    /// leaves the whole cache hierarchy and the page's version/PD_Tag
    /// lines leave the MEE cache, so the next access pays a deep
    /// integrity-tree walk.
    EpcEvict {
        /// The enclave that owns the page.
        proc: ProcId,
        /// Page-aligned virtual address of the evicted page.
        page: VirtAddr,
    },
    /// Transient inter-core timer drift: `core`'s clock is skewed forward
    /// by `skew` cycles, displacing whatever it does next — even a window
    /// sleep. Models the hyperthread timer mailbox lagging.
    ClockDrift {
        /// The core whose timeline slips.
        core: CoreId,
        /// Size of the slip.
        skew: Cycles,
    },
    /// A co-runner's eviction set lands in MEE-cache set `set`, knocking
    /// out every resident line of that set (including the channel's
    /// version line, if that is the set being modulated).
    MeeSetThrash {
        /// The MEE-cache set index being thrashed.
        set: usize,
    },
    /// Whole-MEE-cache flush: heavy enclave paging or an integrity-tree
    /// sweep drops every cached tree line at once.
    MeeFlush,
}

impl FaultKind {
    /// Short stable label for logs and summary tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Preempt { .. } => "preempt",
            FaultKind::Migrate { .. } => "migrate",
            FaultKind::EpcEvict { .. } => "epc-evict",
            FaultKind::ClockDrift { .. } => "drift",
            FaultKind::MeeSetThrash { .. } => "set-thrash",
            FaultKind::MeeFlush => "mee-flush",
        }
    }

    /// The kind-specific argument carried into the event trace alongside
    /// [`Self::label`]: the victim core, the thrashed MEE set, the evicted
    /// page's raw virtual address, or `0` for [`FaultKind::MeeFlush`].
    #[must_use]
    pub fn trace_arg(&self) -> u64 {
        match self {
            FaultKind::Preempt { core, .. }
            | FaultKind::Migrate { core, .. }
            | FaultKind::ClockDrift { core, .. } => core.index() as u64,
            FaultKind::EpcEvict { page, .. } => page.raw(),
            FaultKind::MeeSetThrash { set } => *set as u64,
            FaultKind::MeeFlush => 0,
        }
    }
}

/// A [`FaultKind`] scheduled at a global cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global time at which the fault fires. The injector applies it just
    /// before the first scheduler step whose global clock reaches `at`.
    pub at: Cycles,
    /// What happens.
    pub kind: FaultKind,
}

/// How much adversity a generated plan contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultIntensity {
    /// No faults at all — the baseline.
    Off,
    /// Occasional short preemptions, mild drift, a rare MEE flush. The
    /// channel should shrug this off with at most a few retransmissions.
    Light,
    /// Frequent long preemption bursts, a migration, sustained drift,
    /// co-runner set thrashing, EPC evictions, and repeated MEE flushes.
    /// Raw (non-recovering) BER degrades several-fold; the recovering
    /// stack must fall back to wider windows to converge.
    Heavy,
}

impl FaultIntensity {
    /// All intensities, in sweep order.
    pub const ALL: [FaultIntensity; 3] = [
        FaultIntensity::Off,
        FaultIntensity::Light,
        FaultIntensity::Heavy,
    ];

    /// Stable label for tables and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultIntensity::Off => "off",
            FaultIntensity::Light => "light",
            FaultIntensity::Heavy => "heavy",
        }
    }
}

/// What a generated plan aims at: the attack cores plus (optionally) the
/// enclave page and MEE-cache set the channel depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTargets {
    /// Core running the spy (receiver) — preferred preemption victim,
    /// since a late probe is what actually corrupts bits.
    pub spy_core: CoreId,
    /// Core running the trojan (sender).
    pub trojan_core: CoreId,
    /// Enclave and page hosting the monitored address, for EPC evictions.
    /// `None` disables [`FaultKind::EpcEvict`] in generated plans.
    pub victim_page: Option<(ProcId, VirtAddr)>,
    /// MEE-cache set index the channel modulates, for targeted thrashing.
    /// `None` disables [`FaultKind::MeeSetThrash`] in generated plans.
    pub mee_set: Option<usize>,
}

impl FaultTargets {
    /// Targets with only the two attack cores known (no EPC eviction or
    /// set thrashing in generated plans).
    #[must_use]
    pub fn cores(spy_core: CoreId, trojan_core: CoreId) -> Self {
        FaultTargets {
            spy_core,
            trojan_core,
            victim_page: None,
            mee_set: None,
        }
    }

    /// Adds the enclave page hosting the monitored address.
    #[must_use]
    pub fn with_victim_page(mut self, proc: ProcId, page: VirtAddr) -> Self {
        self.victim_page = Some((proc, page));
        self
    }

    /// Adds the MEE-cache set the channel modulates.
    #[must_use]
    pub fn with_mee_set(mut self, set: usize) -> Self {
        self.mee_set = Some(set);
        self
    }
}

/// A replayable script of fault events, kept sorted by firing time.
///
/// Plans are plain data: build one by hand for a surgical test, or let
/// [`FaultPlan::generate`] draw a structured random plan from a seed.
/// Events at equal times keep their insertion order, so construction is
/// deterministic end to end.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan — a no-op injector.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// A plan from explicit events; sorts them by firing time (stable, so
    /// same-cycle events keep the given order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at.raw());
        FaultPlan { events }
    }

    /// Returns the plan with one more event, re-sorted.
    #[must_use]
    pub fn with_event(mut self, at: Cycles, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at.raw());
        self
    }

    /// Returns the plan with every firing time moved `offset` cycles later
    /// — for re-aiming a plan generated before the session start time was
    /// known.
    #[must_use]
    pub fn shifted(mut self, offset: Cycles) -> Self {
        for e in &mut self.events {
            e.at += offset;
        }
        self
    }

    /// The scheduled events, sorted by firing time.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a structured random plan over `[start, start + span)` from
    /// `seed`.
    ///
    /// Event *mix* is fixed by `intensity` (see [`FaultIntensity`]); event
    /// *times and magnitudes* are drawn uniformly from the seeded stream.
    /// Event counts scale with `span`, so longer transmissions face
    /// proportionally more adversity. Preemption bursts favor the spy core
    /// — a late probe, not a late sweep, is what corrupts a bit.
    #[must_use]
    pub fn generate(
        intensity: FaultIntensity,
        targets: &FaultTargets,
        start: Cycles,
        span: Cycles,
        seed: u64,
    ) -> FaultPlan {
        let mut rng = Rng::seed_from_u64(seed);
        let window = span.raw().max(1);
        let count = |per: u64, min: u64| (window / per).max(min);
        let mut events = Vec::new();
        let push = |rng: &mut Rng, events: &mut Vec<FaultEvent>, kind: FaultKind| {
            let at = Cycles::new(start.raw() + rng.random_range(0..window));
            events.push(FaultEvent { at, kind });
        };
        match intensity {
            FaultIntensity::Off => {}
            FaultIntensity::Light => {
                for _ in 0..count(1_200_000, 1) {
                    let kind = FaultKind::Preempt {
                        core: targets.spy_core,
                        duration: Cycles::new(rng.random_range(2_000..=8_000u64)),
                    };
                    push(&mut rng, &mut events, kind);
                }
                for _ in 0..count(800_000, 1) {
                    let kind = FaultKind::ClockDrift {
                        core: targets.trojan_core,
                        skew: Cycles::new(rng.random_range(200..=600u64)),
                    };
                    push(&mut rng, &mut events, kind);
                }
                for _ in 0..count(5_000_000, 1) {
                    push(&mut rng, &mut events, FaultKind::MeeFlush);
                }
            }
            // The heavy mix is a dense but *finite* storm: short
            // preemption bursts and clock skews land inside the spy's
            // timed bracket and inflate the measured latency, while MEE
            // set thrashes evict the monitored versions line mid-window
            // (a `0` bit is fragile to that for its whole window). No
            // single window width out-runs a process this dense — which
            // is the point: a non-recovering transmission is shredded,
            // and the recovering stack survives by backing off, widening
            // its windows, and retransmitting until the storm passes.
            FaultIntensity::Heavy => {
                for _ in 0..count(150_000, 3) {
                    let kind = FaultKind::Preempt {
                        core: targets.spy_core,
                        duration: Cycles::new(rng.random_range(2_000..=8_000u64)),
                    };
                    push(&mut rng, &mut events, kind);
                }
                for _ in 0..count(1_200_000, 1) {
                    let kind = FaultKind::Preempt {
                        core: targets.trojan_core,
                        duration: Cycles::new(rng.random_range(2_000..=8_000u64)),
                    };
                    push(&mut rng, &mut events, kind);
                }
                let kind = FaultKind::Migrate {
                    core: targets.spy_core,
                    downtime: Cycles::new(rng.random_range(12_000..=25_000u64)),
                };
                push(&mut rng, &mut events, kind);
                for i in 0..count(60_000, 2) {
                    let core = if i % 2 == 0 {
                        targets.spy_core
                    } else {
                        targets.trojan_core
                    };
                    let kind = FaultKind::ClockDrift {
                        core,
                        skew: Cycles::new(rng.random_range(400..=1_200u64)),
                    };
                    push(&mut rng, &mut events, kind);
                }
                for _ in 0..count(2_000_000, 1) {
                    push(&mut rng, &mut events, FaultKind::MeeFlush);
                }
                if let Some(set) = targets.mee_set {
                    for _ in 0..count(300_000, 2) {
                        push(&mut rng, &mut events, FaultKind::MeeSetThrash { set });
                    }
                }
                if let Some((proc, page)) = targets.victim_page {
                    for _ in 0..2 {
                        push(&mut rng, &mut events, FaultKind::EpcEvict { proc, page });
                    }
                }
            }
        }
        FaultPlan::new(events)
    }

    /// Per-session plan: like [`FaultPlan::generate`] but seeded with
    /// [`stream_seed`]`(root_seed, session)`, so a sweep gives every
    /// session an independent yet replayable fault stream — the same
    /// splitting discipline the sweep runner uses for session seeds.
    #[must_use]
    pub fn for_session(
        intensity: FaultIntensity,
        targets: &FaultTargets,
        start: Cycles,
        span: Cycles,
        root_seed: u64,
        session: u64,
    ) -> FaultPlan {
        FaultPlan::generate(intensity, targets, start, span, stream_seed(root_seed, session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> FaultTargets {
        FaultTargets::cores(CoreId::new(0), CoreId::new(1)).with_mee_set(3)
    }

    #[test]
    fn new_sorts_and_with_event_keeps_sorted() {
        let drift = FaultKind::ClockDrift {
            core: CoreId::new(0),
            skew: Cycles::new(100),
        };
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: Cycles::new(500),
                kind: FaultKind::MeeFlush,
            },
            FaultEvent {
                at: Cycles::new(100),
                kind: drift,
            },
        ])
        .with_event(Cycles::new(300), FaultKind::MeeSetThrash { set: 1 });
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.raw()).collect();
        assert_eq!(times, vec![100, 300, 500]);
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let t = targets();
        let a = FaultPlan::generate(
            FaultIntensity::Heavy,
            &t,
            Cycles::new(50_000),
            Cycles::new(3_000_000),
            2019,
        );
        let b = FaultPlan::generate(
            FaultIntensity::Heavy,
            &t,
            Cycles::new(50_000),
            Cycles::new(3_000_000),
            2019,
        );
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        assert!(a
            .events()
            .iter()
            .all(|e| e.at >= Cycles::new(50_000) && e.at < Cycles::new(3_050_000)));
        assert!(
            a.events().windows(2).all(|w| w[0].at <= w[1].at),
            "events sorted"
        );
    }

    #[test]
    fn off_is_empty_and_intensities_scale() {
        let t = targets();
        let span = Cycles::new(4_000_000);
        let off = FaultPlan::generate(FaultIntensity::Off, &t, Cycles::ZERO, span, 7);
        let light = FaultPlan::generate(FaultIntensity::Light, &t, Cycles::ZERO, span, 7);
        let heavy = FaultPlan::generate(FaultIntensity::Heavy, &t, Cycles::ZERO, span, 7);
        assert!(off.is_empty());
        assert!(!light.is_empty());
        assert!(
            heavy.len() > light.len(),
            "heavy ({}) should out-schedule light ({})",
            heavy.len(),
            light.len()
        );
    }

    #[test]
    fn session_streams_are_independent() {
        let t = targets();
        let span = Cycles::new(2_000_000);
        let s0 = FaultPlan::for_session(FaultIntensity::Heavy, &t, Cycles::ZERO, span, 2019, 0);
        let s1 = FaultPlan::for_session(FaultIntensity::Heavy, &t, Cycles::ZERO, span, 2019, 1);
        assert_ne!(s0, s1, "sessions draw from split streams");
        let again = FaultPlan::for_session(FaultIntensity::Heavy, &t, Cycles::ZERO, span, 2019, 0);
        assert_eq!(s0, again);
    }

    #[test]
    fn optional_targets_gate_their_fault_kinds() {
        let bare = FaultTargets::cores(CoreId::new(0), CoreId::new(1));
        let plan = FaultPlan::generate(
            FaultIntensity::Heavy,
            &bare,
            Cycles::ZERO,
            Cycles::new(3_000_000),
            11,
        );
        assert!(plan.events().iter().all(|e| !matches!(
            e.kind,
            FaultKind::EpcEvict { .. } | FaultKind::MeeSetThrash { .. }
        )));
    }

    #[test]
    fn shifted_moves_every_event() {
        let plan = FaultPlan::none().with_event(Cycles::new(10), FaultKind::MeeFlush);
        let moved = plan.shifted(Cycles::new(990));
        assert_eq!(moved.events()[0].at, Cycles::new(1_000));
    }
}

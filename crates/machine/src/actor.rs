//! Actors and the deterministic scheduler.
//!
//! The trojan, the spy, and the noise programs each run on their own core.
//! Concurrency is modeled as a discrete-event interleaving: at every turn,
//! the runnable actor whose core clock is furthest behind executes one step.
//! Because all shared state (LLC, MEE cache, DRAM banks) is touched in
//! global clock order, the interleaving is deterministic for a given seed —
//! every experiment in the paper can be replayed exactly.
//!
//! Actors should keep steps *small* (a handful of instructions): a step
//! executes atomically, so a step that issued thousands of instructions
//! could observe or mutate shared state out of clock order with respect to
//! other cores.

use mee_types::{Cycles, ModelError, VirtAddr};

use crate::config::EngineKind;
use crate::events::EventQueue;
use crate::machine::{CoreId, Machine, ProcId};

/// What an actor's step reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The actor has more work; schedule it again.
    Running,
    /// The actor finished; do not step it again.
    Done,
}

/// A program running on one core of the simulated machine.
pub trait Actor {
    /// Executes a small batch of instructions.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] raised by the instructions issued.
    fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError>;
}

/// An actor bound to a core and a process.
pub struct ActorBinding {
    /// The core the actor runs on (one actor per core).
    pub core: CoreId,
    /// The process providing the actor's address space.
    pub proc: ProcId,
    /// The actor itself.
    pub actor: Box<dyn Actor>,
}

impl std::fmt::Debug for ActorBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorBinding")
            .field("core", &self.core)
            .field("proc", &self.proc)
            .finish_non_exhaustive()
    }
}

/// An actor's view of its core: every instruction primitive, bound to the
/// actor's core and process.
pub struct CoreHandle<'m> {
    machine: &'m mut Machine,
    core: CoreId,
    proc: ProcId,
}

impl<'m> CoreHandle<'m> {
    /// Creates a handle (normally done by the scheduler or
    /// [`Machine`]-driving test code).
    pub fn new(machine: &'m mut Machine, core: CoreId, proc: ProcId) -> Self {
        CoreHandle {
            machine,
            core,
            proc,
        }
    }

    /// The bound core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The bound process.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// The core's local clock (harness bookkeeping; in-character code should
    /// use [`Self::timer_read`] or [`Self::rdtsc`]).
    pub fn now(&self) -> Cycles {
        self.machine.core_now(self.core)
    }

    /// Read-only access to the whole machine (assertions in tests).
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Loads `va`; returns elapsed cycles. See [`Machine::read`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn read(&mut self, va: VirtAddr) -> Result<Cycles, ModelError> {
        self.machine.read(self.core, self.proc, va)
    }

    /// Stores to `va`. See [`Machine::write`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn write(&mut self, va: VirtAddr, digest: u64) -> Result<Cycles, ModelError> {
        self.machine.write(self.core, self.proc, va, digest)
    }

    /// Flushes `va` from the on-chip hierarchy. See [`Machine::clflush`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn clflush(&mut self, va: VirtAddr) -> Result<Cycles, ModelError> {
        self.machine.clflush(self.core, self.proc, va)
    }

    /// Read-then-flush sweep over `addrs`, in order — the establishment
    /// batch primitive. Bit-identical to the per-op loop; see
    /// [`Machine::sweep_read_flush`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn sweep_read_flush(&mut self, addrs: &[VirtAddr]) -> Result<Cycles, ModelError> {
        self.machine.sweep_read_flush(self.core, self.proc, addrs, false)
    }

    /// [`Self::sweep_read_flush`] in reverse address order (the backward
    /// pass of the paper's §5.3 two-phase sweep).
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn sweep_read_flush_rev(&mut self, addrs: &[VirtAddr]) -> Result<Cycles, ModelError> {
        self.machine.sweep_read_flush(self.core, self.proc, addrs, true)
    }

    /// Serializing fence.
    pub fn mfence(&mut self) -> Cycles {
        self.machine.mfence(self.core)
    }

    /// `rdtsc` — faults in enclave mode.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IllegalInEnclave`] from enclave processes.
    pub fn rdtsc(&mut self) -> Result<Cycles, ModelError> {
        self.machine.rdtsc(self.core, self.proc)
    }

    /// Reads the hyperthread timer mailbox (legal everywhere, ~50 cycles,
    /// quantized).
    pub fn timer_read(&mut self) -> Cycles {
        self.machine.timer_read(self.core)
    }

    /// Timestamp via OCALL (8000–15000 cycles).
    pub fn ocall_rdtsc(&mut self) -> Cycles {
        self.machine.ocall_rdtsc(self.core)
    }

    /// Spins until the local clock reaches `deadline`.
    pub fn busy_until(&mut self, deadline: Cycles) {
        self.machine.busy_until(self.core, deadline);
    }

    /// Burns `cycles` of computation.
    pub fn advance(&mut self, cycles: Cycles) -> Cycles {
        self.machine.advance(self.core, cycles)
    }
}

/// Runs `bindings` concurrently until every actor is done or every runnable
/// actor's core clock has reached `horizon`.
///
/// # Errors
///
/// * Propagates the first [`ModelError`] raised by any actor.
/// * Returns [`ModelError::NoSuchCore`] / [`ModelError::InvalidConfig`] for
///   invalid bindings (out-of-range core, two actors on one core) or for an
///   actor that stops advancing its clock (deadlock guard).
pub fn run_actors(
    machine: &mut Machine,
    bindings: &mut [ActorBinding],
    horizon: Cycles,
) -> Result<(), ModelError> {
    let mut refs: Vec<ActorRef<'_>> = bindings
        .iter_mut()
        .map(|b| (b.core, b.proc, b.actor.as_mut()))
        .collect();
    run_actor_refs(machine, &mut refs, horizon)
}

/// A borrowed actor with its core/process binding, as consumed by
/// [`run_actor_refs`].
pub type ActorRef<'a> = (CoreId, ProcId, &'a mut (dyn Actor + 'static));

/// A scheduler hook invoked before every actor step, with the global
/// simulation time (the clock of the actor about to run). The fault
/// injector lives behind this trait: it applies every scheduled fault
/// whose time has passed, from *outside* any core's instruction stream,
/// while the scheduler's global clock order keeps the result
/// deterministic.
pub trait StepHook {
    /// Called with the machine and the current global time before each
    /// step. May mutate the machine (clocks, caches); the scheduler
    /// re-selects the next actor afterwards.
    ///
    /// # Errors
    ///
    /// An error aborts the run and propagates to the caller.
    fn before_step(&mut self, machine: &mut Machine, now: Cycles) -> Result<(), ModelError>;

    /// When the hook next needs to observe the machine. The event-driven
    /// scheduler skips `before_step` calls the schedule rules out; the
    /// cycle-stepped scheduler ignores this and calls before every step.
    ///
    /// The default, [`HookSchedule::EveryStep`], is always safe. A hook
    /// may only narrow it if `before_step` is a pure no-op outside the
    /// declared times — i.e. before `At(t)` is reached, or always for
    /// `Idle` — otherwise the two engines diverge. The scheduler
    /// re-queries after every `before_step` call, so `At` hooks advance
    /// their own horizon as they fire.
    fn schedule(&self) -> HookSchedule {
        HookSchedule::EveryStep
    }
}

/// When a [`StepHook`] next needs `before_step` called (only consulted by
/// the event-driven scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookSchedule {
    /// Call before every actor step (the cycle-stepped contract).
    EveryStep,
    /// No effect until global time reaches this cycle: call before the
    /// first step at or after it.
    At(Cycles),
    /// Never needs calling again (drained fault plan, no-op hook).
    Idle,
}

/// The do-nothing hook [`run_actor_refs`] runs with.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl StepHook for NoopHook {
    fn before_step(&mut self, _machine: &mut Machine, _now: Cycles) -> Result<(), ModelError> {
        Ok(())
    }

    fn schedule(&self) -> HookSchedule {
        HookSchedule::Idle
    }
}

/// Like [`run_actors`] but borrowing the actors, so callers keep ownership
/// of concrete actor types and can inspect their results after the run.
///
/// # Errors
///
/// Same conditions as [`run_actors`].
pub fn run_actor_refs(
    machine: &mut Machine,
    actors: &mut [ActorRef<'_>],
    horizon: Cycles,
) -> Result<(), ModelError> {
    run_actor_refs_hooked(machine, actors, horizon, &mut NoopHook)
}

/// Like [`run_actor_refs`] with a [`StepHook`] consulted before every step
/// — the entry point for deterministic fault injection.
///
/// Dispatches on [`MachineConfig::engine`](crate::MachineConfig): the
/// event-driven core and the cycle-stepped core produce bit-identical
/// simulations (`tests/engine_equivalence.rs` is the gate).
///
/// # Errors
///
/// Same conditions as [`run_actors`], plus any error raised by the hook.
pub fn run_actor_refs_hooked(
    machine: &mut Machine,
    actors: &mut [ActorRef<'_>],
    horizon: Cycles,
    hook: &mut dyn StepHook,
) -> Result<(), ModelError> {
    // Validate bindings.
    let mut seen = vec![false; machine.core_count()];
    for (core, _, _) in actors.iter() {
        let idx = core.index();
        if idx >= machine.core_count() {
            return Err(ModelError::NoSuchCore { core: idx });
        }
        if seen[idx] {
            return Err(ModelError::InvalidConfig {
                reason: format!("two actors bound to {core}"),
            });
        }
        seen[idx] = true;
    }

    match machine.config().engine {
        EngineKind::CycleStepped => run_cycle_stepped(machine, actors, horizon, hook),
        EngineKind::EventDriven => run_event_driven(machine, actors, horizon, hook),
    }
}

/// An actor that stops advancing its clock for this many consecutive steps
/// is declared deadlocked (both engines, same threshold and message).
const STUCK_LIMIT: u32 = 100_000;

fn stuck_error(core: CoreId) -> ModelError {
    ModelError::InvalidConfig {
        reason: format!("actor on {core} made {STUCK_LIMIT} steps without advancing its clock"),
    }
}

/// The original scheduler: scan all runnable actors for the minimum clock
/// before every step. Kept as the differential baseline for
/// [`run_event_driven`].
fn run_cycle_stepped(
    machine: &mut Machine,
    actors: &mut [ActorRef<'_>],
    horizon: Cycles,
    hook: &mut dyn StepHook,
) -> Result<(), ModelError> {
    let mut done = vec![false; actors.len()];
    let mut stuck_count = vec![0u32; actors.len()];

    // Host-time profiling of the step loop: wall-clock only, recorded on
    // exit — it cannot influence the simulated interleaving.
    let loop_start = std::time::Instant::now();
    let mut steps: u64 = 0;
    let finish = |machine: &mut Machine, steps: u64| {
        machine
            .obs_mut()
            .host
            .record_n("actor_step_loop", steps, loop_start.elapsed());
    };

    loop {
        // Pick the runnable actor with the smallest core clock.
        let pick = |machine: &Machine, done: &[bool]| {
            actors
                .iter()
                .enumerate()
                .filter(|(i, (core, _, _))| !done[*i] && machine.core_now(*core) < horizon)
                .min_by_key(|(_, (core, _, _))| machine.core_now(*core))
                .map(|(i, _)| i)
        };
        let Some(i) = pick(machine, &done) else {
            finish(machine, steps);
            return Ok(());
        };
        // The hook sees the global time (the chosen actor's clock) and may
        // move clocks or scrub caches; re-pick afterwards so the selection
        // respects whatever it did.
        hook.before_step(machine, machine.core_now(actors[i].0))?;
        let Some(i) = pick(machine, &done) else {
            finish(machine, steps);
            return Ok(());
        };

        let core = actors[i].0;
        let before = machine.core_now(core);
        let outcome = {
            let (core, proc, actor) = &mut actors[i];
            let mut cpu = CoreHandle::new(machine, *core, *proc);
            actor.step(&mut cpu)?
        };
        steps += 1;
        if outcome == StepOutcome::Done {
            done[i] = true;
        } else if machine.core_now(core) == before {
            stuck_count[i] += 1;
            if stuck_count[i] > STUCK_LIMIT {
                return Err(stuck_error(core));
            }
        } else {
            stuck_count[i] = 0;
        }
    }
}

/// The event-driven scheduler core: one wake-up event per runnable actor,
/// popped in `(time, slot, seq)` order from a deterministic [`EventQueue`].
///
/// Bit-identity with [`run_cycle_stepped`] rests on three facts (proved by
/// `tests/engine_equivalence.rs` and argued in `DESIGN.md`):
///
/// * Queue order equals scan order. The old scheduler picks the minimum
///   core clock, first binding slot on ties; the queue key `(time, slot,
///   seq)` pops the same actor, because each actor has exactly one live
///   entry.
/// * Stale entries are lower bounds. Clocks only move forward (preemption
///   parks to `max`, drift and busy-work add), so an entry whose recorded
///   time no longer matches its actor's clock sorts *earlier* than the
///   truth. Re-queueing it at the current clock on pop — lazy
///   invalidation, the classic priority-queue trick — can therefore never
///   pop a wrong minimum. This is how a fault preempting an actor
///   overrides that actor's already-queued wake-up.
/// * Skipped hook calls are no-ops. [`StepHook::schedule`] only rules out
///   calls the hook contract declares side-effect free (`At(t)` before
///   `t`, `Idle` always); `EveryStep` hooks run exactly as before.
fn run_event_driven(
    machine: &mut Machine,
    actors: &mut [ActorRef<'_>],
    horizon: Cycles,
    hook: &mut dyn StepHook,
) -> Result<(), ModelError> {
    // No `done` flags here: a finished actor's wake-up is simply never
    // re-queued, so the queue cannot yield it again.
    let mut stuck_count = vec![0u32; actors.len()];

    // Same host span as the cycle-stepped loop, so profiles stay
    // comparable across engines.
    let loop_start = std::time::Instant::now();
    let mut steps: u64 = 0;
    let finish = |machine: &mut Machine, steps: u64| {
        machine
            .obs_mut()
            .host
            .record_n("actor_step_loop", steps, loop_start.elapsed());
    };

    let mut queue: EventQueue<()> = EventQueue::new();
    for (slot, (core, _, _)) in actors.iter().enumerate() {
        let now = machine.core_now(*core);
        if now < horizon {
            queue.push(now, slot as u32, ());
        }
    }

    // Pops the next wake-up whose recorded time still matches its core
    // clock. A stale entry (the hook moved the clock since it was queued)
    // is re-queued at the clock's current value; an entry at or past the
    // horizon is parked (dropped — clocks never move back below it).
    let pop_live = |queue: &mut EventQueue<()>, machine: &Machine, actors: &[ActorRef<'_>]| {
        while let Some((key, ())) = queue.pop() {
            let slot = key.lane as usize;
            let now = machine.core_now(actors[slot].0);
            if now >= horizon {
                continue;
            }
            if key.time != now {
                queue.push(now, key.lane, ());
                continue;
            }
            return Some((key.time, slot));
        }
        None
    };

    loop {
        let Some((now, slot)) = pop_live(&mut queue, machine, actors) else {
            finish(machine, steps);
            return Ok(());
        };
        let run_hook = match hook.schedule() {
            HookSchedule::EveryStep => true,
            HookSchedule::At(at) => now >= at,
            HookSchedule::Idle => false,
        };
        let slot = if run_hook {
            hook.before_step(machine, now)?;
            // The hook may have moved clocks: put the popped actor back at
            // its (possibly new) clock and re-select, mirroring the
            // cycle-stepped re-pick.
            let cur = machine.core_now(actors[slot].0);
            if cur < horizon {
                queue.push(cur, slot as u32, ());
            }
            match pop_live(&mut queue, machine, actors) {
                Some((_, slot)) => slot,
                None => {
                    finish(machine, steps);
                    return Ok(());
                }
            }
        } else {
            slot
        };

        let core = actors[slot].0;
        let before = machine.core_now(core);
        let outcome = {
            let (core, proc, actor) = &mut actors[slot];
            let mut cpu = CoreHandle::new(machine, *core, *proc);
            actor.step(&mut cpu)?
        };
        steps += 1;
        if outcome == StepOutcome::Done {
            continue;
        }
        let after = machine.core_now(core);
        if after == before {
            stuck_count[slot] += 1;
            if stuck_count[slot] > STUCK_LIMIT {
                return Err(stuck_error(core));
            }
        } else {
            stuck_count[slot] = 0;
        }
        if after < horizon {
            queue.push(after, slot as u32, ());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use mee_mem::AddressSpaceKind;
    use mee_types::PAGE_SIZE;

    /// Reads a fixed page `n` times, recording latencies.
    struct Reader {
        base: VirtAddr,
        remaining: usize,
        latencies: Vec<Cycles>,
    }

    impl Actor for Reader {
        fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
            if self.remaining == 0 {
                return Ok(StepOutcome::Done);
            }
            self.remaining -= 1;
            let lat = cpu.read(self.base)?;
            self.latencies.push(lat);
            Ok(StepOutcome::Running)
        }
    }

    /// Burns time forever (horizon-bounded).
    struct Spinner;

    impl Actor for Spinner {
        fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
            cpu.advance(Cycles::new(100));
            Ok(StepOutcome::Running)
        }
    }

    /// Never advances the clock: must trip the deadlock guard.
    struct Stuck;

    impl Actor for Stuck {
        fn step(&mut self, _cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
            Ok(StepOutcome::Running)
        }
    }

    fn setup_with(engine: EngineKind) -> (Machine, ProcId, VirtAddr) {
        let mut m = Machine::new(MachineConfig::small().with_engine(engine)).unwrap();
        let p = m.create_process(AddressSpaceKind::Enclave);
        let base = VirtAddr::new(0x40_0000);
        m.map_pages(p, base, 2).unwrap();
        (m, p, base)
    }

    fn setup() -> (Machine, ProcId, VirtAddr) {
        setup_with(EngineKind::default())
    }

    const BOTH_ENGINES: [EngineKind; 2] = [EngineKind::CycleStepped, EngineKind::EventDriven];

    #[test]
    fn single_actor_runs_to_completion() {
        let (mut m, p, base) = setup();
        let mut bindings = vec![ActorBinding {
            core: CoreId::new(0),
            proc: p,
            actor: Box::new(Reader {
                base,
                remaining: 5,
                latencies: Vec::new(),
            }),
        }];
        run_actors(&mut m, &mut bindings, Cycles::new(1_000_000)).unwrap();
        assert!(m.core_now(CoreId::new(0)) > Cycles::ZERO);
    }

    #[test]
    fn horizon_stops_infinite_actors() {
        let (mut m, p, _) = setup();
        let mut bindings = vec![ActorBinding {
            core: CoreId::new(0),
            proc: p,
            actor: Box::new(Spinner),
        }];
        run_actors(&mut m, &mut bindings, Cycles::new(10_000)).unwrap();
        let now = m.core_now(CoreId::new(0));
        assert!(now >= Cycles::new(10_000));
        assert!(now < Cycles::new(10_200));
    }

    #[test]
    fn actors_interleave_in_clock_order() {
        let (mut m, p, base) = setup();
        // Two readers on different cores sharing a page: the second one to
        // reach DRAM must hit the LLC instead, whichever interleaving — but
        // both clocks must end near each other (fair interleaving).
        let mut bindings = vec![
            ActorBinding {
                core: CoreId::new(0),
                proc: p,
                actor: Box::new(Reader {
                    base,
                    remaining: 50,
                    latencies: Vec::new(),
                }),
            },
            ActorBinding {
                core: CoreId::new(1),
                proc: p,
                actor: Box::new(Reader {
                    base: base + PAGE_SIZE as u64,
                    remaining: 50,
                    latencies: Vec::new(),
                }),
            },
        ];
        run_actors(&mut m, &mut bindings, Cycles::new(10_000_000)).unwrap();
        let a = m.core_now(CoreId::new(0)).raw() as i64;
        let b = m.core_now(CoreId::new(1)).raw() as i64;
        assert!((a - b).abs() < 2_000, "clocks diverged: {a} vs {b}");
    }

    #[test]
    fn two_actors_one_core_rejected() {
        let (mut m, p, _) = setup();
        let mut bindings = vec![
            ActorBinding {
                core: CoreId::new(0),
                proc: p,
                actor: Box::new(Spinner),
            },
            ActorBinding {
                core: CoreId::new(0),
                proc: p,
                actor: Box::new(Spinner),
            },
        ];
        assert!(run_actors(&mut m, &mut bindings, Cycles::new(1000)).is_err());
    }

    #[test]
    fn out_of_range_core_rejected() {
        let (mut m, p, _) = setup();
        let mut bindings = vec![ActorBinding {
            core: CoreId::new(99),
            proc: p,
            actor: Box::new(Spinner),
        }];
        assert!(matches!(
            run_actors(&mut m, &mut bindings, Cycles::new(1000)),
            Err(ModelError::NoSuchCore { core: 99 })
        ));
    }

    #[test]
    fn stuck_actor_detected() {
        let (mut m, p, _) = setup();
        let mut bindings = vec![ActorBinding {
            core: CoreId::new(0),
            proc: p,
            actor: Box::new(Stuck),
        }];
        assert!(run_actors(&mut m, &mut bindings, Cycles::new(1000)).is_err());
    }

    #[test]
    fn hook_runs_at_global_time_and_may_move_clocks() {
        /// Preempts core 0 for 15_000 cycles the first time global time
        /// passes 2_000, and records every `now` it saw.
        struct PreemptOnce {
            fired: bool,
            times: Vec<u64>,
        }
        impl StepHook for PreemptOnce {
            fn before_step(
                &mut self,
                machine: &mut Machine,
                now: Cycles,
            ) -> Result<(), ModelError> {
                self.times.push(now.raw());
                if !self.fired && now >= Cycles::new(2_000) {
                    self.fired = true;
                    machine.preempt_until(CoreId::new(0), now + Cycles::new(15_000));
                }
                Ok(())
            }
        }
        let (mut m, p, _) = setup();
        let mut hook = PreemptOnce {
            fired: false,
            times: Vec::new(),
        };
        let mut spinner = Spinner;
        let mut actors: Vec<ActorRef<'_>> = vec![(CoreId::new(0), p, &mut spinner)];
        run_actor_refs_hooked(&mut m, &mut actors, Cycles::new(10_000), &mut hook).unwrap();
        assert!(hook.fired);
        // Global times are monotone (the hook never observes time going
        // backwards), and the preemption pushed the final clock past the
        // horizon plus the burst.
        assert!(hook.times.windows(2).all(|w| w[0] <= w[1]));
        assert!(m.core_now(CoreId::new(0)) >= Cycles::new(10_000));
    }

    /// Both engines on the same two-reader workload: identical per-read
    /// latencies and identical final clocks, step for step.
    #[test]
    fn engines_agree_on_shared_page_interleaving() {
        let run = |engine: EngineKind| {
            let (mut m, p, base) = setup_with(engine);
            let mut a = Reader {
                base,
                remaining: 50,
                latencies: Vec::new(),
            };
            let mut b = Reader {
                base: base + PAGE_SIZE as u64,
                remaining: 50,
                latencies: Vec::new(),
            };
            let mut actors: Vec<ActorRef<'_>> =
                vec![(CoreId::new(0), p, &mut a), (CoreId::new(1), p, &mut b)];
            run_actor_refs(&mut m, &mut actors, Cycles::new(10_000_000)).unwrap();
            (
                a.latencies,
                b.latencies,
                m.core_now(CoreId::new(0)),
                m.core_now(CoreId::new(1)),
            )
        };
        assert_eq!(run(EngineKind::CycleStepped), run(EngineKind::EventDriven));
    }

    /// Both engines under a clock-moving hook: the preemption invalidates
    /// the event engine's already-queued wake-up for core 0 (lazy
    /// reschedule), and the observable run — every `now` the hook saw,
    /// plus the final clock — still matches the cycle-stepped baseline.
    #[test]
    fn engines_agree_under_preempting_hook() {
        struct PreemptAt {
            at: Cycles,
            fired: bool,
            times: Vec<u64>,
        }
        impl StepHook for PreemptAt {
            fn before_step(
                &mut self,
                machine: &mut Machine,
                now: Cycles,
            ) -> Result<(), ModelError> {
                self.times.push(now.raw());
                if !self.fired && now >= self.at {
                    self.fired = true;
                    machine.preempt_until(CoreId::new(0), now + Cycles::new(15_000));
                }
                Ok(())
            }
        }
        let run = |engine: EngineKind| {
            let (mut m, p, base) = setup_with(engine);
            let mut spinner = Spinner;
            let mut reader = Reader {
                base,
                remaining: 40,
                latencies: Vec::new(),
            };
            let mut actors: Vec<ActorRef<'_>> = vec![
                (CoreId::new(0), p, &mut spinner),
                (CoreId::new(1), p, &mut reader),
            ];
            let mut hook = PreemptAt {
                at: Cycles::new(2_000),
                fired: false,
                times: Vec::new(),
            };
            run_actor_refs_hooked(&mut m, &mut actors, Cycles::new(40_000), &mut hook).unwrap();
            assert!(hook.fired);
            (
                hook.times,
                reader.latencies,
                m.core_now(CoreId::new(0)),
                m.core_now(CoreId::new(1)),
            )
        };
        assert_eq!(run(EngineKind::CycleStepped), run(EngineKind::EventDriven));
    }

    /// The deadlock guard and the horizon behave identically on the old
    /// engine (the default-engine variants are covered above).
    #[test]
    fn cycle_stepped_engine_keeps_guards() {
        for engine in BOTH_ENGINES {
            let (mut m, p, _) = setup_with(engine);
            let mut bindings = vec![ActorBinding {
                core: CoreId::new(0),
                proc: p,
                actor: Box::new(Stuck),
            }];
            assert!(
                run_actors(&mut m, &mut bindings, Cycles::new(1000)).is_err(),
                "{engine:?} missed the stuck actor"
            );

            let (mut m, p, _) = setup_with(engine);
            let mut bindings = vec![ActorBinding {
                core: CoreId::new(0),
                proc: p,
                actor: Box::new(Spinner),
            }];
            run_actors(&mut m, &mut bindings, Cycles::new(10_000)).unwrap();
            let now = m.core_now(CoreId::new(0));
            assert!(now >= Cycles::new(10_000) && now < Cycles::new(10_200), "{engine:?}: {now}");
        }
    }

    #[test]
    fn hook_errors_abort_the_run() {
        struct Abort;
        impl StepHook for Abort {
            fn before_step(
                &mut self,
                _machine: &mut Machine,
                _now: Cycles,
            ) -> Result<(), ModelError> {
                Err(ModelError::InvalidConfig {
                    reason: "hook abort".into(),
                })
            }
        }
        let (mut m, p, _) = setup();
        let mut spinner = Spinner;
        let mut actors: Vec<ActorRef<'_>> = vec![(CoreId::new(0), p, &mut spinner)];
        assert!(matches!(
            run_actor_refs_hooked(&mut m, &mut actors, Cycles::new(1_000), &mut Abort),
            Err(ModelError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn actor_errors_propagate() {
        struct Faulter;
        impl Actor for Faulter {
            fn step(&mut self, cpu: &mut CoreHandle<'_>) -> Result<StepOutcome, ModelError> {
                cpu.read(VirtAddr::new(0xdead_0000))?;
                Ok(StepOutcome::Running)
            }
        }
        let (mut m, p, _) = setup();
        let mut bindings = vec![ActorBinding {
            core: CoreId::new(0),
            proc: p,
            actor: Box::new(Faulter),
        }];
        assert!(matches!(
            run_actors(&mut m, &mut bindings, Cycles::new(1000)),
            Err(ModelError::PageFault { .. })
        ));
    }
}

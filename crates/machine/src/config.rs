//! Machine configuration.

use mee_cache::policy::{Fifo, Nru, Policy, RandomEviction, Srrip, TreePlru, TrueLru};
use mee_cache::CacheConfig;
use mee_mem::DramConfig;
use mee_types::{ModelError, TimingConfig};

/// A cloneable description of a replacement policy, resolved to a boxed
/// [`Policy`] at machine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Tree pseudo-LRU — the MEE cache default (§5.3 "approximate LRU").
    TreePlru,
    /// Exact LRU.
    TrueLru,
    /// First-in first-out.
    Fifo,
    /// Not-recently-used.
    Nru,
    /// Static re-reference interval prediction (2-bit).
    Srrip,
    /// Seeded random eviction.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl PolicyKind {
    /// Instantiates the policy, statically dispatched.
    pub fn build(self) -> Policy {
        match self {
            PolicyKind::TreePlru => Policy::TreePlru(TreePlru::new()),
            PolicyKind::TrueLru => Policy::TrueLru(TrueLru::new()),
            PolicyKind::Fifo => Policy::Fifo(Fifo::new()),
            PolicyKind::Nru => Policy::Nru(Nru::new()),
            PolicyKind::Srrip => Policy::Srrip(Srrip::new()),
            PolicyKind::Random { seed } => Policy::Random(RandomEviction::with_seed(seed)),
        }
    }
}

/// Which scheduler core drives [`crate::run_actors`] and friends.
///
/// Both engines produce bit-identical simulations — the event-driven core
/// is the cycle-stepped scan re-expressed over a deterministic event queue
/// (see `DESIGN.md`, "Event-driven core"), and `tests/engine_equivalence.rs`
/// holds the two to an empty transcript diff. The cycle-stepped core is
/// kept as the differential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Original scheduler: an O(actors) min-scan before every step.
    CycleStepped,
    /// Event-queue scheduler: wake-ups pop in `(time, slot, seq)` order
    /// and hooks declare when they next need to run.
    #[default]
    EventDriven,
}

/// Full description of the simulated machine.
///
/// [`MachineConfig::default`] models the paper's testbed (i7-6700K-like:
/// 4 cores, 32 KiB/8-way L1D, 256 KiB/4-way L2, 8 MiB/16-way LLC, 64 KiB/
/// 8-way MEE cache, 32 MiB PRM scaled down from 128 MiB to keep experiment
/// start-up cheap — the attack never needs more than a few MiB of enclave
/// memory). [`MachineConfig::small`] shrinks everything further for unit
/// tests.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of physical cores.
    pub cores: usize,
    /// Latency calibration.
    pub timing: TimingConfig,
    /// DRAM geometry and timing.
    pub dram: DramConfig,
    /// Bytes of ordinary DRAM.
    pub general_bytes: u64,
    /// Bytes of Processor Reserved Memory (protected data + tree).
    pub prm_bytes: u64,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core L2 cache.
    pub l2: CacheConfig,
    /// Shared inclusive last-level cache.
    pub llc: CacheConfig,
    /// The MEE cache (what the paper reverse-engineers).
    pub mee_cache: CacheConfig,
    /// MEE cache replacement policy.
    pub mee_policy: PolicyKind,
    /// LLC replacement policy.
    pub llc_policy: PolicyKind,
    /// Seed for frame-allocation shuffling.
    pub alloc_seed: u64,
    /// Seed for per-core background-stall noise.
    pub stall_seed: u64,
    /// MEE MAC key.
    pub mee_key: u64,
    /// Granularity (cycles) of the hyperthread timer mailbox: the publishing
    /// thread refreshes the timestamp every this many cycles.
    pub timer_quantum: u64,
    /// Which scheduler core runs the actors.
    pub engine: EngineKind,
    /// Capacity of the machine's translation memo (direct-mapped, shared
    /// across processes, keyed on a page-table generation stamp). `0`
    /// disables memoisation — every op re-walks the page table, the
    /// pre-memo behaviour differential tests compare against. Purely a
    /// host-speed knob: translation has no timing side effects, so the
    /// capacity can never change a simulation (see `DESIGN.md`,
    /// "Translation memo"). Overridable via `MEE_TLB`.
    pub tlb_entries: usize,
}

/// Default translation-memo capacity: enough slots that the two
/// 192-page tenants of an attack setup rarely alias.
const DEFAULT_TLB_ENTRIES: usize = 512;

/// Resolves the `MEE_TLB` override, falling back to the built-in default.
/// Resolved once per process, on first use: every later
/// [`MachineConfig::default`] reuses the pinned value, so two defaults in
/// one process can never disagree and the environment is parsed (and can
/// panic) at most once.
///
/// # Panics
///
/// Panics (on the first call only) if `MEE_TLB` is set to a malformed or
/// non-positive value — the workspace-wide strict-knob policy (to disable
/// the memo, set [`MachineConfig::tlb_entries`] to `0` in code; an
/// environment typo must never silently change the machine).
fn env_tlb_entries() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| {
        mee_rng::env_knob::positive_from_env::<usize>("MEE_TLB").unwrap_or(DEFAULT_TLB_ENTRIES)
    })
}

impl Default for MachineConfig {
    /// # Panics
    ///
    /// Panics if the `MEE_TLB` environment override is set to a malformed
    /// or non-positive value (strict-knob policy). The override is
    /// resolved once per process and then pinned, so only the first
    /// `default()` can panic and all defaults agree.
    fn default() -> Self {
        MachineConfig {
            cores: 4,
            timing: TimingConfig::default(),
            dram: DramConfig::default(),
            general_bytes: 64 << 20,
            prm_bytes: 32 << 20,
            l1: CacheConfig {
                sets: 64,
                ways: 8,
                line_size: 64,
            },
            l2: CacheConfig {
                sets: 1024,
                ways: 4,
                line_size: 64,
            },
            llc: CacheConfig {
                sets: 8192,
                ways: 16,
                line_size: 64,
            },
            mee_cache: CacheConfig {
                sets: 128,
                ways: 8,
                line_size: 64,
            },
            mee_policy: PolicyKind::TreePlru,
            llc_policy: PolicyKind::TreePlru,
            alloc_seed: 0xa110c,
            stall_seed: 0x57a11,
            mee_key: 0x006d_6565_5f6b_6579, // "mee_key"
            timer_quantum: 35,
            engine: EngineKind::default(),
            tlb_entries: env_tlb_entries(),
        }
    }
}

impl MachineConfig {
    /// The default testbed-like machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scaled-down machine for fast unit tests: 2 MiB general, 4 MiB PRM,
    /// small LLC, no background stalls, no DRAM jitter.
    pub fn small() -> Self {
        let dram = DramConfig {
            jitter_std: 0.0,
            ..DramConfig::default()
        };
        MachineConfig {
            general_bytes: 2 << 20,
            prm_bytes: 4 << 20,
            llc: CacheConfig {
                sets: 1024,
                ways: 16,
                line_size: 64,
            },
            timing: TimingConfig::noiseless(),
            dram,
            ..Self::default()
        }
    }

    /// Selects the scheduler core (differential tests pin each side).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Disables all noise sources (jitter + stalls), keeping geometry.
    pub fn without_noise(mut self) -> Self {
        self.timing.dram_jitter_std = 0.0;
        self.timing.stall_mean_interval = 0;
        self.dram.jitter_std = 0.0;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if any component is invalid or
    /// there are no cores.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.cores == 0 {
            return Err(ModelError::InvalidConfig {
                reason: "machine needs at least one core".into(),
            });
        }
        if self.timer_quantum == 0 {
            return Err(ModelError::InvalidConfig {
                reason: "timer quantum must be non-zero".into(),
            });
        }
        self.timing.validate()?;
        self.dram.validate()?;
        for (name, c) in [
            ("l1", &self.l1),
            ("l2", &self.l2),
            ("llc", &self.llc),
            ("mee_cache", &self.mee_cache),
        ] {
            CacheConfig::from_capacity(c.capacity_bytes(), c.ways, c.line_size).map_err(|_| {
                ModelError::InvalidConfig {
                    reason: format!("invalid {name} cache geometry: {c:?}"),
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_cache::ReplacementPolicy;

    #[test]
    fn default_validates_and_matches_testbed() {
        let cfg = MachineConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.mee_cache.capacity_bytes(), 64 * 1024);
        assert_eq!(cfg.mee_cache.ways, 8);
        assert_eq!(cfg.mee_cache.sets, 128);
        assert_eq!(cfg.llc.capacity_bytes(), 8 << 20);
    }

    #[test]
    fn small_validates() {
        MachineConfig::small().validate().unwrap();
    }

    #[test]
    fn without_noise_strips_all_noise() {
        let cfg = MachineConfig::default().without_noise();
        assert_eq!(cfg.timing.dram_jitter_std, 0.0);
        assert_eq!(cfg.timing.stall_mean_interval, 0);
        assert_eq!(cfg.dram.jitter_std, 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = MachineConfig {
            cores: 0,
            ..MachineConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = MachineConfig {
            timer_quantum: 0,
            ..MachineConfig::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::default();
        cfg.l1.sets = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn engine_defaults_to_event_driven_and_switches() {
        assert_eq!(MachineConfig::default().engine, EngineKind::EventDriven);
        let cfg = MachineConfig::small().with_engine(EngineKind::CycleStepped);
        assert_eq!(cfg.engine, EngineKind::CycleStepped);
        cfg.validate().unwrap();
    }

    #[test]
    fn tlb_knob_follows_the_strict_grammar() {
        // The default capacity is positive (memo on) and zero is reserved
        // for in-code opt-out, never reachable from the environment.
        assert!(MachineConfig::default().tlb_entries > 0);
        for bad in ["0", "-8", "lots", "4.5", ""] {
            assert!(
                mee_rng::env_knob::parse_positive::<usize>("MEE_TLB", bad).is_err(),
                "MEE_TLB={bad:?} must be rejected loudly"
            );
        }
        assert_eq!(mee_rng::env_knob::parse_positive::<usize>("MEE_TLB", "128"), Ok(128));
    }

    #[test]
    fn policy_kinds_build() {
        for kind in [
            PolicyKind::TreePlru,
            PolicyKind::TrueLru,
            PolicyKind::Fifo,
            PolicyKind::Nru,
            PolicyKind::Srrip,
            PolicyKind::Random { seed: 1 },
        ] {
            let p = kind.build();
            assert!(!p.name().is_empty());
        }
    }
}

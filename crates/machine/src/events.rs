//! The deterministic event queue behind the event-driven scheduler core.
//!
//! The queue is a plain min-priority queue over an explicit total order:
//! events pop by `(time, lane, seq)`. `time` is the simulated cycle the
//! event fires at, `lane` breaks ties between events scheduled for the
//! same cycle (the scheduler uses the actor's binding slot, so equal-time
//! wake-ups resolve in binding order — exactly the tie-break of the
//! cycle-stepped scheduler's first-minimum scan), and `seq` is a
//! monotonically increasing insertion counter so equal `(time, lane)`
//! events pop in push order. Every pop is therefore a deterministic
//! function of the push history — nothing about heap internals leaks into
//! the simulation.
//!
//! Cancellation is the caller's business: the scheduler invalidates lazily
//! (an entry whose recorded time no longer matches the actor's clock is
//! re-queued at the clock's current value on pop), so the queue itself
//! never needs a delete operation. See `run_actor_refs_hooked` in
//! [`crate::actor`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mee_types::Cycles;

/// The full ordering key of a queued event: events pop in ascending
/// `(time, lane, seq)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulated cycle the event fires at.
    pub time: Cycles,
    /// Tie-break between same-time events (scheduler: actor binding slot).
    pub lane: u32,
    /// Insertion counter — unique per queue, makes the order total.
    pub seq: u64,
}

struct Entry<T> {
    key: EventKey,
    payload: T,
}

// The heap compares keys only; `seq` uniqueness makes the order total, so
// payloads never influence (or tie) the comparison.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest key.
        other.key.cmp(&self.key)
    }
}

/// A deterministic min-priority queue of timed events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time` on `lane`; returns the full key
    /// (including the assigned sequence number).
    pub fn push(&mut self, time: Cycles, lane: u32, payload: T) -> EventKey {
        let key = EventKey {
            time,
            lane,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Entry { key, payload });
        key
    }

    /// Removes and returns the earliest event by `(time, lane, seq)`.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        self.heap.pop().map(|e| (e.key, e.payload))
    }

    /// The key of the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_rng::prop::{check, PropConfig};

    #[test]
    fn pops_in_time_then_lane_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(30), 0, "c");
        q.push(Cycles::new(10), 1, "b");
        q.push(Cycles::new(10), 0, "a");
        q.push(Cycles::new(30), 0, "d"); // same (time, lane) as "c": seq order
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(5), 2, ());
        q.push(Cycles::new(5), 1, ());
        let peeked = q.peek().unwrap();
        let (popped, ()) = q.pop().unwrap();
        assert_eq!(peeked, popped);
        assert_eq!(popped.lane, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        assert!(q.pop().is_none());
    }

    /// No event is lost or double-fired: whatever multiset of events goes
    /// in comes out exactly once.
    #[test]
    fn prop_conservation() {
        check("event queue conserves events", &PropConfig::from_env(64), |rng| {
            let mut q = EventQueue::new();
            let n = rng.random_range(0usize..64);
            let mut pushed = Vec::new();
            for i in 0..n {
                let t = Cycles::new(rng.random_range(0u64..1_000));
                let lane = rng.random_range(0u32..4);
                q.push(t, lane, i);
                pushed.push((t, lane, i));
            }
            assert_eq!(q.len(), n);
            let mut popped: Vec<(Cycles, u32, usize)> = std::iter::from_fn(|| q.pop())
                .map(|(k, p)| (k.time, k.lane, p))
                .collect();
            assert!(q.is_empty() && q.pop().is_none());
            popped.sort_unstable();
            pushed.sort_unstable();
            assert_eq!(popped, pushed, "multiset in != multiset out");
        });
    }

    /// Pops come out sorted by the full `(time, lane, seq)` key — time
    /// never moves backward, ties resolve by lane then insertion order —
    /// regardless of push order.
    #[test]
    fn prop_total_order() {
        check("event queue pop order is (time, lane, seq)", &PropConfig::from_env(64), |rng| {
            let mut q = EventQueue::new();
            for _ in 0..rng.random_range(1usize..64) {
                // Few distinct times/lanes on purpose: force tie-breaks.
                let t = Cycles::new(rng.random_range(0u64..8));
                q.push(t, rng.random_range(0u32..3), ());
            }
            let keys: Vec<EventKey> = std::iter::from_fn(|| q.pop()).map(|(k, ())| k).collect();
            for w in keys.windows(2) {
                assert!(
                    (w[0].time, w[0].lane, w[0].seq) < (w[1].time, w[1].lane, w[1].seq),
                    "out of order: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        });
    }

    /// Interleaved operation, the way the scheduler uses it: pushes never
    /// schedule before the last popped time (clocks are monotone), and in
    /// return popped times never move backward — even with re-queues.
    #[test]
    fn prop_monotone_under_interleaving() {
        check("event queue time is monotone", &PropConfig::from_env(64), |rng| {
            let mut q = EventQueue::new();
            let mut watermark = Cycles::ZERO;
            q.push(Cycles::ZERO, 0, ());
            for _ in 0..200 {
                if !q.is_empty() && rng.random_range(0u32..3) == 0 {
                    let (k, ()) = q.pop().unwrap();
                    assert!(
                        k.time >= watermark,
                        "popped {:?} before watermark {watermark}",
                        k
                    );
                    watermark = k.time;
                } else {
                    let t = watermark + Cycles::new(rng.random_range(0u64..50));
                    q.push(t, rng.random_range(0u32..4), ());
                }
            }
        });
    }
}

#![warn(missing_docs)]
//! The simulated machine: a multi-core SGX CPU with private L1/L2 caches, a
//! shared inclusive LLC, and the MEE in the memory controller.
//!
//! This crate is the substitution for the paper's Intel i7-6700K testbed.
//! It provides:
//!
//! * [`Machine`] — the hardware: per-core clocks and private caches, the
//!   shared LLC with inclusive back-invalidation, DRAM, and the MEE;
//! * processes ([`ProcId`]) with regular or enclave address spaces, page
//!   allocation (enclave pages come from the PRM, scattered physically by
//!   the randomized frame allocator), and optional hugepage-backed
//!   allocation for *regular* processes only (SGX has none — challenge 3);
//! * instruction primitives with SGX semantics: `read`/`write`, `clflush`
//!   (evicts from the whole on-chip hierarchy but **not** the MEE cache —
//!   challenge 1), `mfence`, `rdtsc` (faults in enclave mode — challenge 4),
//!   the hyperthread timer-mailbox read of Figure 2(c), and an OCALL-based
//!   timestamp for comparison;
//! * the [`Actor`] abstraction plus [`run_actors`] — a deterministic
//!   discrete-event scheduler that interleaves one actor per core in global
//!   clock order, which is how the trojan, the spy, and the noise programs
//!   execute "concurrently".
//!
//! # Example
//!
//! ```
//! use mee_machine::{Machine, MachineConfig};
//! use mee_mem::AddressSpaceKind;
//! use mee_types::VirtAddr;
//!
//! # fn main() -> Result<(), mee_types::ModelError> {
//! let mut m = Machine::new(MachineConfig::small())?;
//! let enclave = m.create_process(AddressSpaceKind::Enclave);
//! let base = VirtAddr::new(0x10000);
//! m.map_pages(enclave, base, 4)?;
//!
//! let core = mee_machine::CoreId::new(0);
//! let cold = m.read(core, enclave, base)?;
//! let warm = m.read(core, enclave, base)?;
//! assert!(warm < cold); // second read hits on-chip caches
//!
//! // rdtsc faults inside an enclave (paper challenge 4).
//! assert!(m.rdtsc(core, enclave).is_err());
//! # Ok(())
//! # }
//! ```

mod actor;
mod config;
mod events;
mod machine;

pub use actor::{
    run_actor_refs, run_actor_refs_hooked, run_actors, Actor, ActorBinding, ActorRef, CoreHandle,
    HookSchedule, NoopHook, StepHook, StepOutcome,
};
pub use config::{EngineKind, MachineConfig, PolicyKind};
pub use events::{EventKey, EventQueue};
pub use machine::{CoreId, Machine, ProcId};

//! The machine itself: cores, hierarchy, processes, and instruction
//! primitives.

use std::fmt;

use mee_cache::SetAssocCache;
use mee_engine::Mee;
use mee_mem::{
    AddressSpace, AddressSpaceKind, DramModel, FrameAllocator, PhysLayout, PlacementPolicy,
    RegionKind, StallGenerator,
};
use mee_obs::{EventKind, MemOpKind, Obs, ServedAt, Tracer, WalkLevel};
use mee_tree::TreeGeometry;
use mee_types::{Cycles, FxHashMap, LineAddr, ModelError, PhysAddr, VirtAddr, PAGE_SIZE};
use mee_rng::{stream_seed, Rng};

use crate::config::MachineConfig;

/// Identifies a physical core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core id.
    pub const fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies a simulated process (regular or enclave).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(usize);

impl ProcId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

struct CoreState {
    l1: SetAssocCache,
    l2: SetAssocCache,
    now: Cycles,
    stalls: StallGenerator,
}

struct Process {
    space: AddressSpace,
}

/// One translation-memo slot: a (process, virtual page) → physical page
/// pairing, valid only while `stamp` matches the machine's current
/// page-table generation (see [`Machine::translate_cached`]).
#[derive(Clone, Copy)]
struct TlbEntry {
    /// Page-table generation this entry was filled under (`0` = never
    /// filled; the machine's generation starts at 1).
    stamp: u64,
    proc: u32,
    vpn: u64,
    /// Physical base of the translated page.
    page_base: u64,
}

impl TlbEntry {
    const EMPTY: TlbEntry = TlbEntry {
        stamp: 0,
        proc: 0,
        vpn: 0,
        page_base: 0,
    };
}

/// The simulated multi-core SGX machine.
///
/// See the crate docs for the architectural overview. All methods that model
/// instructions advance the issuing core's local clock by the instruction's
/// latency plus any background stalls, and return that same elapsed time.
pub struct Machine {
    cfg: MachineConfig,
    layout: PhysLayout,
    dram: DramModel,
    mee: Mee,
    llc: SetAssocCache,
    cores: Vec<CoreState>,
    procs: Vec<Process>,
    general_alloc: FrameAllocator,
    prm_alloc: FrameAllocator,
    /// Functional store for general-region lines (protected lines live in
    /// the integrity tree).
    general_store: FxHashMap<LineAddr, u64>,
    rng: Rng,
    /// Page-table generation stamp: bumped by every mapping mutation and
    /// EPC eviction, so every memo entry below goes stale at once. Starts
    /// at 1 so a zeroed [`TlbEntry`] can never validate.
    pt_generation: u64,
    /// The translation memo: a direct-mapped cache of page translations
    /// for the hot instruction paths (empty when `cfg.tlb_entries == 0`).
    /// Translation has no timing side effects, so this is purely a
    /// host-speed structure — it can never change a simulation.
    tlb: Vec<TlbEntry>,
    /// Where the MEE walk of the most recent memory op stopped (`None` if
    /// the op never reached the MEE).
    last_mee_hit: Option<mee_engine::HitLevel>,
    /// Observability state (event sink, metrics, host profile). Off by
    /// default: the instruction paths pay one disabled branch and nothing
    /// else. Tracing observes the simulation; it never changes it, so
    /// outcomes are bit-identical with tracing on or off.
    obs: Obs,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("procs", &self.procs.len())
            .field("mee", &self.mee)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds the machine described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for invalid configurations.
    pub fn new(cfg: MachineConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let layout = PhysLayout::new(cfg.general_bytes, cfg.prm_bytes)?;
        let geo = TreeGeometry::new(layout.prm_data(), layout.prm_tree())?;
        let dram = DramModel::new(cfg.dram.clone())?;
        let mee = Mee::new(
            geo,
            cfg.mee_key,
            cfg.mee_cache,
            cfg.mee_policy.build(),
            cfg.timing.clone(),
        );
        let llc = SetAssocCache::new(cfg.llc, cfg.llc_policy.build());
        let cores = (0..cfg.cores)
            .map(|i| CoreState {
                l1: SetAssocCache::new(cfg.l1, cfg.mee_policy.build()),
                l2: SetAssocCache::new(cfg.l2, cfg.mee_policy.build()),
                now: Cycles::ZERO,
                stalls: StallGenerator::new(
                    cfg.timing.stall_mean_interval,
                    cfg.timing.stall_min,
                    cfg.timing.stall_max,
                    // Per-core sub-stream: adding a core never shifts the
                    // noise seen by existing cores.
                    stream_seed(cfg.stall_seed, i as u64),
                ),
            })
            .collect();
        let general_alloc = FrameAllocator::new(
            layout.general(),
            PlacementPolicy::Randomized {
                seed: stream_seed(cfg.alloc_seed, 0),
            },
        );
        let prm_alloc = FrameAllocator::new(
            layout.prm_data(),
            PlacementPolicy::Randomized {
                seed: stream_seed(cfg.alloc_seed, 1),
            },
        );
        Ok(Machine {
            rng: Rng::seed_from_u64(stream_seed(cfg.alloc_seed, 2)),
            pt_generation: 1,
            tlb: vec![TlbEntry::EMPTY; cfg.tlb_entries],
            cfg,
            layout,
            dram,
            mee,
            llc,
            cores,
            procs: Vec::new(),
            general_alloc,
            prm_alloc,
            general_store: FxHashMap::default(),
            last_mee_hit: None,
            obs: Obs::off(),
        })
    }

    /// Turns on event tracing and metrics with a `capacity`-bounded ring.
    /// For metrics that reconcile exactly with [`Mee::stats`], enable
    /// tracing before issuing any memory ops.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`Self::disable_tracing`]).
    pub fn enable_tracing(&mut self, capacity: usize) {
        let cores = self.cores.len();
        let mee_sets = self.mee.cache().config().sets;
        self.obs = Obs::enabled(capacity, cores, mee_sets);
    }

    /// Turns tracing back off, discarding any captured events and metrics
    /// (the host profile is discarded too).
    pub fn disable_tracing(&mut self) {
        self.obs = Obs::off();
    }

    /// The observability state (events, metrics, host profile).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable observability state — for host-time spans and for layers
    /// above the machine (faults, channel) recording their own events via
    /// [`Self::trace_fault`] / [`Self::trace_phase`] equivalents.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Records a fault firing in the event trace (no-op when tracing is
    /// off). Called by the fault injector after applying a fault.
    pub fn trace_fault(&mut self, kind: &'static str, arg: u64, at: Cycles) {
        if self.obs.sink.enabled() {
            self.obs.sink.record(at, EventKind::Fault { kind, arg });
        }
    }

    /// Records a channel phase transition in the event trace (no-op when
    /// tracing is off). Called by the attack layer at session milestones.
    pub fn trace_phase(&mut self, name: &'static str, arg: u64, at: Cycles) {
        if self.obs.sink.enabled() {
            self.obs.sink.record(at, EventKind::Phase { name, arg });
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The physical memory layout.
    pub fn layout(&self) -> &PhysLayout {
        &self.layout
    }

    /// Read-only view of the MEE (cache contents, stats, geometry).
    pub fn mee(&self) -> &Mee {
        &self.mee
    }

    /// Mutable MEE access, for tamper-injection tests and the §5.5
    /// way-partitioning mitigation.
    pub fn mee_mut(&mut self) -> &mut Mee {
        &mut self.mee
    }

    /// Read-only view of the shared LLC.
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// The local clock of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_now(&self, core: CoreId) -> Cycles {
        self.cores[core.index()].now
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Whether `core`'s private L1 or L2 holds `line` — for tests that
    /// reason about migration and eviction effects from outside the crate.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_caches_line(&self, core: CoreId, line: LineAddr) -> bool {
        let c = &self.cores[core.index()];
        c.l1.contains(line) || c.l2.contains(line)
    }

    /// Creates a process with an empty address space.
    pub fn create_process(&mut self, kind: AddressSpaceKind) -> ProcId {
        self.procs.push(Process {
            space: AddressSpace::new(kind),
        });
        ProcId(self.procs.len() - 1)
    }

    /// Whether a process is an enclave.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn is_enclave(&self, proc: ProcId) -> bool {
        self.procs[proc.index()].space.kind() == AddressSpaceKind::Enclave
    }

    /// Maps `count` pages at `base` (page-aligned) into `proc`. Enclave
    /// pages come from the PRM protected-data region, regular pages from
    /// general DRAM — both physically scattered by the randomized allocator,
    /// as a real OS would.
    ///
    /// # Errors
    ///
    /// Propagates allocation ([`ModelError::OutOfMemory`]) and mapping
    /// errors; returns [`ModelError::InvalidConfig`] if `base` is not
    /// page-aligned.
    pub fn map_pages(&mut self, proc: ProcId, base: VirtAddr, count: usize) -> Result<(), ModelError> {
        self.check_proc(proc)?;
        self.check_alignment(base)?;
        // Bump before mutating: a partial failure below still leaves the
        // page tables changed, so the memo must already be stale.
        self.pt_generation += 1;
        let enclave = self.is_enclave(proc);
        for i in 0..count {
            let ppn = if enclave {
                self.prm_alloc.alloc()?
            } else {
                self.general_alloc.alloc()?
            };
            let vpn = (base + (i * PAGE_SIZE) as u64).vpn();
            self.procs[proc.index()].space.map_page(vpn, ppn)?;
        }
        Ok(())
    }

    /// Unmaps `count` pages at `base` from `proc` and returns their frames
    /// to the allocator. Cached copies are left to age out naturally (the
    /// experiments flush what they must).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PageFault`] if any page in the range is not
    /// mapped; pages before the faulting one stay unmapped.
    pub fn unmap_pages(
        &mut self,
        proc: ProcId,
        base: VirtAddr,
        count: usize,
    ) -> Result<(), ModelError> {
        self.check_proc(proc)?;
        self.check_alignment(base)?;
        self.pt_generation += 1;
        let enclave = self.is_enclave(proc);
        for i in 0..count {
            let va = base + (i * PAGE_SIZE) as u64;
            let ppn = self.procs[proc.index()]
                .space
                .unmap_page(va.vpn())
                .ok_or(ModelError::PageFault { va })?;
            if enclave {
                self.prm_alloc.free(ppn);
            } else {
                self.general_alloc.free(ppn);
            }
        }
        Ok(())
    }

    /// Maps `count` pages at `base` backed by *physically contiguous*
    /// frames — a hugepage-style allocation. SGX provides no hugepages
    /// (paper challenge 3), so this fails for enclaves.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IllegalInEnclave`] for enclave processes, and
    /// propagates allocation/mapping errors otherwise.
    pub fn map_pages_contiguous(
        &mut self,
        proc: ProcId,
        base: VirtAddr,
        count: usize,
    ) -> Result<(), ModelError> {
        self.check_proc(proc)?;
        self.check_alignment(base)?;
        if self.is_enclave(proc) {
            return Err(ModelError::IllegalInEnclave {
                instruction: "hugepage mapping",
            });
        }
        self.pt_generation += 1;
        let first = self.general_alloc.alloc_contiguous(count)?;
        for i in 0..count {
            let vpn = (base + (i * PAGE_SIZE) as u64).vpn();
            self.procs[proc.index()]
                .space
                .map_page(vpn, mee_types::Ppn::new(first.raw() + i as u64))?;
        }
        Ok(())
    }

    /// Translates a virtual address in `proc` (no timing side effects).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PageFault`] for unmapped addresses and
    /// [`ModelError::NoSuchProcess`] for a process id this machine never
    /// issued.
    pub fn translate(&self, proc: ProcId, va: VirtAddr) -> Result<PhysAddr, ModelError> {
        self.check_proc(proc)?;
        self.procs[proc.index()].space.translate(va)
    }

    /// [`Self::translate`] through the translation memo — the hot-path
    /// variant used by every instruction that touches memory.
    ///
    /// The memo is a direct-mapped array of page translations, each
    /// stamped with the page-table generation it was filled under. Every
    /// mapping mutation ([`Self::map_pages`], [`Self::unmap_pages`],
    /// [`Self::map_pages_contiguous`]) and every EPC eviction
    /// ([`Self::epc_evict_page`]) bumps the generation, so a stale entry
    /// can never validate: it either carries an older stamp (rejected) or
    /// was filled after the mutation (already correct). Combined with
    /// translation having no timing side effects, a memo hit is
    /// observationally identical to a fresh page-table walk — see
    /// `DESIGN.md`, "Translation memo".
    fn translate_cached(&mut self, proc: ProcId, va: VirtAddr) -> Result<PhysAddr, ModelError> {
        if self.tlb.is_empty() {
            return self.translate(proc, va);
        }
        let vpn = va.vpn().raw();
        let pid = proc.index() as u64;
        let slot = ((vpn ^ pid.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % self.tlb.len() as u64)
            as usize;
        let e = self.tlb[slot];
        if e.stamp == self.pt_generation && e.vpn == vpn && u64::from(e.proc) == pid {
            return Ok(PhysAddr::new(e.page_base + va.page_offset()));
        }
        let pa = self.translate(proc, va)?;
        self.tlb[slot] = TlbEntry {
            stamp: self.pt_generation,
            proc: proc.index() as u32,
            vpn,
            page_base: pa.raw() - va.page_offset(),
        };
        Ok(pa)
    }

    /// Loads from `va`: walks L1 → L2 → LLC → DRAM (+ MEE for protected
    /// data), returning the elapsed cycles including background stalls.
    ///
    /// # Errors
    ///
    /// Returns page-fault, bad-address, or integrity-violation errors, and
    /// [`ModelError::NoSuchCore`]/[`ModelError::NoSuchProcess`] for ids
    /// this machine never issued.
    pub fn read(&mut self, core: CoreId, proc: ProcId, va: VirtAddr) -> Result<Cycles, ModelError> {
        self.mem_op(core, proc, va, None)
    }

    /// Loads from `va` and also returns the 64-bit digest stored there.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn read_value(
        &mut self,
        core: CoreId,
        proc: ProcId,
        va: VirtAddr,
    ) -> Result<(Cycles, u64), ModelError> {
        let (lat, line, kind) = self.mem_op_classified(core, proc, va, None)?;
        let value = match kind {
            RegionKind::ProtectedData => self.mee.tree_mut().peek(line)?,
            _ => self.general_store.get(&line).copied().unwrap_or(0),
        };
        Ok((lat, value))
    }

    /// Stores `digest` to `va` (write-allocate; protected stores update the
    /// integrity tree — through the full MEE write path on a hierarchy miss,
    /// functionally otherwise).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`].
    pub fn write(
        &mut self,
        core: CoreId,
        proc: ProcId,
        va: VirtAddr,
        digest: u64,
    ) -> Result<Cycles, ModelError> {
        self.mem_op(core, proc, va, Some(digest))
    }

    /// Evicts `va`'s line from every on-chip cache (all cores' L1/L2 and the
    /// LLC). Crucially, `clflush` does **not** touch the MEE cache — the
    /// asymmetry the whole attack rests on (paper challenge 1).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PageFault`] for unmapped addresses.
    pub fn clflush(&mut self, core: CoreId, proc: ProcId, va: VirtAddr) -> Result<Cycles, ModelError> {
        self.check_core(core)?;
        let pa = self.translate_cached(proc, va)?;
        Ok(self.clflush_at(core, proc, pa))
    }

    /// The post-translation body of [`Self::clflush`], shared with the
    /// batched sweep path (which translates each address once for its
    /// read *and* its flush).
    fn clflush_at(&mut self, core: CoreId, proc: ProcId, pa: PhysAddr) -> Cycles {
        let line = pa.line();
        let issued = self.cores[core.index()].now;
        for c in &mut self.cores {
            c.l1.invalidate(line);
            c.l2.invalidate(line);
        }
        self.llc.invalidate(line);
        let lat = self.cfg.timing.clflush;
        let elapsed = self.advance_with_stalls(core, lat);
        if self.obs.is_enabled() {
            self.obs.sink.record(
                issued,
                EventKind::MemOp {
                    core: core.index() as u32,
                    proc: proc.index() as u32,
                    op: MemOpKind::Clflush,
                    line: line.raw(),
                    served: None,
                    mee_level: None,
                    latency: elapsed.raw(),
                },
            );
            if let Some(m) = self.obs.metrics.as_mut() {
                m.record_mem_op(
                    core.index(),
                    proc.index(),
                    MemOpKind::Clflush,
                    None,
                    None,
                    elapsed.raw(),
                );
            }
        }
        elapsed
    }

    /// Runs one establishment sweep: for each address in `addrs` (in
    /// reverse order when `rev`), a load followed by a `clflush` of the
    /// same line — the prime/warm primitive of Algorithm 1 and the
    /// trojan's eviction sweeps. Per-op semantics (latencies, stall
    /// draws, cache and MEE effects, trace events) are exactly those of
    /// the equivalent [`Self::read`] + [`Self::clflush`] sequence — the
    /// differential tier holds the two paths bit-identical. The batch
    /// exists to pay host overheads once per address instead of twice
    /// (core validation, page translation) and to keep the whole loop in
    /// one call frame.
    ///
    /// Returns the total elapsed cycles across the batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::read`]; ops before the failing address
    /// remain applied.
    pub fn sweep_read_flush(
        &mut self,
        core: CoreId,
        proc: ProcId,
        addrs: &[VirtAddr],
        rev: bool,
    ) -> Result<Cycles, ModelError> {
        self.check_core(core)?;
        let mut total = Cycles::ZERO;
        let step = |m: &mut Self, va: VirtAddr| -> Result<Cycles, ModelError> {
            let pa = m.translate_cached(proc, va)?;
            m.sweep_pair_at(core, proc, pa)
        };
        if rev {
            for &va in addrs.iter().rev() {
                total += step(self, va)?;
            }
        } else {
            for &va in addrs {
                total += step(self, va)?;
            }
        }
        Ok(total)
    }

    /// One read-then-`clflush` pair of an establishment sweep: literally
    /// [`Self::mem_op_at`] followed by [`Self::clflush_at`], so
    /// bit-identity with the split `read` + `clflush` sequence holds by
    /// construction — same calls, same order, including the LLC victim
    /// back-invalidation landing *between* the load and the flush, and
    /// the flush never running when the MEE walk errors. The batch's
    /// wins stay upstream: one core validation, one page translation,
    /// and one call frame per address instead of two.
    ///
    /// An earlier variant fused each level's load and flush into
    /// [`SetAssocCache::access_then_invalidate`], which reorders this
    /// core's `on_invalidate(line)` against the back-invalidation of an
    /// LLC victim mapping to the same private-cache set (set counts are
    /// powers of two, so a same-LLC-set victim always shares the
    /// private set too). With the current policies that transient
    /// metadata divergence heals before any victim query can read it —
    /// the two emptied ways must be refilled first, and refills rewrite
    /// the divergent path bits — but the equivalence rests on that
    /// whole-hierarchy argument rather than local reasoning, so the
    /// sweep now keeps the split order; the seeded differential test
    /// `sweep_matches_split_under_l1_resident_llc_victims` pins it.
    fn sweep_pair_at(
        &mut self,
        core: CoreId,
        proc: ProcId,
        pa: PhysAddr,
    ) -> Result<Cycles, ModelError> {
        let (read_elapsed, _, _) = self.mem_op_at(core, proc, pa, None)?;
        Ok(read_elapsed + self.clflush_at(core, proc, pa))
    }

    /// A serializing fence (ordering is implicit in the sequential model;
    /// only the latency is charged).
    pub fn mfence(&mut self, core: CoreId) -> Cycles {
        let lat = self.cfg.timing.mfence;
        self.advance_with_stalls(core, lat)
    }

    /// Reads the time-stamp counter. Illegal in enclave mode on SGX1
    /// (paper challenge 4).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IllegalInEnclave`] when `proc` is an enclave.
    pub fn rdtsc(&mut self, core: CoreId, proc: ProcId) -> Result<Cycles, ModelError> {
        self.check_core(core)?;
        self.check_proc(proc)?;
        if self.is_enclave(proc) {
            return Err(ModelError::IllegalInEnclave {
                instruction: "rdtsc",
            });
        }
        let ts = self.cores[core.index()].now;
        self.advance_with_stalls(core, self.cfg.timing.rdtsc);
        Ok(ts)
    }

    /// Reads the hyperthread timer mailbox (paper Figure 2(c)): a sibling
    /// thread continuously publishes `rdtsc` to normal memory, so enclave
    /// code can read a timestamp for ~50 cycles — quantized to the
    /// publisher's refresh period.
    pub fn timer_read(&mut self, core: CoreId) -> Cycles {
        let now = self.cores[core.index()].now.raw();
        let q = self.cfg.timer_quantum;
        let ts = Cycles::new(now - now % q);
        self.advance_with_stalls(core, self.cfg.timing.timer_read);
        ts
    }

    /// Obtains a timestamp via an OCALL round trip (paper Figure 2(b)):
    /// legal from an enclave but costs 8000–15000 cycles, which is why the
    /// paper rejects it.
    pub fn ocall_rdtsc(&mut self, core: CoreId) -> Cycles {
        let lat = Cycles::new(self.rng.random_range(
            self.cfg.timing.ocall_min.raw()..=self.cfg.timing.ocall_max.raw(),
        ));
        self.advance_with_stalls(core, lat);
        self.cores[core.index()].now
    }

    /// Spins until the core's clock reaches `deadline` (polling the timer
    /// mailbox). A background stall near the deadline delays the wake-up by
    /// the portion spilling past it.
    pub fn busy_until(&mut self, core: CoreId, deadline: Cycles) {
        let c = &mut self.cores[core.index()];
        if c.now >= deadline {
            return;
        }
        let mut wake = deadline;
        c.stalls.for_each_stall_in(c.now, deadline, |at, dur| {
            let end = at + dur;
            if end > wake {
                wake = end;
            }
        });
        c.now = wake;
    }

    /// Advances the core's clock by `cycles` of pure computation.
    pub fn advance(&mut self, core: CoreId, cycles: Cycles) -> Cycles {
        self.advance_with_stalls(core, cycles)
    }

    /// Checks whether `line` is resident anywhere on-chip (L1/L2/LLC) —
    /// an oracle for tests, not an instruction.
    pub fn line_cached_anywhere(&self, line: LineAddr) -> bool {
        self.llc.contains(line)
            || self
                .cores
                .iter()
                .any(|c| c.l1.contains(line) || c.l2.contains(line))
    }

    /// Verifies the inclusive-LLC invariant: every line resident in any
    /// core's L1 or L2 must also be resident in the LLC. Returns the first
    /// violating `(core, line)` if any — a test oracle, not an instruction.
    pub fn check_inclusion(&self) -> Option<(CoreId, LineAddr)> {
        for (i, c) in self.cores.iter().enumerate() {
            for line in c.l1.resident_lines().chain(c.l2.resident_lines()) {
                if !self.llc.contains(line) {
                    return Some((CoreId::new(i), line));
                }
            }
        }
        None
    }

    /// Verifies that no tree-region line ever entered the on-chip caches
    /// (tree data is visible only to the MEE). Returns a violating line if
    /// any — a test oracle.
    pub fn check_no_tree_lines_on_chip(&self) -> Option<LineAddr> {
        let tree = self.layout.prm_tree();
        let mut all_lines = self
            .llc
            .resident_lines()
            .chain(self.cores.iter().flat_map(|c| {
                c.l1.resident_lines().chain(c.l2.resident_lines())
            }));
        all_lines.find(|&line| tree.contains(line.base()))
    }

    /// Where the MEE walk of the most recent [`Self::read`]/[`Self::write`]
    /// stopped, or `None` if the access was served on-chip or from the
    /// general region. Ground-truth oracle for experiment labeling — not an
    /// instruction.
    pub fn last_mee_hit(&self) -> Option<mee_engine::HitLevel> {
        self.last_mee_hit
    }

    // --- Fault-injection primitives -------------------------------------
    //
    // Structured adversity hooks for the `mee-faults` crate. These model
    // OS- or co-runner-induced events, so none of them charges latency to
    // the issuing instruction stream: preemption moves a core's clock
    // forward without doing work, and the cache events happen "from the
    // outside" (another core, the OS paging daemon) asynchronously to the
    // victim.

    /// Preempts `core` until cycle `resume`: the core executes nothing in
    /// the burst and its clock lands at `max(now, resume)` — a
    /// CacheZoom-style interrupt storm or a scheduler tick. In the
    /// discrete-event model a preempted core cannot "freeze" (shared state
    /// is touched in global clock order), so lost time is modeled as the
    /// clock jumping past the burst. A core that had already slept past
    /// `resume` (e.g. in a `busy_until` window wait) absorbs the interrupt
    /// inside the sleep and loses nothing, exactly as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn preempt_until(&mut self, core: CoreId, resume: Cycles) {
        let c = &mut self.cores[core.index()];
        c.now = c.now.max(resume);
    }

    /// Skews `core`'s clock forward by `skew` cycles — transient inter-core
    /// timer drift (the hyperthread timer mailbox lagging, an SMI charging
    /// time to the wrong core). Unlike [`Self::preempt_until`] the skew is
    /// additive: it displaces whatever the core does next, even mid-sleep.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn skew_clock(&mut self, core: CoreId, skew: Cycles) {
        let c = &mut self.cores[core.index()];
        c.now += skew;
    }

    /// Flushes `core`'s private L1/L2 caches — the architectural cost of
    /// migrating the thread off and back onto a core (the channel's shared
    /// state in the LLC and the MEE cache survives a migration, which is
    /// why the attack tolerates it; pair with [`Self::preempt_until`] for
    /// the migration downtime). Inclusion is preserved: private caches hold a
    /// subset of the LLC, so dropping them violates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn flush_private_caches(&mut self, core: CoreId) {
        let c = &mut self.cores[core.index()];
        c.l1.invalidate_all();
        c.l2.invalidate_all();
    }

    /// Flushes the entire MEE cache (a whole-cache flush event). See
    /// [`Mee::flush_cache`].
    pub fn flush_mee_cache(&mut self) {
        self.mee.flush_cache();
    }

    /// Thrashes one MEE-cache set (a co-runner cycling an eviction set
    /// through exactly that set); returns how many lines were dropped.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range for the MEE-cache geometry.
    pub fn thrash_mee_set(&mut self, set: usize) -> usize {
        self.mee.flush_cache_set(set)
    }

    /// Evicts and immediately re-maps an EPC page: every line of the page
    /// leaves the on-chip hierarchy (all L1/L2s and the LLC), and each
    /// version block's walk footprint (versions + PD_Tag lines) leaves the
    /// MEE cache — `EWB` re-encrypts the page out and `ELDU` loads it back
    /// into the *same* frame with fresh counters. The mapping itself is
    /// unchanged, so the victim's next access re-walks rather than faults.
    /// Returns the number of MEE-cache lines dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PageFault`] if `page` is unmapped in `proc`,
    /// or [`ModelError::InvalidConfig`] if it is not page-aligned.
    pub fn epc_evict_page(
        &mut self,
        proc: ProcId,
        page: VirtAddr,
    ) -> Result<usize, ModelError> {
        self.check_alignment(page)?;
        let pa = self.translate(proc, page)?;
        // The counters are rewritten even though the frame stays the same;
        // stamp conservatively so no memo entry outlives the eviction.
        self.pt_generation += 1;
        let first = pa.line();
        let count = (PAGE_SIZE / mee_types::LINE_SIZE) as u64;
        // Back-invalidate the page from every on-chip cache in one pass
        // per tag array instead of per-line broadcast calls. Caches are
        // independent, so regrouping the per-line × per-cache loop into
        // per-cache page runs preserves each cache's invalidation order.
        for c in &mut self.cores {
            let _ = c.l1.invalidate_range(first, count);
            let _ = c.l2.invalidate_range(first, count);
        }
        let _ = self.llc.invalidate_range(first, count);
        let mut mee_dropped = 0;
        for i in 0..count {
            mee_dropped += self.mee.evict_walk_footprint(LineAddr::new(first.raw() + i));
        }
        Ok(mee_dropped)
    }

    /// Rejects out-of-range core ids on the fallible instruction paths, so
    /// a `CoreId` minted for a bigger machine surfaces as a typed error
    /// instead of an index panic. Infallible paths (clock queries, fault
    /// primitives) keep their documented panics: widening every signature
    /// to `Result` would make each call site handle an error that a correct
    /// actor binding can never produce.
    fn check_core(&self, core: CoreId) -> Result<(), ModelError> {
        if core.index() < self.cores.len() {
            Ok(())
        } else {
            Err(ModelError::NoSuchCore { core: core.index() })
        }
    }

    /// Same as [`Self::check_core`] for process ids (a `ProcId` from one
    /// machine used on another).
    fn check_proc(&self, proc: ProcId) -> Result<(), ModelError> {
        if proc.index() < self.procs.len() {
            Ok(())
        } else {
            Err(ModelError::NoSuchProcess { proc: proc.index() })
        }
    }

    fn check_alignment(&self, base: VirtAddr) -> Result<(), ModelError> {
        if base.is_aligned(PAGE_SIZE) {
            Ok(())
        } else {
            Err(ModelError::InvalidConfig {
                reason: format!("mapping base {base} is not page-aligned"),
            })
        }
    }

    fn advance_with_stalls(&mut self, core: CoreId, lat: Cycles) -> Cycles {
        let c = &mut self.cores[core.index()];
        let start = c.now;
        let end = start + lat;
        let stall = c.stalls.stall_in(start, end);
        c.now = end + stall;
        lat + stall
    }

    fn mem_op(
        &mut self,
        core: CoreId,
        proc: ProcId,
        va: VirtAddr,
        store: Option<u64>,
    ) -> Result<Cycles, ModelError> {
        self.mem_op_classified(core, proc, va, store)
            .map(|(lat, _, _)| lat)
    }

    /// [`Self::mem_op`] that also returns the physical line and its region,
    /// so value-returning loads need not translate twice.
    fn mem_op_classified(
        &mut self,
        core: CoreId,
        proc: ProcId,
        va: VirtAddr,
        store: Option<u64>,
    ) -> Result<(Cycles, LineAddr, RegionKind), ModelError> {
        self.check_core(core)?;
        let pa = self.translate_cached(proc, va)?;
        self.mem_op_at(core, proc, pa, store)
    }

    /// The post-translation body of a memory op, shared with the batched
    /// sweep path.
    fn mem_op_at(
        &mut self,
        core: CoreId,
        proc: ProcId,
        pa: PhysAddr,
        store: Option<u64>,
    ) -> Result<(Cycles, LineAddr, RegionKind), ModelError> {
        let kind = self.layout.classify(pa)?;
        if kind == RegionKind::IntegrityTree {
            // Software can never map tree frames; defense in depth.
            return Err(ModelError::BadPhysAddr { pa });
        }
        let line = pa.line();
        let issued = self.cores[core.index()].now;
        let t = &self.cfg.timing;
        let mut lat = t.l1_hit;
        let mut reached_dram = false;
        let mut served = ServedAt::L1;
        self.last_mee_hit = None;

        let l1_hit = self.cores[core.index()].l1.access(line).hit;
        if !l1_hit {
            lat += t.l2_hit;
            served = ServedAt::L2;
            let l2_hit = self.cores[core.index()].l2.access(line).hit;
            if !l2_hit {
                lat += t.llc_hit;
                served = ServedAt::Llc;
                let llc_res = self.llc.access(line);
                if let Some(victim) = llc_res.evicted {
                    // Inclusive LLC: back-invalidate every private cache.
                    for c in &mut self.cores {
                        c.l1.invalidate(victim);
                        c.l2.invalidate(victim);
                    }
                    if self.obs.sink.enabled() {
                        self.obs
                            .sink
                            .record(issued, EventKind::LlcEvict { line: victim.raw() });
                    }
                }
                if !llc_res.hit {
                    reached_dram = true;
                    served = ServedAt::Dram;
                    lat += self.dram.access(line);
                    if kind == RegionKind::ProtectedData {
                        // The walk reaches the MEE after the on-chip lookups
                        // and the data fetch have elapsed on this core.
                        let arrival = self.cores[core.index()].now + lat;
                        // Split borrow: the walk needs the MEE, the DRAM
                        // model, and the event sink at once.
                        let Machine { mee, dram, obs, .. } = self;
                        let hit_level = match store {
                            Some(digest) => {
                                let access = mee
                                    .write_traced(line, digest, arrival, dram, &mut obs.sink)?;
                                lat += access.latency;
                                access.hit_level
                            }
                            None => {
                                let r = mee.read_traced(line, arrival, dram, &mut obs.sink)?;
                                lat += r.access.latency;
                                r.access.hit_level
                            }
                        };
                        self.last_mee_hit = Some(hit_level);
                        if self.obs.metrics.is_some() {
                            if let Some(set) = self.mee.versions_set(line) {
                                if let Some(m) = self.obs.metrics.as_mut() {
                                    m.record_mee_set_walk(set);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Functional store for writes that never reached the MEE (cache
        // hits): write-through to the authoritative state.
        if let Some(digest) = store {
            match kind {
                RegionKind::ProtectedData => {
                    if !reached_dram {
                        self.mee.tree_mut().write(line, digest)?;
                    }
                }
                RegionKind::General => {
                    self.general_store.insert(line, digest);
                }
                RegionKind::IntegrityTree => unreachable!("guarded above"),
            }
        }

        let elapsed = self.advance_with_stalls(core, lat);
        if self.obs.is_enabled() {
            let op = if store.is_some() {
                MemOpKind::Write
            } else {
                MemOpKind::Read
            };
            let mee_level = self
                .last_mee_hit
                .map(|h| WalkLevel::from_ladder_index(h.ladder_index()));
            self.obs.sink.record(
                issued,
                EventKind::MemOp {
                    core: core.index() as u32,
                    proc: proc.index() as u32,
                    op,
                    line: line.raw(),
                    served: Some(served),
                    mee_level,
                    latency: elapsed.raw(),
                },
            );
            if let Some(m) = self.obs.metrics.as_mut() {
                m.record_mem_op(
                    core.index(),
                    proc.index(),
                    op,
                    Some(served),
                    mee_level,
                    elapsed.raw(),
                );
            }
        }
        Ok((elapsed, line, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    const CORE0: CoreId = CoreId::new(0);
    const CORE1: CoreId = CoreId::new(1);

    fn machine() -> Machine {
        Machine::new(MachineConfig::small()).unwrap()
    }

    fn enclave_with_pages(m: &mut Machine, pages: usize) -> (ProcId, VirtAddr) {
        let p = m.create_process(AddressSpaceKind::Enclave);
        let base = VirtAddr::new(0x100_0000);
        m.map_pages(p, base, pages).unwrap();
        (p, base)
    }

    #[test]
    fn read_miss_then_hit_latencies() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        let cold = m.read(CORE0, p, base).unwrap();
        let warm = m.read(CORE0, p, base).unwrap();
        assert!(warm < cold);
        assert_eq!(warm, m.config().timing.l1_hit);
        // Cold protected read went through the MEE: root-walk territory.
        assert!(cold.raw() > 500, "cold read = {cold}");
    }

    #[test]
    fn clflush_forces_mee_visible_access() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        m.read(CORE0, p, base).unwrap();
        assert_eq!(m.mee().stats().reads, 1);
        // Cached: no MEE traffic.
        m.read(CORE0, p, base).unwrap();
        assert_eq!(m.mee().stats().reads, 1);
        // Flush the on-chip copy; the MEE cache keeps its tree lines.
        m.clflush(CORE0, p, base).unwrap();
        let lat = m.read(CORE0, p, base).unwrap();
        assert_eq!(m.mee().stats().reads, 2);
        // Versions line still cached in the MEE: the fast ~480-cycle path.
        let t = &m.config().timing;
        let nominal = t.protected_hit_latency(0);
        let diff = lat.raw() as i64 - nominal.raw() as i64;
        assert!(diff.abs() < 100, "versions-hit latency {lat} vs nominal {nominal}");
    }

    #[test]
    fn cross_core_llc_sharing() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        m.read(CORE0, p, base).unwrap();
        // Core 1 misses L1/L2 but hits the shared LLC.
        let lat = m.read(CORE1, p, base).unwrap();
        let t = &m.config().timing;
        assert_eq!(lat, t.l1_hit + t.l2_hit + t.llc_hit);
    }

    #[test]
    fn rdtsc_faults_in_enclave_only() {
        let mut m = machine();
        let (e, _) = enclave_with_pages(&mut m, 1);
        let r = m.create_process(AddressSpaceKind::Regular);
        assert!(matches!(
            m.rdtsc(CORE0, e),
            Err(ModelError::IllegalInEnclave { instruction: "rdtsc" })
        ));
        assert!(m.rdtsc(CORE0, r).is_ok());
    }

    #[test]
    fn hugepages_refused_for_enclaves() {
        let mut m = machine();
        let e = m.create_process(AddressSpaceKind::Enclave);
        let r = m.create_process(AddressSpaceKind::Regular);
        let base = VirtAddr::new(0x200_0000);
        assert!(m.map_pages_contiguous(e, base, 4).is_err());
        m.map_pages_contiguous(r, base, 4).unwrap();
        // Contiguity check.
        let pa0 = m.translate(r, base).unwrap();
        let pa3 = m.translate(r, base + 3 * PAGE_SIZE as u64).unwrap();
        assert_eq!(pa3 - pa0, 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn enclave_pages_live_in_prm_and_scatter() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 16);
        let mut sequential_pairs = 0;
        let mut prev = None;
        for i in 0..16u64 {
            let pa = m.translate(p, base + i * PAGE_SIZE as u64).unwrap();
            assert!(m.layout().prm_data().contains(pa));
            if let Some(prev) = prev {
                if pa > prev && pa - prev == PAGE_SIZE as u64 {
                    sequential_pairs += 1;
                }
            }
            prev = Some(pa);
        }
        assert!(sequential_pairs < 8, "frames not scattered");
    }

    #[test]
    fn timer_read_is_quantized_and_cheap() {
        let mut m = machine();
        m.advance(CORE0, Cycles::new(1234));
        let ts = m.timer_read(CORE0);
        assert_eq!(ts.raw() % m.config().timer_quantum, 0);
        assert!(ts.raw() <= 1234);
        assert!(1234 - ts.raw() < m.config().timer_quantum);
        // Cost: ~50 cycles.
        assert_eq!(
            m.core_now(CORE0),
            Cycles::new(1234) + m.config().timing.timer_read
        );
    }

    #[test]
    fn ocall_timestamp_is_expensive() {
        let mut m = machine();
        let before = m.core_now(CORE0);
        let ts = m.ocall_rdtsc(CORE0);
        let elapsed = ts - before;
        assert!((8_000..=15_000).contains(&elapsed.raw()), "ocall = {elapsed}");
    }

    #[test]
    fn busy_until_reaches_deadline() {
        let mut m = machine();
        m.busy_until(CORE0, Cycles::new(50_000));
        assert_eq!(m.core_now(CORE0), Cycles::new(50_000));
        // No-op when already past.
        m.busy_until(CORE0, Cycles::new(10));
        assert_eq!(m.core_now(CORE0), Cycles::new(50_000));
    }

    #[test]
    fn write_then_read_value_roundtrip() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        m.write(CORE0, p, base + 64, 0xfeed).unwrap();
        let (_, v) = m.read_value(CORE0, p, base + 64).unwrap();
        assert_eq!(v, 0xfeed);
        // General-region store too.
        let r = m.create_process(AddressSpaceKind::Regular);
        let gbase = VirtAddr::new(0x900_0000);
        m.map_pages(r, gbase, 1).unwrap();
        m.write(CORE0, r, gbase, 77).unwrap();
        assert_eq!(m.read_value(CORE0, r, gbase).unwrap().1, 77);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = machine();
        let p = m.create_process(AddressSpaceKind::Regular);
        assert!(matches!(
            m.read(CORE0, p, VirtAddr::new(0x1000)),
            Err(ModelError::PageFault { .. })
        ));
    }

    #[test]
    fn general_reads_never_touch_mee() {
        let mut m = machine();
        let r = m.create_process(AddressSpaceKind::Regular);
        let base = VirtAddr::new(0x800_0000);
        m.map_pages(r, base, 8).unwrap();
        for i in 0..8u64 {
            m.read(CORE0, r, base + i * PAGE_SIZE as u64).unwrap();
        }
        assert_eq!(m.mee().stats().reads, 0);
        assert_eq!(m.mee().cache().occupancy(), 0);
    }

    #[test]
    fn per_core_clocks_are_independent() {
        let mut m = machine();
        m.advance(CORE0, Cycles::new(100));
        assert_eq!(m.core_now(CORE0), Cycles::new(100));
        assert_eq!(m.core_now(CORE1), Cycles::ZERO);
    }

    /// Foreign ids surface as typed errors on every fallible instruction
    /// path, never as index panics (spec-harness invariant `prm-bounds`).
    #[test]
    fn foreign_ids_yield_typed_errors() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        let bad_core = CoreId::new(m.core_count() + 3);
        assert!(matches!(
            m.read(bad_core, p, base),
            Err(ModelError::NoSuchCore { .. })
        ));
        assert!(matches!(
            m.write(bad_core, p, base, 1),
            Err(ModelError::NoSuchCore { .. })
        ));
        assert!(matches!(
            m.clflush(bad_core, p, base),
            Err(ModelError::NoSuchCore { .. })
        ));
        // A ProcId from a bigger machine: mint one legitimately elsewhere.
        let mut other = machine();
        for _ in 0..3 {
            other.create_process(AddressSpaceKind::Regular);
        }
        let foreign = other.create_process(AddressSpaceKind::Regular);
        assert!(matches!(
            m.read(CORE0, foreign, base),
            Err(ModelError::NoSuchProcess { .. })
        ));
        assert!(matches!(
            m.rdtsc(CORE0, foreign),
            Err(ModelError::NoSuchProcess { .. })
        ));
        assert!(matches!(
            m.map_pages(foreign, base, 1),
            Err(ModelError::NoSuchProcess { .. })
        ));
        assert!(matches!(
            m.translate(foreign, base),
            Err(ModelError::NoSuchProcess { .. })
        ));
    }

    #[test]
    fn map_rejects_unaligned_base() {
        let mut m = machine();
        let p = m.create_process(AddressSpaceKind::Regular);
        assert!(m.map_pages(p, VirtAddr::new(0x123), 1).is_err());
    }

    #[test]
    fn preempt_jumps_the_clock_without_work() {
        let mut m = machine();
        m.advance(CORE0, Cycles::new(100));
        m.preempt_until(CORE0, Cycles::new(30_000));
        assert_eq!(m.core_now(CORE0), Cycles::new(30_000));
        assert_eq!(m.core_now(CORE1), Cycles::ZERO, "other cores unaffected");
        // A core already past the resume point absorbed the burst in a sleep.
        m.preempt_until(CORE0, Cycles::new(10_000));
        assert_eq!(m.core_now(CORE0), Cycles::new(30_000));
        // Clock drift is additive even then.
        m.skew_clock(CORE0, Cycles::new(250));
        assert_eq!(m.core_now(CORE0), Cycles::new(30_250));
    }

    #[test]
    fn flush_private_caches_spares_llc_and_other_cores() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        m.read(CORE0, p, base).unwrap();
        m.read(CORE1, p, base).unwrap();
        let line = m.translate(p, base).unwrap().line();
        m.flush_private_caches(CORE0);
        // Core 0's private copies are gone; LLC and core 1 keep theirs.
        assert!(m.llc.contains(line));
        assert!(!m.cores[0].l1.contains(line) && !m.cores[0].l2.contains(line));
        assert!(m.cores[1].l1.contains(line));
        assert!(m.check_inclusion().is_none());
    }

    #[test]
    fn mee_flush_and_set_thrash_force_deeper_walks() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 1);
        m.read(CORE0, p, base).unwrap();
        assert!(m.mee().cache().occupancy() > 0);
        m.flush_mee_cache();
        assert_eq!(m.mee().cache().occupancy(), 0);
        // Refill, then thrash exactly the versions set.
        m.clflush(CORE0, p, base).unwrap();
        m.read(CORE0, p, base).unwrap();
        let geo = *m.mee().geometry();
        let sets = m.mee().cache().config().sets;
        let line = m.translate(p, base).unwrap().line();
        let vset = geo
            .version_line(geo.walk_path(line).version)
            .set_index(sets);
        assert!(m.thrash_mee_set(vset) > 0);
        // The versions line is gone: the next flushed read misses Versions.
        m.clflush(CORE0, p, base).unwrap();
        m.read(CORE0, p, base).unwrap();
        assert_ne!(m.last_mee_hit(), Some(mee_engine::HitLevel::Versions));
    }

    #[test]
    fn epc_evict_drops_page_lines_and_walk_footprint() {
        let mut m = machine();
        let (p, base) = enclave_with_pages(&mut m, 2);
        m.read(CORE0, p, base).unwrap();
        let line = m.translate(p, base).unwrap().line();
        let dropped = m.epc_evict_page(p, base).unwrap();
        assert!(dropped > 0, "walk footprint should have been resident");
        assert!(!m.line_cached_anywhere(line));
        // The page stays mapped: the next access re-walks, not faults, and
        // misses the versions level (fresh counters after ELDU).
        m.read(CORE0, p, base).unwrap();
        assert_ne!(m.last_mee_hit(), Some(mee_engine::HitLevel::Versions));
        // Unaligned / unmapped targets are rejected.
        assert!(m.epc_evict_page(p, base + 64u64).is_err());
        assert!(m
            .epc_evict_page(p, VirtAddr::new(0xdead_d000))
            .is_err());
    }

    /// The translation memo can never serve a stale entry: under random
    /// interleavings of mapping mutations (map/unmap/EPC-evict) with
    /// memory ops, a machine with a tiny aliasing-prone memo stays
    /// bit-identical — op results, latencies, page-fault errors, and every
    /// live translation — to one that walks the page tables on every op.
    #[test]
    fn translation_memo_matches_unmemoised_machine_under_mutations() {
        use mee_rng::prop::{check, pick, PropConfig};
        check(
            "translation_memo_matches_unmemoised_machine_under_mutations",
            &PropConfig::from_env(32),
            |rng| {
                let mk = |tlb_entries: usize| {
                    let mut cfg = MachineConfig::small();
                    // 4 slots over a 16-page pool forces constant slot
                    // aliasing — the hardest regime for stale entries.
                    cfg.tlb_entries = tlb_entries;
                    Machine::new(cfg).unwrap()
                };
                let mut memo = mk(4);
                let mut plain = mk(0);
                let pm = memo.create_process(AddressSpaceKind::Enclave);
                let pp = plain.create_process(AddressSpaceKind::Enclave);
                let base = 0x100_0000u64;
                const SLOTS: usize = 16;
                let mut mapped = [false; SLOTS];
                let page = |s: usize| VirtAddr::new(base + (s * PAGE_SIZE) as u64);
                let show = |r: Result<Cycles, ModelError>| r.map_err(|e| e.to_string());
                for _ in 0..rng.random_range(30usize..120) {
                    let s = rng.random_range(0usize..SLOTS);
                    let va = page(s) + 64 * rng.random_range(0u64..64);
                    match pick(rng, &[0u8, 1, 2, 3, 4, 5]) {
                        0 if !mapped[s] => {
                            memo.map_pages(pm, page(s), 1).unwrap();
                            plain.map_pages(pp, page(s), 1).unwrap();
                            mapped[s] = true;
                        }
                        1 if mapped[s] => {
                            memo.unmap_pages(pm, page(s), 1).unwrap();
                            plain.unmap_pages(pp, page(s), 1).unwrap();
                            mapped[s] = false;
                        }
                        2 => {
                            let a = memo.epc_evict_page(pm, page(s));
                            let b = plain.epc_evict_page(pp, page(s));
                            assert_eq!(
                                a.map_err(|e| e.to_string()),
                                b.map_err(|e| e.to_string())
                            );
                        }
                        3 => {
                            let digest = rng.random();
                            assert_eq!(
                                show(memo.write(CORE0, pm, va, digest)),
                                show(plain.write(CORE0, pp, va, digest))
                            );
                        }
                        4 => assert_eq!(
                            show(memo.clflush(CORE0, pm, va)),
                            show(plain.clflush(CORE0, pp, va))
                        ),
                        _ => assert_eq!(
                            show(memo.read(CORE0, pm, va)),
                            show(plain.read(CORE0, pp, va))
                        ),
                    }
                    // Every live translation agrees after every step —
                    // a stale memo entry would surface here even if the
                    // faulting op's latency happened to match.
                    for (slot, &is_mapped) in mapped.iter().enumerate() {
                        let a = memo.translate(pm, page(slot));
                        let b = plain.translate(pp, page(slot));
                        assert_eq!(a.is_ok(), is_mapped, "slot {slot} mapping lost");
                        assert_eq!(
                            a.map_err(|e| e.to_string()),
                            b.map_err(|e| e.to_string()),
                            "translation diverged for slot {slot}"
                        );
                    }
                }
                assert_eq!(memo.core_now(CORE0), plain.core_now(CORE0));
            },
        );
    }

    /// The batched sweep must remain the split `read` + `clflush`
    /// sequence, op for op, in the one ordering a per-level fusion gets
    /// wrong: a sweep read whose LLC eviction back-invalidates a line
    /// still resident in the sweeping core's private caches. Set counts
    /// are powers of two, so such a victim always lands in the same
    /// L1/L2 set as the swept line, and `TreePlru::on_invalidate`
    /// rewrites shared per-set tree bits — flushing the swept line before
    /// the back-invalidation (as a fused read+flush pair would) leaves
    /// different policy metadata than flushing it after, as the split
    /// path does. Random workloads over a single-set TreePlru hierarchy
    /// drive the batched and split paths on twin machines and demand
    /// identical latencies, clocks, residency, and statistics after
    /// every step; the test also requires the hard scenario to actually
    /// fire.
    #[test]
    fn sweep_matches_split_under_l1_resident_llc_victims() {
        use mee_cache::CacheConfig;
        use mee_rng::prop::{check, PropConfig};
        use std::cell::Cell;

        let scenario_fired = Cell::new(false);
        check(
            "sweep_matches_split_under_l1_resident_llc_victims",
            &PropConfig::from_env(24),
            |rng| {
                let mk = || {
                    let mut cfg = MachineConfig::small();
                    // Single-set TreePlru hierarchy: every line contends in
                    // the same L1/L2/LLC set, so sweep-induced LLC evictions
                    // routinely hit lines the sweeping core still caches
                    // privately.
                    cfg.l1 = CacheConfig { sets: 1, ways: 4, line_size: 64 };
                    cfg.l2 = CacheConfig { sets: 1, ways: 4, line_size: 64 };
                    cfg.llc = CacheConfig { sets: 1, ways: 8, line_size: 64 };
                    Machine::new(cfg).unwrap()
                };
                let mut a = mk(); // drives sweep_read_flush
                let mut b = mk(); // drives the split sequence
                let proc_a = a.create_process(AddressSpaceKind::Enclave);
                let proc_b = b.create_process(AddressSpaceKind::Enclave);
                let base = VirtAddr::new(0x100_0000);
                const POOL: usize = 10;
                a.map_pages(proc_a, base, POOL).unwrap();
                b.map_pages(proc_b, base, POOL).unwrap();
                let addr = |s: usize| base + (s * PAGE_SIZE) as u64;
                let lines: Vec<LineAddr> = (0..POOL)
                    .map(|s| a.translate(proc_a, addr(s)).unwrap().line())
                    .collect();
                let residency = |m: &Machine, line: LineAddr| {
                    (m.core_caches_line(CORE0, line), m.llc().contains(line))
                };

                for _ in 0..rng.random_range(20usize..60) {
                    if rng.random_range(0u8..3) == 0 {
                        // A sweep over 1–3 pool addresses, either direction.
                        let n = rng.random_range(1usize..4);
                        let addrs: Vec<VirtAddr> = (0..n)
                            .map(|_| addr(rng.random_range(0usize..POOL)))
                            .collect();
                        let rev = rng.random_range(0u8..2) == 1;
                        let before: Vec<_> =
                            lines.iter().map(|&l| residency(&a, l)).collect();
                        let total = a.sweep_read_flush(CORE0, proc_a, &addrs, rev).unwrap();
                        let order: Vec<VirtAddr> = if rev {
                            addrs.iter().rev().copied().collect()
                        } else {
                            addrs.clone()
                        };
                        let mut split = Cycles::ZERO;
                        for &va in &order {
                            split += b.read(CORE0, proc_b, va).unwrap();
                            split += b.clflush(CORE0, proc_b, va).unwrap();
                        }
                        assert_eq!(total, split, "batch latency diverged from split");
                        let swept: Vec<LineAddr> = order
                            .iter()
                            .map(|&va| b.translate(proc_b, va).unwrap().line())
                            .collect();
                        for (i, &l) in lines.iter().enumerate() {
                            let (was_private, was_llc) = before[i];
                            if was_private
                                && was_llc
                                && !a.llc().contains(l)
                                && !swept.contains(&l)
                            {
                                // An LLC eviction back-invalidated a line the
                                // sweeping core still held privately.
                                scenario_fired.set(true);
                            }
                        }
                    } else {
                        // A plain (unflushed) read, so the private caches
                        // retain eviction candidates for later sweeps.
                        let va = addr(rng.random_range(0usize..POOL));
                        assert_eq!(
                            a.read(CORE0, proc_a, va).unwrap(),
                            b.read(CORE0, proc_b, va).unwrap()
                        );
                    }
                    assert_eq!(a.core_now(CORE0), b.core_now(CORE0));
                    assert_eq!(a.llc().stats(), b.llc().stats());
                    assert_eq!(a.mee().stats(), b.mee().stats());
                    for &l in &lines {
                        assert_eq!(residency(&a, l), residency(&b, l));
                    }
                }
            },
        );
        assert!(
            scenario_fired.get(),
            "workloads never exercised an LLC eviction back-invalidating a \
             privately cached line mid-sweep"
        );
    }
}

//! Page-frame allocation.
//!
//! Frame placement is load-bearing for the paper: the reverse-engineering
//! experiments (§4) rely on the OS handing out *scattered* physical frames,
//! so that version lines of 4 KB-strided virtual pages land in MEE-cache
//! sets with only 1-in-8 alignment probability. [`PlacementPolicy::Randomized`]
//! is therefore the default; [`PlacementPolicy::Sequential`] exists for
//! white-box tests, and [`FrameAllocator::alloc_contiguous`] models the
//! hugepage-backed allocations available *outside* enclaves (challenge 3).

use mee_rng::Rng;
use mee_types::{ModelError, Ppn};

use crate::layout::Region;

/// How the allocator orders free frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Frames are handed out in a seeded random order — the OS-buddy-like
    /// behaviour the paper's statistics assume.
    Randomized {
        /// RNG seed controlling the shuffle.
        seed: u64,
    },
    /// Frames are handed out in ascending physical order (for white-box
    /// tests and worst-case analyses).
    Sequential,
}

/// Allocates 4 KiB frames from one physical [`Region`].
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    region: Region,
    /// Free frames; allocation pops from the back.
    free: Vec<Ppn>,
    policy: PlacementPolicy,
    /// RNG used by the randomized policy to scatter *reuse* as well as the
    /// initial order (a real OS hands back recycled frames in effectively
    /// random order, which the §4 statistics depend on).
    rng: Option<Rng>,
}

impl FrameAllocator {
    /// Creates an allocator owning every frame in `region`.
    pub fn new(region: Region, policy: PlacementPolicy) -> Self {
        let first = region.base().ppn().raw();
        let mut free: Vec<Ppn> = (first..first + region.pages()).map(Ppn::new).collect();
        let rng = match policy {
            PlacementPolicy::Randomized { seed } => {
                let mut rng = Rng::seed_from_u64(seed);
                rng.shuffle(&mut free);
                Some(rng)
            }
            PlacementPolicy::Sequential => {
                // Pop from the back => ascending order needs descending list.
                free.reverse();
                None
            }
        };
        FrameAllocator {
            region,
            free,
            policy,
            rng,
        }
    }

    /// The region this allocator serves.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of free frames remaining.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self) -> Result<Ppn, ModelError> {
        self.free.pop().ok_or(ModelError::OutOfMemory {
            requested_pages: 1,
            available_pages: 0,
        })
    }

    /// Allocates `count` physically contiguous frames (a hugepage-style
    /// run), returning the first frame. Only meaningful for non-enclave
    /// memory — SGX has no hugepages.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfMemory`] if no contiguous run of `count`
    /// free frames exists.
    pub fn alloc_contiguous(&mut self, count: usize) -> Result<Ppn, ModelError> {
        if count == 0 || count > self.free.len() {
            return Err(ModelError::OutOfMemory {
                requested_pages: count,
                available_pages: self.free.len(),
            });
        }
        let mut sorted: Vec<u64> = self.free.iter().map(|p| p.raw()).collect();
        sorted.sort_unstable();
        let mut run_start = 0usize;
        let mut found = None;
        for i in 1..=sorted.len() {
            if i == sorted.len() || sorted[i] != sorted[i - 1] + 1 {
                if i - run_start >= count {
                    found = Some(sorted[run_start]);
                    break;
                }
                run_start = i;
            }
        }
        let first = found.ok_or(ModelError::OutOfMemory {
            requested_pages: count,
            available_pages: self.free.len(),
        })?;
        let taken = first..first + count as u64;
        self.free.retain(|p| !taken.contains(&p.raw()));
        Ok(Ppn::new(first))
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is outside the region or already free (double free).
    pub fn free(&mut self, ppn: Ppn) {
        assert!(
            self.region.contains(ppn.base()),
            "{ppn} is outside the allocator's region"
        );
        assert!(
            !self.free.contains(&ppn),
            "double free of {ppn}"
        );
        self.free.push(ppn);
        // Randomized policy: scatter the recycled frame into the free list
        // so reuse order is as unpredictable as initial placement.
        if let Some(rng) = &mut self.rng {
            let len = self.free.len();
            let i = rng.random_range(0..len);
            self.free.swap(i, len - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_types::{PhysAddr, PAGE_SIZE};
    use std::collections::BTreeSet;

    fn region(pages: u64) -> Region {
        Region::new(PhysAddr::new(0x10_0000), pages * PAGE_SIZE as u64)
    }

    #[test]
    fn sequential_allocates_in_order() {
        let mut a = FrameAllocator::new(region(4), PlacementPolicy::Sequential);
        let first = a.alloc().unwrap();
        let second = a.alloc().unwrap();
        assert_eq!(first.raw() + 1, second.raw());
        assert_eq!(a.free_pages(), 2);
    }

    #[test]
    fn randomized_is_a_permutation() {
        let pages = 64;
        let mut a = FrameAllocator::new(region(pages), PlacementPolicy::Randomized { seed: 9 });
        let mut seen = BTreeSet::new();
        for _ in 0..pages {
            assert!(seen.insert(a.alloc().unwrap().raw()));
        }
        assert_eq!(seen.len(), pages as usize);
        assert!(a.alloc().is_err());
        // All frames within the region.
        let base = region(pages).base().ppn().raw();
        assert!(seen.iter().all(|&p| (base..base + pages).contains(&p)));
    }

    #[test]
    fn randomized_actually_scatters() {
        let mut a = FrameAllocator::new(region(256), PlacementPolicy::Randomized { seed: 1 });
        let order: Vec<u64> = (0..256).map(|_| a.alloc().unwrap().raw()).collect();
        let ascending = order.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(ascending < 32, "allocation order suspiciously sequential");
    }

    #[test]
    fn same_seed_same_order() {
        let mk = || FrameAllocator::new(region(32), PlacementPolicy::Randomized { seed: 5 });
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..32 {
            assert_eq!(a.alloc().unwrap(), b.alloc().unwrap());
        }
    }

    #[test]
    fn randomized_reuse_is_not_lifo() {
        let mut a = FrameAllocator::new(region(128), PlacementPolicy::Randomized { seed: 3 });
        // Allocate and free the same batch repeatedly; the batches must not
        // keep coming back identical (a real OS recycles frames unpredictably).
        let first: Vec<Ppn> = (0..16).map(|_| a.alloc().unwrap()).collect();
        for &p in &first {
            a.free(p);
        }
        let second: Vec<Ppn> = (0..16).map(|_| a.alloc().unwrap()).collect();
        assert_ne!(first, second, "recycled frames returned in LIFO order");
    }

    #[test]
    fn contiguous_allocation_finds_runs() {
        let mut a = FrameAllocator::new(region(16), PlacementPolicy::Randomized { seed: 2 });
        let first = a.alloc_contiguous(8).unwrap();
        assert_eq!(a.free_pages(), 8);
        // The run really is gone.
        for _ in 0..8 {
            let p = a.alloc().unwrap();
            assert!(
                p.raw() < first.raw() || p.raw() >= first.raw() + 8,
                "contiguous frames leaked back"
            );
        }
    }

    #[test]
    fn contiguous_fails_when_fragmented() {
        let mut a = FrameAllocator::new(region(8), PlacementPolicy::Sequential);
        // Take every other frame.
        let frames: Vec<Ppn> = (0..8).map(|_| a.alloc().unwrap()).collect();
        for f in frames.iter().step_by(2) {
            a.free(*f);
        }
        assert_eq!(a.free_pages(), 4);
        assert!(a.alloc_contiguous(2).is_err());
        assert!(a.alloc_contiguous(1).is_ok());
    }

    #[test]
    fn oom_reports_availability() {
        let mut a = FrameAllocator::new(region(2), PlacementPolicy::Sequential);
        a.alloc().unwrap();
        a.alloc().unwrap();
        match a.alloc() {
            Err(ModelError::OutOfMemory {
                available_pages, ..
            }) => assert_eq!(available_pages, 0),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(region(2), PlacementPolicy::Sequential);
        let p = a.alloc().unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn foreign_free_panics() {
        let mut a = FrameAllocator::new(region(2), PlacementPolicy::Sequential);
        a.free(Ppn::new(0));
    }
}

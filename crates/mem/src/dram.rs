//! DRAM bank/row-buffer latency model.

use mee_types::{Cycles, LineAddr, ModelError};

use crate::noise::GaussianJitter;

/// Geometry and timing of the DRAM subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of banks (power of two); consecutive rows interleave across
    /// banks.
    pub banks: usize,
    /// Row-buffer size in cache lines (power of two).
    pub row_lines: usize,
    /// Latency when the target row is already open in its bank.
    pub row_hit: Cycles,
    /// Latency when the bank must precharge + activate a new row.
    pub row_miss: Cycles,
    /// Gaussian jitter standard deviation in cycles.
    pub jitter_std: f64,
    /// RNG seed for the jitter source.
    pub seed: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 16,
            row_lines: 128, // 8 KiB rows
            row_hit: Cycles::new(170),
            row_miss: Cycles::new(210),
            jitter_std: 40.0,
            seed: 0x0d5a,
        }
    }
}

impl DramConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for non-power-of-two geometry
    /// or `row_hit > row_miss`.
    pub fn validate(&self) -> Result<(), ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        if !self.banks.is_power_of_two() {
            return fail(format!("bank count {} not a power of two", self.banks));
        }
        if !self.row_lines.is_power_of_two() {
            return fail(format!("row size {} not a power of two", self.row_lines));
        }
        if self.row_hit > self.row_miss {
            return fail("row_hit latency must not exceed row_miss".into());
        }
        Ok(())
    }
}

/// Stateful DRAM model: per-bank open rows, with jitter.
///
/// Address mapping: the row index is `line / row_lines`, and rows stripe
/// across banks (`row % banks`), the common open-page interleaving. The
/// state makes *stride pattern* matter: sequential sweeps enjoy row hits,
/// scattered probes pay activations — one of the noise floors the paper's
/// single-way probe has to survive.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    open_rows: Vec<Option<u64>>,
    jitter: GaussianJitter,
    accesses: u64,
    row_hits: u64,
    /// `log2(row_lines)` — the geometry is validated power-of-two, so the
    /// per-access row/bank mapping is a shift and a mask, not two divides.
    row_shift: u32,
    bank_mask: u64,
}

impl DramModel {
    /// Creates a DRAM model with all banks closed.
    ///
    /// # Errors
    ///
    /// Propagates [`DramConfig::validate`] failures.
    pub fn new(cfg: DramConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        Ok(DramModel {
            jitter: GaussianJitter::new(cfg.jitter_std, cfg.seed),
            open_rows: vec![None; cfg.banks],
            row_shift: cfg.row_lines.trailing_zeros(),
            bank_mask: cfg.banks as u64 - 1,
            cfg,
            accesses: 0,
            row_hits: 0,
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Performs one line fetch and returns its latency.
    pub fn access(&mut self, line: LineAddr) -> Cycles {
        self.accesses += 1;
        let row = line.raw() >> self.row_shift;
        let bank = (row & self.bank_mask) as usize;
        let base = if self.open_rows[bank] == Some(row) {
            self.row_hits += 1;
            self.cfg.row_hit
        } else {
            self.open_rows[bank] = Some(row);
            self.cfg.row_miss
        };
        self.jitter.apply(base)
    }

    /// Fraction of accesses that hit an open row so far.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Closes every bank's row buffer (e.g. after a refresh window).
    pub fn close_all_rows(&mut self) {
        for r in &mut self.open_rows {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(cfg: DramConfig) -> DramModel {
        DramModel::new(DramConfig {
            jitter_std: 0.0,
            ..cfg
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(DramConfig::default().validate().is_ok());
        assert!(DramConfig {
            banks: 3,
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            row_lines: 100,
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            row_hit: Cycles::new(500),
            ..DramConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = quiet(DramConfig::default());
        assert_eq!(d.access(LineAddr::new(0)), Cycles::new(210));
    }

    #[test]
    fn same_row_hits_after_activation() {
        let mut d = quiet(DramConfig::default());
        d.access(LineAddr::new(0));
        assert_eq!(d.access(LineAddr::new(1)), Cycles::new(170));
        assert!(d.row_hit_rate() > 0.0);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = DramConfig::default();
        let mut d = quiet(cfg.clone());
        let row_stride = cfg.row_lines as u64;
        let bank_cycle = cfg.banks as u64 * row_stride;
        d.access(LineAddr::new(0)); // row 0, bank 0
        d.access(LineAddr::new(bank_cycle)); // row banks, bank 0 again
        assert_eq!(d.access(LineAddr::new(0)), Cycles::new(210)); // row 0 evicted
    }

    #[test]
    fn sequential_sweep_mostly_row_hits() {
        let mut d = quiet(DramConfig::default());
        for i in 0..1024u64 {
            d.access(LineAddr::new(i));
        }
        assert!(d.row_hit_rate() > 0.9, "rate = {}", d.row_hit_rate());
        assert_eq!(d.accesses(), 1024);
    }

    #[test]
    fn close_all_rows_forces_misses() {
        let mut d = quiet(DramConfig::default());
        d.access(LineAddr::new(0));
        d.close_all_rows();
        assert_eq!(d.access(LineAddr::new(1)), Cycles::new(210));
    }

    #[test]
    fn jitter_perturbs_but_preserves_scale() {
        let mut d = DramModel::new(DramConfig::default()).unwrap();
        let lat = d.access(LineAddr::new(0));
        assert!((105..=380).contains(&lat.raw()), "latency = {lat}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || DramModel::new(DramConfig::default()).unwrap();
        let (mut a, mut b) = (mk(), mk());
        for i in 0..256u64 {
            assert_eq!(a.access(LineAddr::new(i * 37)), b.access(LineAddr::new(i * 37)));
        }
    }
}

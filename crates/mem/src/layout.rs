//! Physical memory layout: general region + PRM (protected data + tree).

use mee_types::{ModelError, PhysAddr, LINE_SIZE, PAGE_SIZE, TREE_ARITY, VERSION_BLOCKS_PER_PAGE};

/// A contiguous range of physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: PhysAddr,
    size: u64,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `size` is not page-aligned.
    pub fn new(base: PhysAddr, size: u64) -> Self {
        assert!(base.is_aligned(PAGE_SIZE), "region base must be page-aligned");
        assert_eq!(size % PAGE_SIZE as u64, 0, "region size must be page-aligned");
        Region { base, size }
    }

    /// First byte of the region.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// One past the last byte.
    pub fn end(&self) -> PhysAddr {
        self.base + self.size
    }

    /// Number of 4 KiB pages in the region.
    pub fn pages(&self) -> u64 {
        self.size / PAGE_SIZE as u64
    }

    /// Whether `pa` falls inside the region.
    pub fn contains(&self, pa: PhysAddr) -> bool {
        pa >= self.base && pa < self.end()
    }
}

/// Which architectural region a physical address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Ordinary DRAM: no encryption, no integrity tree.
    General,
    /// Protected data inside the PRM: every access goes through the MEE.
    ProtectedData,
    /// The integrity-tree arrays inside the PRM (versions + PD_Tag
    /// interleaved, then L0/L1/L2). Only the MEE itself reads these.
    IntegrityTree,
}

/// The machine's physical memory map.
///
/// ```text
/// 0 ──────────────── general ──────────────── prm_base ── tree ── data ── end
/// ```
///
/// The PRM is split so the integrity tree exactly covers the protected data
/// region: per 4 KiB data page the tree needs 16 interleaved version/PD_Tag
/// lines (1 KiB) plus one L0 line (64 B) plus 1/8 L1 line plus 1/64 L2 line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysLayout {
    general: Region,
    tree: Region,
    data: Region,
}

impl PhysLayout {
    /// Lays out `general_bytes` of ordinary DRAM followed by a PRM of
    /// `prm_bytes` (the paper's machine: 32 GiB with a 128 MiB PRM — tests
    /// use smaller numbers; the model only stores tags, not contents).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if either size is zero, not
    /// page-aligned, or the PRM is too small to hold even one protected page
    /// plus its tree.
    pub fn new(general_bytes: u64, prm_bytes: u64) -> Result<Self, ModelError> {
        let fail = |reason: String| Err(ModelError::InvalidConfig { reason });
        if general_bytes == 0 || prm_bytes == 0 {
            return fail("memory region sizes must be non-zero".into());
        }
        if !general_bytes.is_multiple_of(PAGE_SIZE as u64) || !prm_bytes.is_multiple_of(PAGE_SIZE as u64) {
            return fail("memory region sizes must be page-aligned".into());
        }

        // Per-page integrity overhead in bytes (see type-level doc).
        let versions_and_tags = 2 * VERSION_BLOCKS_PER_PAGE as u64 * LINE_SIZE as u64; // 1 KiB
        let l0 = LINE_SIZE as u64; // one L0 line per page
        // L1/L2 shares are fractional; compute the split in whole pages.
        let data_pages = {
            // Solve data_pages such that total fits, walking down from the
            // upper bound given by the dominant per-page overhead.
            let per_page_min = PAGE_SIZE as u64 + versions_and_tags + l0;
            let mut pages = prm_bytes / per_page_min;
            while pages > 0 && Self::tree_bytes_for(pages) + pages * PAGE_SIZE as u64 > prm_bytes {
                pages -= 1;
            }
            pages
        };
        if data_pages == 0 {
            return fail(format!(
                "PRM of {prm_bytes} bytes cannot hold one protected page plus its tree"
            ));
        }

        let tree_bytes = Self::tree_bytes_for(data_pages);
        let general = Region::new(PhysAddr::new(0), general_bytes);
        let tree = Region::new(general.end(), tree_bytes);
        let data = Region::new(tree.end(), data_pages * PAGE_SIZE as u64);
        Ok(PhysLayout {
            general,
            tree,
            data,
        })
    }

    /// Total integrity-tree bytes needed to cover `data_pages` protected
    /// pages: interleaved versions/PD_Tag lines plus L0/L1/L2 arrays, each
    /// rounded up to whole pages.
    pub fn tree_bytes_for(data_pages: u64) -> u64 {
        let line = LINE_SIZE as u64;
        let versions_lines = data_pages * VERSION_BLOCKS_PER_PAGE as u64;
        let interleaved = 2 * versions_lines * line;
        let mut level_lines = versions_lines;
        let mut upper = 0u64;
        for _ in 0..3 {
            level_lines = level_lines.div_ceil(TREE_ARITY as u64);
            upper += level_lines * line;
        }
        let total = interleaved + upper;
        total.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
    }

    /// The ordinary (non-PRM) DRAM region.
    pub fn general(&self) -> Region {
        self.general
    }

    /// The protected-data region of the PRM (enclave pages live here).
    pub fn prm_data(&self) -> Region {
        self.data
    }

    /// The integrity-tree region of the PRM.
    pub fn prm_tree(&self) -> Region {
        self.tree
    }

    /// Total physical memory covered by the layout.
    pub fn total_bytes(&self) -> u64 {
        self.data.end().raw()
    }

    /// Classifies a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadPhysAddr`] when `pa` is outside all regions.
    pub fn classify(&self, pa: PhysAddr) -> Result<RegionKind, ModelError> {
        if self.general.contains(pa) {
            Ok(RegionKind::General)
        } else if self.tree.contains(pa) {
            Ok(RegionKind::IntegrityTree)
        } else if self.data.contains(pa) {
            Ok(RegionKind::ProtectedData)
        } else {
            Err(ModelError::BadPhysAddr { pa })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_basics() {
        let r = Region::new(PhysAddr::new(0x1000), 0x2000);
        assert_eq!(r.pages(), 2);
        assert!(r.contains(PhysAddr::new(0x1000)));
        assert!(r.contains(PhysAddr::new(0x2fff)));
        assert!(!r.contains(PhysAddr::new(0x3000)));
        assert!(!r.contains(PhysAddr::new(0xfff)));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn region_rejects_unaligned_base() {
        let _ = Region::new(PhysAddr::new(0x100), 0x1000);
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = PhysLayout::new(1 << 24, 8 << 20).unwrap();
        assert_eq!(l.general().base(), PhysAddr::new(0));
        assert_eq!(l.prm_tree().base(), l.general().end());
        assert_eq!(l.prm_data().base(), l.prm_tree().end());
        assert!(l.prm_data().pages() > 0);
    }

    #[test]
    fn prm_split_fits_and_is_tight() {
        for prm_mb in [1u64, 8, 32, 128] {
            let prm = prm_mb << 20;
            let l = PhysLayout::new(1 << 20, prm).unwrap();
            let used = l.prm_tree().size() + l.prm_data().size();
            assert!(used <= prm, "PRM overflow at {prm_mb} MiB");
            // Tightness: one more data page must not fit.
            let pages = l.prm_data().pages();
            assert!(
                PhysLayout::tree_bytes_for(pages + 1) + (pages + 1) * PAGE_SIZE as u64 > prm,
                "split not tight at {prm_mb} MiB"
            );
        }
    }

    #[test]
    fn overhead_matches_real_sgx_scale() {
        // Real SGX: 128 MiB PRM yields roughly 93-100 MiB usable EPC.
        let l = PhysLayout::new(1 << 20, 128 << 20).unwrap();
        let data_mb = l.prm_data().size() >> 20;
        assert!(
            (90..=105).contains(&data_mb),
            "usable protected data = {data_mb} MiB"
        );
    }

    #[test]
    fn classify_covers_all_regions() {
        let l = PhysLayout::new(1 << 20, 4 << 20).unwrap();
        assert_eq!(
            l.classify(PhysAddr::new(0)).unwrap(),
            RegionKind::General
        );
        assert_eq!(
            l.classify(l.prm_tree().base()).unwrap(),
            RegionKind::IntegrityTree
        );
        assert_eq!(
            l.classify(l.prm_data().base()).unwrap(),
            RegionKind::ProtectedData
        );
        assert!(l.classify(l.prm_data().end()).is_err());
    }

    #[test]
    fn rejects_degenerate_layouts() {
        assert!(PhysLayout::new(0, 4 << 20).is_err());
        assert!(PhysLayout::new(1 << 20, 0).is_err());
        assert!(PhysLayout::new(1 << 20, 100).is_err()); // unaligned
        assert!(PhysLayout::new(1 << 20, PAGE_SIZE as u64).is_err()); // too small
    }

    #[test]
    fn tree_bytes_monotone_in_pages() {
        let mut prev = 0;
        for pages in [1u64, 2, 10, 100, 1000, 10000] {
            let t = PhysLayout::tree_bytes_for(pages);
            assert!(t >= prev);
            prev = t;
        }
    }
}

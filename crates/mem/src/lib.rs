#![warn(missing_docs)]
//! Memory-system substrate: physical layout, frame allocation, page tables,
//! and DRAM timing.
//!
//! The paper's machine is an i7-6700K with 32 GB of DRAM of which 128 MB is
//! reserved as the Processor Reserved Memory (PRM) holding enclave pages and
//! the MEE integrity tree. This crate models:
//!
//! * [`PhysLayout`] — the split of physical memory into a *general* region
//!   and the *PRM*;
//! * [`FrameAllocator`] — page-frame allocation with randomized placement
//!   (the OS-like default, which is what makes the paper's candidate-set
//!   statistics work), sequential placement, and contiguous ("hugepage-like")
//!   allocation for non-enclave baselines;
//! * [`AddressSpace`] — per-tenant virtual→physical mappings with enclave
//!   semantics;
//! * [`DramModel`] — bank/row-buffer DRAM latency with seeded Gaussian
//!   jitter, the substrate for every timing distribution in the paper;
//! * [`StallGenerator`] — Poisson background-stall noise standing in for OS
//!   interference on a real machine.
//!
//! # Example
//!
//! ```
//! use mee_mem::{AddressSpace, AddressSpaceKind, FrameAllocator, PhysLayout, PlacementPolicy};
//! use mee_types::VirtAddr;
//!
//! # fn main() -> Result<(), mee_types::ModelError> {
//! let layout = PhysLayout::new(1 << 30, 128 << 20)?; // 1 GiB general + 128 MiB PRM
//! let mut alloc = FrameAllocator::new(layout.prm_data(), PlacementPolicy::Randomized { seed: 7 });
//! let mut space = AddressSpace::new(AddressSpaceKind::Enclave);
//! let base = VirtAddr::new(0x10_0000);
//! space.map_page(base.vpn(), alloc.alloc()?)?;
//! let pa = space.translate(base + 0x40)?;
//! assert!(layout.prm_data().contains(pa));
//! # Ok(())
//! # }
//! ```

mod alloc;
mod dram;
mod layout;
mod noise;
mod space;

pub use alloc::{FrameAllocator, PlacementPolicy};
pub use dram::{DramConfig, DramModel};
pub use layout::{PhysLayout, Region, RegionKind};
pub use noise::{GaussianJitter, StallGenerator};
pub use space::{AddressSpace, AddressSpaceKind};

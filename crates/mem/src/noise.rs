//! Noise sources: Gaussian latency jitter and Poisson background stalls.
//!
//! Real-machine timing attacks fight two noise classes the paper discusses
//! (§5.2, §5.4): per-access latency variance (DRAM scheduling, prefetchers)
//! and coarse interruptions (timer interrupts, SMIs, scheduler preemption).
//! Both are modeled here with seeded RNGs so every experiment is exactly
//! reproducible.

use mee_rng::Rng;
use mee_types::Cycles;

/// Seeded Gaussian jitter, sampled via Box–Muller and clamped to ±4σ.
#[derive(Debug, Clone)]
pub struct GaussianJitter {
    rng: Rng,
    std: f64,
    /// Second Box–Muller variate, cached.
    spare: Option<f64>,
}

impl GaussianJitter {
    /// Creates a jitter source with standard deviation `std` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn new(std: f64, seed: u64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "jitter std must be >= 0");
        GaussianJitter {
            rng: Rng::seed_from_u64(seed),
            std,
            spare: None,
        }
    }

    /// Samples one jitter value in cycles (may be negative).
    pub fn sample(&mut self) -> i64 {
        if self.std == 0.0 {
            return 0;
        }
        let z = match self.spare.take() {
            Some(z) => z,
            None => {
                // Box–Muller transform.
                let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.random();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        let clamped = z.clamp(-4.0, 4.0);
        (clamped * self.std).round() as i64
    }

    /// Adds jitter to a base latency, never letting the result drop below
    /// half the base (latency cannot go negative or implausibly small).
    pub fn apply(&mut self, base: Cycles) -> Cycles {
        let j = self.sample();
        let floor = (base.raw() / 2) as i64;
        let jittered = (base.raw() as i64 + j).max(floor);
        Cycles::new(jittered as u64)
    }
}

/// Poisson-process background stalls: each stall has a uniform duration in
/// `[min, max]` and stalls arrive with exponential inter-arrival times.
#[derive(Debug, Clone)]
pub struct StallGenerator {
    rng: Rng,
    mean_interval: u64,
    min: Cycles,
    max: Cycles,
    next_at: u64,
}

impl StallGenerator {
    /// Creates a stall source. `mean_interval == 0` disables stalls.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(mean_interval: u64, min: Cycles, max: Cycles, seed: u64) -> Self {
        assert!(min <= max, "stall min must not exceed max");
        let mut g = StallGenerator {
            rng: Rng::seed_from_u64(seed),
            mean_interval,
            min,
            max,
            next_at: 0,
        };
        g.next_at = g.draw_interval(0);
        g
    }

    /// A generator that never stalls.
    pub fn disabled() -> Self {
        Self::new(0, Cycles::ZERO, Cycles::ZERO, 0)
    }

    fn draw_interval(&mut self, from: u64) -> u64 {
        if self.mean_interval == 0 {
            return u64::MAX;
        }
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let gap = (-u.ln() * self.mean_interval as f64).ceil() as u64;
        from.saturating_add(gap.max(1))
    }

    /// Returns the total stall cycles triggered in the half-open window
    /// `[from, to)` of a core's local clock, advancing internal state.
    ///
    /// Allocation-free: this runs once per simulated memory op.
    pub fn stall_in(&mut self, from: Cycles, to: Cycles) -> Cycles {
        let mut total = Cycles::ZERO;
        self.for_each_stall_in(from, to, |_, dur| total += dur);
        total
    }

    /// Calls `f(trigger_time, duration)` for every stall event triggered in
    /// `[from, to)`, advancing internal state.
    ///
    /// Used by the machine's busy-wait primitive, where only the portion of
    /// a stall spilling past the wake-up deadline actually delays the
    /// waiter.
    pub fn for_each_stall_in(
        &mut self,
        from: Cycles,
        to: Cycles,
        mut f: impl FnMut(Cycles, Cycles),
    ) {
        while self.next_at >= from.raw() && self.next_at < to.raw() {
            let dur = if self.min == self.max {
                self.min.raw()
            } else {
                self.rng.random_range(self.min.raw()..=self.max.raw())
            };
            f(Cycles::new(self.next_at), Cycles::new(dur));
            self.next_at = self.draw_interval(self.next_at);
        }
        // If the clock jumped past pending stalls entirely, catch up.
        while self.next_at < from.raw() {
            self.next_at = self.draw_interval(from.raw());
        }
    }

    /// Collects [`Self::for_each_stall_in`] events into a `Vec` — the
    /// convenient form for tests and cold paths.
    pub fn stall_events_in(&mut self, from: Cycles, to: Cycles) -> Vec<(Cycles, Cycles)> {
        let mut events = Vec::new();
        self.for_each_stall_in(from, to, |at, dur| events.push((at, dur)));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_std_is_silent() {
        let mut j = GaussianJitter::new(0.0, 1);
        for _ in 0..100 {
            assert_eq!(j.sample(), 0);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = GaussianJitter::new(10.0, 42);
        let mut b = GaussianJitter::new(10.0, 42);
        for _ in 0..50 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn jitter_moments_are_roughly_right() {
        let mut j = GaussianJitter::new(20.0, 7);
        let n = 20_000;
        let samples: Vec<i64> = (0..n).map(|_| j.sample()).collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 1.0, "mean = {mean}");
        assert!((var.sqrt() - 20.0).abs() < 1.5, "std = {}", var.sqrt());
    }

    #[test]
    fn apply_never_goes_below_half_base() {
        let mut j = GaussianJitter::new(500.0, 3);
        for _ in 0..1000 {
            let c = j.apply(Cycles::new(100));
            assert!(c.raw() >= 50);
        }
    }

    #[test]
    fn disabled_stalls_never_fire() {
        let mut s = StallGenerator::disabled();
        assert_eq!(
            s.stall_in(Cycles::ZERO, Cycles::new(u64::MAX / 2)),
            Cycles::ZERO
        );
    }

    #[test]
    fn stall_rate_matches_mean_interval() {
        let mut s = StallGenerator::new(10_000, Cycles::new(100), Cycles::new(100), 11);
        let horizon = 10_000_000u64;
        let mut fired = 0u64;
        let mut t = 0u64;
        let step = 1000u64;
        while t < horizon {
            let stall = s.stall_in(Cycles::new(t), Cycles::new(t + step));
            fired += stall.raw() / 100;
            t += step;
        }
        let expected = horizon / 10_000;
        assert!(
            (fired as f64 - expected as f64).abs() < expected as f64 * 0.2,
            "fired = {fired}, expected ~{expected}"
        );
    }

    #[test]
    fn stall_durations_within_bounds() {
        let mut s = StallGenerator::new(1_000, Cycles::new(50), Cycles::new(200), 5);
        let mut t = 0u64;
        for _ in 0..1000 {
            let stall = s.stall_in(Cycles::new(t), Cycles::new(t + 500));
            // Multiple stalls can land in one window; each is in [50, 200].
            if stall.raw() > 0 {
                assert!(stall.raw() >= 50);
            }
            t += 500;
        }
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn stall_rejects_inverted_bounds() {
        let _ = StallGenerator::new(100, Cycles::new(10), Cycles::new(5), 0);
    }
}

//! Per-tenant virtual address spaces.

use mee_types::{FxHashMap, ModelError, PhysAddr, Ppn, VirtAddr, Vpn, PAGE_SIZE};

/// Whether an address space is an SGX enclave.
///
/// Enclave address spaces carry the restrictions the paper works around in
/// §3: 4 KiB pages only (no hugepages) and no `rdtsc`. The machine crate
/// enforces the instruction-level rules; this crate enforces the mapping
/// rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpaceKind {
    /// An ordinary process: may map general-region frames, including
    /// contiguous "hugepage" runs.
    Regular,
    /// An SGX enclave: pages must come from the PRM protected-data region
    /// and only 4 KiB granularity exists.
    Enclave,
}

/// A single tenant's virtual→physical mapping.
///
/// Deliberately minimal: a hash map of 4 KiB translations (translation is
/// on the hot path of every memory op, so lookups must be O(1)). The
/// simulator cares about *which physical lines* a program touches, not
/// about permissions or dirty bits.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    kind: AddressSpaceKind,
    table: FxHashMap<Vpn, Ppn>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new(kind: AddressSpaceKind) -> Self {
        AddressSpace {
            kind,
            table: FxHashMap::default(),
        }
    }

    /// Returns the kind of this address space.
    pub fn kind(&self) -> AddressSpaceKind {
        self.kind
    }

    /// Maps one 4 KiB page.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `vpn` is already mapped
    /// (the model has no implicit remap).
    pub fn map_page(&mut self, vpn: Vpn, ppn: Ppn) -> Result<(), ModelError> {
        if self.table.contains_key(&vpn) {
            return Err(ModelError::InvalidConfig {
                reason: format!("{vpn} is already mapped"),
            });
        }
        self.table.insert(vpn, ppn);
        Ok(())
    }

    /// Removes a mapping, returning the frame it pointed to.
    pub fn unmap_page(&mut self, vpn: Vpn) -> Option<Ppn> {
        self.table.remove(&vpn)
    }

    /// Translates a virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::PageFault`] for unmapped addresses.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, ModelError> {
        let ppn = self
            .table
            .get(&va.vpn())
            .ok_or(ModelError::PageFault { va })?;
        Ok(ppn.base() + va.page_offset())
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Iterates over mappings in VPN order.
    ///
    /// Sorts on each call — this is a debugging/introspection API, not a
    /// hot path; the backing table is unordered.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Ppn)> + '_ {
        let mut pairs: Vec<(Vpn, Ppn)> = self.table.iter().map(|(&v, &p)| (v, p)).collect();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        pairs.into_iter()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.table.len() as u64 * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_roundtrip() {
        let mut s = AddressSpace::new(AddressSpaceKind::Enclave);
        s.map_page(Vpn::new(0x100), Ppn::new(0x55)).unwrap();
        let pa = s.translate(VirtAddr::new(0x100 * PAGE_SIZE as u64 + 0xabc)).unwrap();
        assert_eq!(pa, PhysAddr::new(0x55 * PAGE_SIZE as u64 + 0xabc));
        assert_eq!(s.mapped_pages(), 1);
        assert_eq!(s.mapped_bytes(), PAGE_SIZE as u64);
        assert_eq!(s.kind(), AddressSpaceKind::Enclave);
    }

    #[test]
    fn unmapped_address_faults() {
        let s = AddressSpace::new(AddressSpaceKind::Regular);
        let va = VirtAddr::new(0xdead_b000);
        assert_eq!(s.translate(va), Err(ModelError::PageFault { va }));
    }

    #[test]
    fn double_map_is_rejected() {
        let mut s = AddressSpace::new(AddressSpaceKind::Regular);
        s.map_page(Vpn::new(1), Ppn::new(2)).unwrap();
        assert!(s.map_page(Vpn::new(1), Ppn::new(3)).is_err());
    }

    #[test]
    fn unmap_then_fault() {
        let mut s = AddressSpace::new(AddressSpaceKind::Regular);
        s.map_page(Vpn::new(1), Ppn::new(2)).unwrap();
        assert_eq!(s.unmap_page(Vpn::new(1)), Some(Ppn::new(2)));
        assert!(s.translate(VirtAddr::new(PAGE_SIZE as u64)).is_err());
        assert_eq!(s.unmap_page(Vpn::new(1)), None);
    }

    #[test]
    fn iter_is_vpn_ordered() {
        let mut s = AddressSpace::new(AddressSpaceKind::Regular);
        for vpn in [5u64, 1, 3] {
            s.map_page(Vpn::new(vpn), Ppn::new(vpn * 10)).unwrap();
        }
        let order: Vec<u64> = s.iter().map(|(v, _)| v.raw()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}

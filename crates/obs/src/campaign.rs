//! Campaign-level observability: the phase/fault event log of a sharded
//! campaign run.
//!
//! A campaign is a *host-level* orchestration — shards start, checkpoint,
//! panic, time out, get retried, get quarantined. None of that happens in
//! simulated time, so these events deliberately do **not** reuse the
//! sim-cycle [`Event`](crate::Event) taxonomy; they are their own typed
//! log, keyed by shard so rendering is deterministic (shard order, then
//! occurrence order within the shard) even though shards execute
//! concurrently.
//!
//! Host *durations* of campaign work (shard bodies, checkpoint I/O) go
//! through [`HostProfile`](crate::HostProfile) as usual; this module only
//! records *what happened*, which — unlike wall-clock — is deterministic
//! for deterministic shard bodies and therefore assertable in tests.

use std::collections::BTreeMap;
use std::fmt;

/// One lifecycle event of one shard of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardEvent {
    /// An attempt at the shard began executing on a worker.
    Started {
        /// 0-based attempt number (0 = first try).
        attempt: u32,
    },
    /// The shard finished cleanly and its aggregate was accepted.
    Completed {
        /// The attempt that succeeded.
        attempt: u32,
        /// Sessions the shard covered.
        sessions: u64,
    },
    /// The shard's aggregate was atomically checkpointed to disk.
    Checkpointed,
    /// The shard was restored from an existing checkpoint instead of
    /// re-executing (crash-resume path).
    Resumed,
    /// The shard's body panicked; the payload is preserved.
    Panicked {
        /// The attempt that panicked.
        attempt: u32,
        /// The (string-rendered) panic payload.
        message: String,
    },
    /// The shard's body returned a session error.
    Failed {
        /// The attempt that failed.
        attempt: u32,
        /// The session error, rendered.
        message: String,
    },
    /// The watchdog timed the attempt out and cancelled it.
    TimedOut {
        /// The attempt that was abandoned.
        attempt: u32,
    },
    /// The shard was put back on the queue for another attempt.
    Requeued {
        /// The attempt number the shard will retry as.
        attempt: u32,
        /// The deterministic exponential-backoff delay before the retry
        /// becomes eligible, in milliseconds.
        backoff_ms: u64,
    },
    /// The retry budget is exhausted; the shard is excluded from the
    /// aggregate and reported in the quarantine list.
    Quarantined {
        /// Total attempts consumed (including the first).
        attempts: u32,
        /// Why the final attempt was rejected.
        reason: String,
    },
}

impl fmt::Display for ShardEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardEvent::Started { attempt } => write!(f, "started attempt={attempt}"),
            ShardEvent::Completed { attempt, sessions } => {
                write!(f, "completed attempt={attempt} sessions={sessions}")
            }
            ShardEvent::Checkpointed => write!(f, "checkpointed"),
            ShardEvent::Resumed => write!(f, "resumed-from-checkpoint"),
            ShardEvent::Panicked { attempt, message } => {
                write!(f, "panicked attempt={attempt}: {message}")
            }
            ShardEvent::Failed { attempt, message } => {
                write!(f, "failed attempt={attempt}: {message}")
            }
            ShardEvent::TimedOut { attempt } => write!(f, "timed-out attempt={attempt}"),
            ShardEvent::Requeued { attempt, backoff_ms } => {
                write!(f, "requeued attempt={attempt} backoff_ms={backoff_ms}")
            }
            ShardEvent::Quarantined { attempts, reason } => {
                write!(f, "quarantined attempts={attempts}: {reason}")
            }
        }
    }
}

/// The per-shard event log of one campaign run.
///
/// Events are appended by the (single-threaded) campaign coordinator, so
/// within a shard the order is exactly occurrence order; across shards the
/// log imposes shard-index order, which makes [`CampaignLog::render`]
/// deterministic for deterministic shard bodies regardless of worker
/// scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignLog {
    shards: BTreeMap<usize, Vec<ShardEvent>>,
}

impl CampaignLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `event` to `shard`'s history.
    pub fn record(&mut self, shard: usize, event: ShardEvent) {
        self.shards.entry(shard).or_default().push(event);
    }

    /// The event history of one shard (empty slice if none recorded).
    pub fn shard(&self, shard: usize) -> &[ShardEvent] {
        self.shards.get(&shard).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(shard, events)` in shard order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[ShardEvent])> {
        self.shards.iter().map(|(&s, evs)| (s, evs.as_slice()))
    }

    /// How many events match `pred` across all shards.
    pub fn count(&self, pred: impl Fn(&ShardEvent) -> bool) -> usize {
        self.shards.values().flatten().filter(|e| pred(e)).count()
    }

    /// Renders the whole log, one `shard <i>: <event>` line per event, in
    /// shard order then occurrence order — byte-identical across runs when
    /// the shard outcomes are deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (shard, events) in self.iter() {
            for e in events {
                out.push_str(&format!("shard {shard}: {e}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_orders_by_shard_then_occurrence() {
        let mut log = CampaignLog::new();
        log.record(2, ShardEvent::Started { attempt: 0 });
        log.record(0, ShardEvent::Started { attempt: 0 });
        log.record(2, ShardEvent::Completed { attempt: 0, sessions: 4 });
        log.record(0, ShardEvent::Panicked { attempt: 0, message: "boom".into() });
        log.record(0, ShardEvent::Requeued { attempt: 1, backoff_ms: 10 });
        let rendered = log.render();
        let expected = "shard 0: started attempt=0\n\
                        shard 0: panicked attempt=0: boom\n\
                        shard 0: requeued attempt=1 backoff_ms=10\n\
                        shard 2: started attempt=0\n\
                        shard 2: completed attempt=0 sessions=4\n";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn count_and_shard_accessors() {
        let mut log = CampaignLog::new();
        log.record(1, ShardEvent::TimedOut { attempt: 0 });
        log.record(1, ShardEvent::Quarantined { attempts: 2, reason: "hung".into() });
        assert_eq!(log.count(|e| matches!(e, ShardEvent::TimedOut { .. })), 1);
        assert_eq!(log.shard(1).len(), 2);
        assert!(log.shard(0).is_empty());
    }

    #[test]
    fn display_lines_are_single_line() {
        let events = [
            ShardEvent::Checkpointed,
            ShardEvent::Resumed,
            ShardEvent::Failed { attempt: 3, message: "no such process".into() },
        ];
        for e in &events {
            assert!(!e.to_string().contains('\n'));
        }
    }
}

//! The typed event taxonomy of the trace layer.
//!
//! Every event is stamped with **simulated** time (the issuing core's clock
//! in cycles) and falls into one of four categories, which become the
//! Chrome-trace `cat` field:
//!
//! | category | events |
//! |---|---|
//! | `memory` | memory-op completions ([`EventKind::MemOp`]), LLC evictions |
//! | `tree` | integrity-tree walk steps, MEE-cache evictions |
//! | `fault` | fault-plan firings ([`EventKind::Fault`]) |
//! | `channel` | channel phase transitions ([`EventKind::Phase`]) |
//!
//! Events carry raw line numbers and ladder indices instead of the richer
//! workspace types so this crate sits *below* every simulator layer and can
//! be consumed by all of them.

use mee_types::Cycles;

/// Which instruction a [`EventKind::MemOp`] event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// A `clflush` (evicts on-chip copies, spares the MEE cache).
    Clflush,
}

impl MemOpKind {
    /// Short lowercase label, stable across releases (trace schema).
    pub fn label(self) -> &'static str {
        match self {
            MemOpKind::Read => "read",
            MemOpKind::Write => "write",
            MemOpKind::Clflush => "clflush",
        }
    }
}

/// Where in the on-chip hierarchy a memory op was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedAt {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared LLC hit.
    Llc,
    /// Missed on-chip; served from DRAM (plus the MEE for protected data).
    Dram,
}

impl ServedAt {
    /// Short lowercase label, stable across releases (trace schema).
    pub fn label(self) -> &'static str {
        match self {
            ServedAt::L1 => "l1",
            ServedAt::L2 => "l2",
            ServedAt::Llc => "llc",
            ServedAt::Dram => "dram",
        }
    }
}

/// One consulted level of an integrity-tree walk, in walk order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkLevel {
    /// The PD_Tag metadata line (always consulted, latency overlapped).
    PdTag,
    /// The versions level — the level the covert channel modulates.
    Versions,
    /// Tree level 0.
    L0,
    /// Tree level 1.
    L1,
    /// Tree level 2.
    L2,
    /// The on-die root (never misses).
    Root,
}

impl WalkLevel {
    /// Short lowercase label, stable across releases (trace schema).
    pub fn label(self) -> &'static str {
        match self {
            WalkLevel::PdTag => "pd_tag",
            WalkLevel::Versions => "versions",
            WalkLevel::L0 => "l0",
            WalkLevel::L1 => "l1",
            WalkLevel::L2 => "l2",
            WalkLevel::Root => "root",
        }
    }

    /// Maps the engine's hit-level ladder index (0 = versions hit … 4 =
    /// root) onto the walk level the walk stopped at.
    ///
    /// # Panics
    ///
    /// Panics on an index outside the 5-step ladder.
    pub fn from_ladder_index(index: usize) -> Self {
        match index {
            0 => WalkLevel::Versions,
            1 => WalkLevel::L0,
            2 => WalkLevel::L1,
            3 => WalkLevel::L2,
            4 => WalkLevel::Root,
            _ => panic!("hit-level ladder has 5 steps, got index {index}"),
        }
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed memory instruction, with where it was served, whether
    /// the MEE walk ran (and where it stopped), and its total latency
    /// including background stalls.
    MemOp {
        /// Issuing core index.
        core: u32,
        /// Issuing process index.
        proc: u32,
        /// Which instruction.
        op: MemOpKind,
        /// The physical line touched.
        line: u64,
        /// Where the hierarchy served it (`None` for `clflush`, which
        /// removes rather than fetches).
        served: Option<ServedAt>,
        /// Where the MEE walk stopped, when the op reached the MEE.
        mee_level: Option<WalkLevel>,
        /// Total elapsed cycles charged to the issuing core.
        latency: u64,
    },
    /// One consulted level of an MEE integrity-tree walk.
    WalkStep {
        /// The level consulted.
        level: WalkLevel,
        /// The tree line looked up in the MEE cache.
        line: u64,
        /// Whether the MEE cache held it.
        hit: bool,
    },
    /// A tree line evicted from the MEE cache by a walk fill.
    MeeEvict {
        /// The evicted tree line.
        line: u64,
    },
    /// A line evicted from the shared LLC (triggering inclusive
    /// back-invalidation of the private caches).
    LlcEvict {
        /// The evicted line.
        line: u64,
    },
    /// A fault-plan event fired against the machine.
    Fault {
        /// The fault kind label (e.g. `"preempt"`, `"mee_set_thrash"`).
        kind: &'static str,
        /// Kind-specific argument: victim core, MEE set, page number, …
        arg: u64,
    },
    /// A channel phase transition (establishment and transmission
    /// milestones emitted by the attack layer).
    Phase {
        /// The phase name (e.g. `"transmit_start"`).
        name: &'static str,
        /// Phase-specific argument: bit count, eviction-set size, …
        arg: u64,
    },
}

impl EventKind {
    /// The event's trace category: `memory`, `tree`, `fault`, or
    /// `channel`.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::MemOp { .. } | EventKind::LlcEvict { .. } => "memory",
            EventKind::WalkStep { .. } | EventKind::MeeEvict { .. } => "tree",
            EventKind::Fault { .. } => "fault",
            EventKind::Phase { .. } => "channel",
        }
    }
}

/// One trace event: a simulated-time stamp plus the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time of the event, in cycles. For [`EventKind::MemOp`]
    /// this is the *issue* time (the event's duration is `latency`).
    pub at: Cycles,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// The event's trace category.
    pub fn category(&self) -> &'static str {
        self.kind.category()
    }

    /// The event as one deterministic JSON line (fixed key order, no
    /// whitespace) — the byte-identical-per-seed export format.
    pub fn json_line(&self) -> String {
        let at = self.at.raw();
        match self.kind {
            EventKind::MemOp {
                core,
                proc,
                op,
                line,
                served,
                mee_level,
                latency,
            } => {
                let served = match served {
                    Some(s) => format!("\"{}\"", s.label()),
                    None => "null".into(),
                };
                let mee = match mee_level {
                    Some(l) => format!("\"{}\"", l.label()),
                    None => "null".into(),
                };
                format!(
                    "{{\"at\":{at},\"cat\":\"memory\",\"ev\":\"mem\",\"core\":{core},\
                     \"proc\":{proc},\"op\":\"{}\",\"line\":{line},\"served\":{served},\
                     \"mee\":{mee},\"lat\":{latency}}}",
                    op.label()
                )
            }
            EventKind::WalkStep { level, line, hit } => format!(
                "{{\"at\":{at},\"cat\":\"tree\",\"ev\":\"walk\",\"level\":\"{}\",\
                 \"line\":{line},\"hit\":{hit}}}",
                level.label()
            ),
            EventKind::MeeEvict { line } => format!(
                "{{\"at\":{at},\"cat\":\"tree\",\"ev\":\"mee_evict\",\"line\":{line}}}"
            ),
            EventKind::LlcEvict { line } => format!(
                "{{\"at\":{at},\"cat\":\"memory\",\"ev\":\"llc_evict\",\"line\":{line}}}"
            ),
            EventKind::Fault { kind, arg } => format!(
                "{{\"at\":{at},\"cat\":\"fault\",\"ev\":\"fault\",\"kind\":\"{kind}\",\
                 \"arg\":{arg}}}"
            ),
            EventKind::Phase { name, arg } => format!(
                "{{\"at\":{at},\"cat\":\"channel\",\"ev\":\"phase\",\"name\":\"{name}\",\
                 \"arg\":{arg}}}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_the_taxonomy() {
        let mem = EventKind::MemOp {
            core: 0,
            proc: 0,
            op: MemOpKind::Read,
            line: 1,
            served: Some(ServedAt::L1),
            mee_level: None,
            latency: 4,
        };
        assert_eq!(mem.category(), "memory");
        assert_eq!(
            EventKind::WalkStep {
                level: WalkLevel::Versions,
                line: 2,
                hit: true
            }
            .category(),
            "tree"
        );
        assert_eq!(EventKind::MeeEvict { line: 3 }.category(), "tree");
        assert_eq!(EventKind::LlcEvict { line: 4 }.category(), "memory");
        assert_eq!(
            EventKind::Fault {
                kind: "preempt",
                arg: 0
            }
            .category(),
            "fault"
        );
        assert_eq!(
            EventKind::Phase {
                name: "transmit_start",
                arg: 64
            }
            .category(),
            "channel"
        );
    }

    #[test]
    fn json_lines_are_stable() {
        let e = Event {
            at: Cycles::new(123),
            kind: EventKind::MemOp {
                core: 1,
                proc: 2,
                op: MemOpKind::Read,
                line: 99,
                served: Some(ServedAt::Dram),
                mee_level: Some(WalkLevel::Versions),
                latency: 480,
            },
        };
        assert_eq!(
            e.json_line(),
            "{\"at\":123,\"cat\":\"memory\",\"ev\":\"mem\",\"core\":1,\"proc\":2,\
             \"op\":\"read\",\"line\":99,\"served\":\"dram\",\"mee\":\"versions\",\"lat\":480}"
        );
        let f = Event {
            at: Cycles::new(7),
            kind: EventKind::Fault {
                kind: "mee_flush",
                arg: 0,
            },
        };
        assert_eq!(
            f.json_line(),
            "{\"at\":7,\"cat\":\"fault\",\"ev\":\"fault\",\"kind\":\"mee_flush\",\"arg\":0}"
        );
    }

    #[test]
    fn ladder_index_maps_onto_walk_levels() {
        assert_eq!(WalkLevel::from_ladder_index(0), WalkLevel::Versions);
        assert_eq!(WalkLevel::from_ladder_index(4), WalkLevel::Root);
    }

    #[test]
    #[should_panic(expected = "5 steps")]
    fn ladder_index_out_of_range_panics() {
        let _ = WalkLevel::from_ladder_index(5);
    }
}

//! Trace exporters: deterministic JSON-lines and Chrome `trace_event`.
//!
//! The JSON-lines form ([`event_jsonl`]) is the byte-identical-per-seed
//! format used by the determinism tests and golden snapshots. The Chrome
//! form ([`chrome_trace`]) renders the same events for
//! `chrome://tracing` / Perfetto: one simulated **cycle** is rendered as
//! one trace **microsecond** (the format has no cycle unit), memory ops
//! become complete (`"X"`) slices on their issuing core's lane, and
//! tree / fault / channel events become instants on dedicated lanes.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::profile::HostProfile;

/// Synthetic lane (tid) for shared-LLC eviction instants.
pub const LLC_TID: u32 = 99;
/// Synthetic lane (tid) for integrity-tree events.
pub const TREE_TID: u32 = 100;
/// Synthetic lane (tid) for fault firings.
pub const FAULT_TID: u32 = 101;
/// Synthetic lane (tid) for channel phase transitions.
pub const CHANNEL_TID: u32 = 102;

/// Everything the Chrome exporter embeds besides the events themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeTraceOptions<'a> {
    /// The session seed, recorded in the trace metadata.
    pub seed: u64,
    /// Core count, for per-core lane naming.
    pub cores: usize,
    /// Events overwritten by the bounded ring before export.
    pub dropped: u64,
    /// Metrics snapshot to embed under `"meeMetrics"`.
    pub metrics: Option<&'a MetricsRegistry>,
    /// Host-time profile to embed under `"hostProfile"` (host ns — never
    /// golden-compared).
    pub host: Option<&'a HostProfile>,
}

/// The events as deterministic JSON lines (one event per line, trailing
/// newline when non-empty).
pub fn event_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.json_line());
        out.push('\n');
    }
    out
}

fn chrome_event(event: &Event) -> String {
    let ts = event.at.raw();
    let cat = event.category();
    match event.kind {
        EventKind::MemOp {
            core,
            proc,
            op,
            line,
            served,
            mee_level,
            latency,
        } => {
            let served = match served {
                Some(s) => format!("\"{}\"", s.label()),
                None => "null".into(),
            };
            let mee = match mee_level {
                Some(l) => format!("\"{}\"", l.label()),
                None => "null".into(),
            };
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                 \"dur\":{latency},\"pid\":0,\"tid\":{core},\"args\":{{\"proc\":{proc},\
                 \"line\":{line},\"served\":{served},\"mee\":{mee}}}}}",
                op.label()
            )
        }
        EventKind::WalkStep { level, line, hit } => format!(
            "{{\"name\":\"walk:{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":0,\"tid\":{TREE_TID},\"s\":\"t\",\"args\":{{\"line\":{line},\
             \"hit\":{hit}}}}}",
            level.label()
        ),
        EventKind::MeeEvict { line } => format!(
            "{{\"name\":\"mee_evict\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":0,\"tid\":{TREE_TID},\"s\":\"t\",\"args\":{{\"line\":{line}}}}}"
        ),
        EventKind::LlcEvict { line } => format!(
            "{{\"name\":\"llc_evict\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":0,\"tid\":{LLC_TID},\"s\":\"t\",\"args\":{{\"line\":{line}}}}}"
        ),
        EventKind::Fault { kind, arg } => format!(
            "{{\"name\":\"{kind}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":0,\"tid\":{FAULT_TID},\"s\":\"t\",\"args\":{{\"arg\":{arg}}}}}"
        ),
        EventKind::Phase { name, arg } => format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":0,\"tid\":{CHANNEL_TID},\"s\":\"t\",\"args\":{{\"arg\":{arg}}}}}"
        ),
    }
}

fn thread_name(tid: u32, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}}"
    )
}

/// The events (plus embedded metrics and host profile) as one Chrome
/// `trace_event` JSON document, loadable in `chrome://tracing` or
/// Perfetto.
pub fn chrome_trace(events: &[Event], opts: &ChromeTraceOptions<'_>) -> String {
    let mut trace_events = Vec::with_capacity(events.len() + opts.cores + 6);
    trace_events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"mee-sim\"}}"
            .to_string(),
    );
    for core in 0..opts.cores {
        trace_events.push(thread_name(core as u32, &format!("core {core}")));
    }
    trace_events.push(thread_name(LLC_TID, "llc"));
    trace_events.push(thread_name(TREE_TID, "integrity tree"));
    trace_events.push(thread_name(FAULT_TID, "faults"));
    trace_events.push(thread_name(CHANNEL_TID, "channel"));
    trace_events.extend(events.iter().map(chrome_event));

    let metrics = match opts.metrics {
        Some(m) => m.to_json(),
        None => "null".into(),
    };
    let host = match opts.host {
        Some(p) => p.to_json(),
        None => "null".into(),
    };
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\
         \"meta\":{{\"seed\":{},\"events\":{},\"dropped\":{},\
         \"time_unit\":\"1 ts = 1 sim cycle\"}},\
         \"meeMetrics\":{metrics},\"hostProfile\":{host}}}",
        trace_events.join(","),
        opts.seed,
        events.len(),
        opts.dropped
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemOpKind, ServedAt, WalkLevel};
    use mee_types::Cycles;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                at: Cycles::new(10),
                kind: EventKind::MemOp {
                    core: 1,
                    proc: 2,
                    op: MemOpKind::Read,
                    line: 99,
                    served: Some(ServedAt::Dram),
                    mee_level: Some(WalkLevel::Versions),
                    latency: 480,
                },
            },
            Event {
                at: Cycles::new(10),
                kind: EventKind::WalkStep {
                    level: WalkLevel::Versions,
                    line: 7,
                    hit: true,
                },
            },
            Event {
                at: Cycles::new(20),
                kind: EventKind::Fault {
                    kind: "mee_flush",
                    arg: 0,
                },
            },
            Event {
                at: Cycles::new(30),
                kind: EventKind::Phase {
                    name: "transmit_start",
                    arg: 64,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let events = sample_events();
        let jsonl = event_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        assert!(jsonl.ends_with('\n'));
        assert_eq!(jsonl.lines().next().unwrap(), events[0].json_line());
        assert_eq!(event_jsonl(&[]), "");
    }

    #[test]
    fn chrome_trace_has_all_four_categories_and_lanes() {
        let events = sample_events();
        let opts = ChromeTraceOptions {
            seed: 2019,
            cores: 2,
            ..Default::default()
        };
        let doc = chrome_trace(&events, &opts);
        assert!(doc.starts_with("{\"traceEvents\":["));
        for cat in ["memory", "tree", "fault", "channel"] {
            assert!(
                doc.contains(&format!("\"cat\":\"{cat}\"")),
                "missing category {cat}"
            );
        }
        assert!(doc.contains("\"name\":\"core 1\""));
        assert!(doc.contains("\"name\":\"integrity tree\""));
        assert!(doc.contains("\"ph\":\"X\"") && doc.contains("\"dur\":480"));
        assert!(doc.contains("\"seed\":2019"));
        assert!(doc.contains("\"meeMetrics\":null"));
    }

    #[test]
    fn chrome_trace_embeds_metrics_and_profile() {
        let mut metrics = MetricsRegistry::new(1, 2);
        metrics.record_mem_op(
            0,
            0,
            MemOpKind::Read,
            Some(ServedAt::L1),
            None,
            4,
        );
        let mut host = HostProfile::new();
        host.record("decode", std::time::Duration::from_nanos(5));
        let opts = ChromeTraceOptions {
            seed: 1,
            cores: 1,
            dropped: 3,
            metrics: Some(&metrics),
            host: Some(&host),
        };
        let doc = chrome_trace(&[], &opts);
        assert!(doc.contains("\"meeMetrics\":{\"cores\":["));
        assert!(doc.contains("\"hostProfile\":{\"decode\""));
        assert!(doc.contains("\"dropped\":3"));
    }

    #[test]
    fn chrome_trace_is_deterministic_for_same_events() {
        let events = sample_events();
        let opts = ChromeTraceOptions {
            seed: 2019,
            cores: 2,
            ..Default::default()
        };
        assert_eq!(chrome_trace(&events, &opts), chrome_trace(&events, &opts));
    }
}

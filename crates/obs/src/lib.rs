//! # mee-obs — deterministic observability for the MEE simulator
//!
//! Three strictly-separated concerns:
//!
//! 1. **Event tracing** ([`Tracer`], [`RingRecorder`], [`EventSink`]):
//!    typed simulator events ([`Event`]) stamped with sim-cycle time,
//!    captured into a bounded ring. Zero-cost when disabled (one branch),
//!    and deterministic when enabled: same seed ⇒ byte-identical event
//!    log, tracing on/off ⇒ bit-identical session outcomes.
//! 2. **Metrics** ([`MetricsRegistry`]): deterministic counters and
//!    fixed-bucket latency histograms per core / process / MEE set,
//!    snapshotable mid-session.
//! 3. **Host profiling** ([`HostProfile`]): wall-clock spans around hot
//!    loops, reported *separately* from sim time so they can never
//!    perturb determinism.
//!
//! [`export`] renders the captured events as deterministic JSON lines or
//! as a Chrome `trace_event` document (Perfetto-loadable).
//!
//! A fourth, host-level concern sits beside them: [`campaign`] is the
//! typed phase/fault event log of a sharded campaign run (shard started /
//! checkpointed / panicked / timed out / quarantined), keyed by shard so
//! its rendering is deterministic even though shards execute concurrently.
//!
//! This crate sits just above `mee-types`/`mee-rng` in the layer map so
//! every simulator layer (engine, machine, faults, channel, sweep, bench)
//! can use it without cycles.

pub mod campaign;
pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod tracer;

pub use campaign::{CampaignLog, ShardEvent};
pub use event::{Event, EventKind, MemOpKind, ServedAt, WalkLevel};
pub use export::{chrome_trace, event_jsonl, ChromeTraceOptions};
pub use metrics::{LatencyHistogram, MetricsRegistry, OpMetrics};
pub use profile::{HostProfile, SpanStats};
pub use tracer::{EventSink, NullTracer, RingRecorder, Tracer};

/// The environment knob selecting the trace ring capacity (`0` disables
/// tracing; parsed strictly, a malformed value panics).
pub const TRACE_ENV: &str = "MEE_TRACE";

/// Default ring capacity when tracing is enabled without an explicit
/// capacity: 2²⁰ events (~48 MiB retained worst case).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Reads [`TRACE_ENV`]: `None` when unset, `Some(0)` to force tracing
/// off, `Some(n)` for an `n`-event ring.
///
/// # Panics
///
/// Panics when the variable is set but not an unsigned integer.
pub fn env_capacity() -> Option<usize> {
    mee_rng::env_knob::unsigned_from_env::<usize>(TRACE_ENV)
}

/// The observability state a simulator owns: an event sink, an optional
/// metrics registry, and a host-time profile. Constructed [`Obs::off`]
/// by default so an untraced simulation carries only disabled-branch
/// overhead.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// The event sink; layers record through [`Tracer`].
    pub sink: EventSink,
    /// The metrics registry, present only while tracing is enabled.
    pub metrics: Option<MetricsRegistry>,
    /// Host-time spans (always available — recording host time does not
    /// affect determinism).
    pub host: HostProfile,
}

impl Obs {
    /// Observability fully off: disabled sink, no metrics.
    pub fn off() -> Self {
        Obs::default()
    }

    /// Observability on: a `capacity`-bounded event ring plus a zeroed
    /// metrics registry for `cores` cores and `mee_sets` MEE cache sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`Obs::off`] to disable).
    pub fn enabled(capacity: usize, cores: usize, mee_sets: usize) -> Self {
        Obs {
            sink: EventSink::Ring(RingRecorder::new(capacity)),
            metrics: Some(MetricsRegistry::new(cores, mee_sets)),
            host: HostProfile::new(),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// The event ring, when tracing is enabled.
    pub fn ring(&self) -> Option<&RingRecorder> {
        self.sink.ring()
    }

    /// The captured events oldest-first (empty when tracing is off).
    pub fn events(&self) -> Vec<Event> {
        self.ring().map(RingRecorder::events).unwrap_or_default()
    }

    /// The captured events as deterministic JSON lines.
    pub fn event_log(&self) -> String {
        event_jsonl(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mee_types::Cycles;

    #[test]
    fn off_is_disabled_and_empty() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        assert!(obs.metrics.is_none());
        assert!(obs.events().is_empty());
        assert_eq!(obs.event_log(), "");
    }

    #[test]
    fn enabled_records_and_exports() {
        let mut obs = Obs::enabled(16, 2, 4);
        assert!(obs.is_enabled());
        obs.sink.record(
            Cycles::new(5),
            EventKind::Phase {
                name: "establish_start",
                arg: 0,
            },
        );
        assert_eq!(obs.events().len(), 1);
        assert!(obs.event_log().contains("establish_start"));
        assert_eq!(obs.metrics.as_ref().unwrap().cores().len(), 2);
    }

    #[test]
    fn env_capacity_is_unset_by_default() {
        assert_eq!(env_capacity(), None);
    }
}

//! Deterministic counters and fixed-bucket latency histograms.
//!
//! The registry is plain counting state updated in simulation order, so a
//! same-seed run always produces the same snapshot. Metrics are kept per
//! core (the machine's scheduling unit), per process (the tenant unit,
//! grown lazily as process ids appear), and per MEE cache set (how often
//! each set's versions lines were walked) — the three dimensions the
//! multi-tenant detectability experiments need.

use crate::event::{MemOpKind, ServedAt, WalkLevel};

/// Upper bounds (inclusive) of the fixed latency buckets, in cycles. The
/// last implicit bucket is overflow. The bounds bracket the workspace's
/// load-bearing latencies: on-chip hits land in the small buckets, the
/// paper's ~480-cycle MEE hit in `(256, 512]`, and the ~750-cycle MEE miss
/// in `(512, 768]`.
pub const LATENCY_BUCKET_BOUNDS: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 768, 1024];

/// Bucket count including the overflow bucket.
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS.len() + 1;

/// A fixed-bucket latency histogram (see [`LATENCY_BUCKET_BOUNDS`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample, in cycles.
    pub fn record(&mut self, latency: u64) {
        let idx = LATENCY_BUCKET_BOUNDS
            .iter()
            .position(|&bound| latency <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies, in cycles.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded latency, in cycles (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts, ending with the overflow bucket.
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// The histogram as a deterministic JSON object.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.max,
            buckets.join(",")
        )
    }
}

/// Counters for one core or one process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Completed loads.
    pub reads: u64,
    /// Completed stores.
    pub writes: u64,
    /// Completed `clflush`es.
    pub clflushes: u64,
    /// Ops served by the private L1.
    pub l1_hits: u64,
    /// Ops served by the private L2.
    pub l2_hits: u64,
    /// Ops served by the shared LLC.
    pub llc_hits: u64,
    /// Ops that missed on-chip and reached DRAM.
    pub dram: u64,
    /// MEE walks that stopped at each hit-level ladder step
    /// (0 = versions hit … 4 = root). Sums to the number of
    /// protected-data DRAM ops, and reconciles with the engine's
    /// end-of-run `hits_by_level`.
    pub mee_hits: [u64; 5],
    /// End-to-end latency of every completed op.
    pub latency: LatencyHistogram,
}

impl OpMetrics {
    fn record(
        &mut self,
        op: MemOpKind,
        served: Option<ServedAt>,
        mee_level: Option<WalkLevel>,
        latency: u64,
    ) {
        match op {
            MemOpKind::Read => self.reads += 1,
            MemOpKind::Write => self.writes += 1,
            MemOpKind::Clflush => self.clflushes += 1,
        }
        match served {
            Some(ServedAt::L1) => self.l1_hits += 1,
            Some(ServedAt::L2) => self.l2_hits += 1,
            Some(ServedAt::Llc) => self.llc_hits += 1,
            Some(ServedAt::Dram) => self.dram += 1,
            None => {}
        }
        if let Some(level) = mee_level {
            let idx = match level {
                WalkLevel::Versions => 0,
                WalkLevel::L0 => 1,
                WalkLevel::L1 => 2,
                WalkLevel::L2 => 3,
                WalkLevel::Root => 4,
                WalkLevel::PdTag => unreachable!("walks never stop at PD_Tag"),
            };
            self.mee_hits[idx] += 1;
        }
        self.latency.record(latency);
    }

    /// The counters as a deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mee: Vec<String> = self.mee_hits.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"reads\":{},\"writes\":{},\"clflushes\":{},\"l1_hits\":{},\
             \"l2_hits\":{},\"llc_hits\":{},\"dram\":{},\"mee_hits\":[{}],\
             \"latency\":{}}}",
            self.reads,
            self.writes,
            self.clflushes,
            self.l1_hits,
            self.l2_hits,
            self.llc_hits,
            self.dram,
            mee.join(","),
            self.latency.to_json()
        )
    }
}

/// The deterministic metrics registry: per-core, per-process, and
/// per-MEE-set counters, snapshotable mid-session (it is `Clone`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    cores: Vec<OpMetrics>,
    /// Indexed by process id; grown lazily as ids appear.
    procs: Vec<OpMetrics>,
    /// How many MEE walks touched each MEE cache set (by the versions
    /// line's set index).
    mee_set_walks: Vec<u64>,
}

impl MetricsRegistry {
    /// A zeroed registry for `cores` cores and an MEE cache with
    /// `mee_sets` sets.
    pub fn new(cores: usize, mee_sets: usize) -> Self {
        MetricsRegistry {
            cores: vec![OpMetrics::default(); cores],
            procs: Vec::new(),
            mee_set_walks: vec![0; mee_sets],
        }
    }

    /// Records one completed memory op against its core and process.
    pub fn record_mem_op(
        &mut self,
        core: usize,
        proc: usize,
        op: MemOpKind,
        served: Option<ServedAt>,
        mee_level: Option<WalkLevel>,
        latency: u64,
    ) {
        self.cores[core].record(op, served, mee_level, latency);
        if proc >= self.procs.len() {
            self.procs.resize(proc + 1, OpMetrics::default());
        }
        self.procs[proc].record(op, served, mee_level, latency);
    }

    /// Records one MEE walk against the set index of its versions line.
    pub fn record_mee_set_walk(&mut self, set: usize) {
        self.mee_set_walks[set] += 1;
    }

    /// Per-core counters.
    pub fn cores(&self) -> &[OpMetrics] {
        &self.cores
    }

    /// Per-process counters (index = process id; short if high ids never
    /// issued an op).
    pub fn procs(&self) -> &[OpMetrics] {
        &self.procs
    }

    /// Per-MEE-set walk counts.
    pub fn mee_set_walks(&self) -> &[u64] {
        &self.mee_set_walks
    }

    /// MEE walk hit counts summed over all cores, ladder-indexed — the
    /// numbers that must reconcile exactly with the engine's end-of-run
    /// `hits_by_level`.
    pub fn mee_hits_total(&self) -> [u64; 5] {
        let mut total = [0u64; 5];
        for core in &self.cores {
            for (t, h) in total.iter_mut().zip(core.mee_hits.iter()) {
                *t += h;
            }
        }
        total
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// The registry as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let cores: Vec<String> = self.cores.iter().map(OpMetrics::to_json).collect();
        let procs: Vec<String> = self.procs.iter().map(OpMetrics::to_json).collect();
        let sets: Vec<String> = self.mee_set_walks.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"cores\":[{}],\"procs\":[{}],\"mee_set_walks\":[{}]}}",
            cores.join(","),
            procs.join(","),
            sets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_split_hit_from_miss() {
        let mut h = LatencyHistogram::new();
        h.record(480); // MEE-cache hit latency → (256, 512]
        h.record(750); // MEE-cache miss latency → (512, 768]
        h.record(4); // L1 hit → first bucket
        h.record(5000); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 480 + 750 + 4 + 5000);
        assert_eq!(h.max(), 5000);
        let b = h.buckets();
        assert_eq!(b[0], 1, "4 cycles in first bucket");
        assert_eq!(b[7], 1, "480 cycles in (256, 512]");
        assert_eq!(b[8], 1, "750 cycles in (512, 768]");
        assert_eq!(b[LATENCY_BUCKETS - 1], 1, "5000 cycles overflows");
    }

    #[test]
    fn registry_counts_per_core_proc_and_set() {
        let mut m = MetricsRegistry::new(2, 4);
        m.record_mem_op(
            0,
            3,
            MemOpKind::Read,
            Some(ServedAt::Dram),
            Some(WalkLevel::Versions),
            480,
        );
        m.record_mem_op(1, 3, MemOpKind::Write, Some(ServedAt::L1), None, 4);
        m.record_mem_op(0, 0, MemOpKind::Clflush, None, None, 12);
        m.record_mee_set_walk(2);
        m.record_mee_set_walk(2);

        assert_eq!(m.cores()[0].reads, 1);
        assert_eq!(m.cores()[0].clflushes, 1);
        assert_eq!(m.cores()[1].writes, 1);
        assert_eq!(m.cores()[1].l1_hits, 1);
        assert_eq!(m.cores()[0].dram, 1);
        assert_eq!(m.procs().len(), 4, "proc table grows to the max id");
        assert_eq!(m.procs()[3].reads + m.procs()[3].writes, 2);
        assert_eq!(m.mee_set_walks(), &[0, 0, 2, 0]);
        assert_eq!(m.mee_hits_total(), [1, 0, 0, 0, 0]);
    }

    #[test]
    fn snapshot_is_a_point_in_time_copy() {
        let mut m = MetricsRegistry::new(1, 1);
        m.record_mem_op(0, 0, MemOpKind::Read, Some(ServedAt::L1), None, 4);
        let snap = m.snapshot();
        m.record_mem_op(0, 0, MemOpKind::Read, Some(ServedAt::L1), None, 4);
        assert_eq!(snap.cores()[0].reads, 1);
        assert_eq!(m.cores()[0].reads, 2);
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let mut m = MetricsRegistry::new(1, 2);
        m.record_mem_op(
            0,
            0,
            MemOpKind::Read,
            Some(ServedAt::Dram),
            Some(WalkLevel::Root),
            750,
        );
        m.record_mee_set_walk(1);
        let json = m.to_json();
        assert_eq!(json, m.snapshot().to_json());
        assert!(json.starts_with("{\"cores\":["));
        assert!(json.contains("\"mee_hits\":[0,0,0,0,1]"));
        assert!(json.contains("\"mee_set_walks\":[0,1]"));
    }
}

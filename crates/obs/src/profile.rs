//! Host-time profiling, kept strictly apart from simulated time.
//!
//! The rule: **host time never feeds back into the simulation.** Spans
//! measure where wall-clock goes (scheduler step loop, sweep shards,
//! decode stages) and are reported next to — never mixed into — the
//! sim-cycle event log, so profiling cannot perturb determinism. Host
//! durations vary run to run by nature; everything here is additive and
//! mergeable so shard profiles can be folded into one report.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulated host-time statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total host time across all runs.
    pub total: Duration,
    /// Longest single run.
    pub max: Duration,
}

/// A profile of named host-time spans. Keyed by static span names so the
/// report order is stable (sorted by name).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostProfile {
    spans: BTreeMap<&'static str, SpanStats>,
}

impl HostProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one run of `name` taking `elapsed` host time.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        self.record_n(name, 1, elapsed);
    }

    /// Records `count` runs of `name` taking `elapsed` host time in total
    /// (e.g. a batch timed with one `Instant`).
    pub fn record_n(&mut self, name: &'static str, count: u64, elapsed: Duration) {
        let stats = self.spans.entry(name).or_default();
        stats.count += count;
        stats.total += elapsed;
        stats.max = stats.max.max(elapsed);
    }

    /// Times `f` and records it under `name`, returning `f`'s result.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Folds another profile (e.g. a sweep shard's) into this one.
    pub fn merge(&mut self, other: &HostProfile) {
        for (name, stats) in &other.spans {
            let mine = self.spans.entry(name).or_default();
            mine.count += stats.count;
            mine.total += stats.total;
            mine.max = mine.max.max(stats.max);
        }
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The stats for one span, if it ran.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// All spans, sorted by name.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStats)> {
        self.spans.iter().map(|(name, stats)| (*name, stats))
    }

    /// The profile as a JSON object keyed by span name (sorted). Values
    /// are host **nanoseconds** — they vary run to run and must never be
    /// compared in golden tests.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(name, s)| {
                format!(
                    "\"{name}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                    s.count,
                    s.total.as_nanos(),
                    s.max.as_nanos()
                )
            })
            .collect();
        format!("{{{}}}", spans.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_count_total_and_max() {
        let mut p = HostProfile::new();
        p.record("decode", Duration::from_nanos(100));
        p.record("decode", Duration::from_nanos(300));
        p.record_n("step", 10, Duration::from_nanos(50));
        let decode = p.span("decode").unwrap();
        assert_eq!(decode.count, 2);
        assert_eq!(decode.total, Duration::from_nanos(400));
        assert_eq!(decode.max, Duration::from_nanos(300));
        assert_eq!(p.span("step").unwrap().count, 10);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut p = HostProfile::new();
        let out = p.time("work", || 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(p.span("work").unwrap().count, 1);
    }

    #[test]
    fn merge_folds_shard_profiles() {
        let mut a = HostProfile::new();
        a.record("shard", Duration::from_nanos(10));
        let mut b = HostProfile::new();
        b.record("shard", Duration::from_nanos(30));
        b.record("other", Duration::from_nanos(5));
        a.merge(&b);
        let shard = a.span("shard").unwrap();
        assert_eq!(shard.count, 2);
        assert_eq!(shard.total, Duration::from_nanos(40));
        assert_eq!(shard.max, Duration::from_nanos(30));
        assert!(a.span("other").is_some());
    }

    #[test]
    fn json_is_sorted_by_span_name() {
        let mut p = HostProfile::new();
        p.record("zeta", Duration::from_nanos(1));
        p.record("alpha", Duration::from_nanos(2));
        let json = p.to_json();
        let alpha = json.find("alpha").unwrap();
        let zeta = json.find("zeta").unwrap();
        assert!(alpha < zeta, "span keys must be sorted: {json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}

//! The `Tracer` trait and the bounded ring-buffer recorder.
//!
//! Simulator layers accept a `&mut dyn Tracer` (or hold an [`EventSink`])
//! and guard every event construction behind [`Tracer::enabled`], so a
//! disabled trace costs one predictable branch per call site — nothing is
//! formatted, allocated, or stored. The recorder itself is deterministic:
//! events are appended in simulation order, and a full ring drops the
//! *oldest* events while counting what it dropped, so the retained window
//! is the same for every same-seed run.

use mee_types::Cycles;

use crate::event::{Event, EventKind};

/// A consumer of trace events.
pub trait Tracer {
    /// Whether events should be constructed at all. Call sites must check
    /// this before building an [`EventKind`] so a disabled tracer is
    /// zero-cost beyond the branch.
    fn enabled(&self) -> bool;

    /// Records one event. Implementations may assume `record` is only
    /// called when [`Tracer::enabled`] returned `true`.
    fn record(&mut self, at: Cycles, kind: EventKind);
}

/// The do-nothing tracer: `enabled()` is `false`, `record` is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _at: Cycles, _kind: EventKind) {}
}

/// A bounded ring buffer of trace events.
///
/// Keeps the most recent `capacity` events; older events are overwritten
/// and counted in [`RingRecorder::dropped`]. Memory is bounded by
/// construction, so a trace can stay enabled across a long session without
/// growing without limit.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingRecorder {
    /// An empty recorder bounded to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity trace is a
    /// misconfiguration, not a way to disable tracing (use
    /// [`NullTracer`] / [`EventSink::Off`] for that).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Discards all retained events and the drop counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl Tracer for RingRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: Cycles, kind: EventKind) {
        let event = Event { at, kind };
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            // Overwrite the oldest slot and advance the head.
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// The sink a simulator layer owns: either off (zero-cost) or recording
/// into a bounded ring.
#[derive(Debug, Clone, Default)]
pub enum EventSink {
    /// Tracing disabled; every `record` is unreachable behind `enabled()`.
    #[default]
    Off,
    /// Tracing enabled into the ring.
    Ring(RingRecorder),
}

impl EventSink {
    /// The ring recorder, when tracing is enabled.
    pub fn ring(&self) -> Option<&RingRecorder> {
        match self {
            EventSink::Off => None,
            EventSink::Ring(r) => Some(r),
        }
    }

    /// Mutable ring access (e.g. to [`RingRecorder::clear`] between
    /// phases), when tracing is enabled.
    pub fn ring_mut(&mut self) -> Option<&mut RingRecorder> {
        match self {
            EventSink::Off => None,
            EventSink::Ring(r) => Some(r),
        }
    }
}

impl Tracer for EventSink {
    #[inline]
    fn enabled(&self) -> bool {
        matches!(self, EventSink::Ring(_))
    }

    #[inline]
    fn record(&mut self, at: Cycles, kind: EventKind) {
        if let EventSink::Ring(r) = self {
            r.record(at, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(i: u64) -> EventKind {
        EventKind::Phase {
            name: "test",
            arg: i,
        }
    }

    #[test]
    fn ring_retains_most_recent_and_counts_drops() {
        let mut r = RingRecorder::new(3);
        for i in 0..5u64 {
            r.record(Cycles::new(i), phase(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let args: Vec<u64> = r
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::Phase { arg, .. } => arg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(args, vec![2, 3, 4], "oldest events must be the ones dropped");
        // Timestamps come back oldest-first.
        let ats: Vec<u64> = r.events().iter().map(|e| e.at.raw()).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything_in_order() {
        let mut r = RingRecorder::new(10);
        for i in 0..4u64 {
            r.record(Cycles::new(i * 7), phase(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.events().len(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = RingRecorder::new(2);
        for i in 0..5u64 {
            r.record(Cycles::new(i), phase(i));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.record(Cycles::ZERO, phase(9));
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingRecorder::new(0);
    }

    #[test]
    fn null_tracer_and_off_sink_are_disabled() {
        assert!(!NullTracer.enabled());
        assert!(!EventSink::Off.enabled());
        let mut sink = EventSink::Off;
        sink.record(Cycles::ZERO, phase(0)); // must be a no-op, not a panic
        assert!(sink.ring().is_none());
    }

    #[test]
    fn ring_sink_records() {
        let mut sink = EventSink::Ring(RingRecorder::new(8));
        assert!(sink.enabled());
        sink.record(Cycles::new(1), phase(1));
        assert_eq!(sink.ring().unwrap().len(), 1);
    }
}

//! Strict parsing for workspace environment knobs.
//!
//! Every env override in the workspace (`MEE_PROP_CASES`, `MEE_PROP_SEED`,
//! `MEE_BENCH_SAMPLES`, `MEE_SWEEP_THREADS`, `MEE_CAMPAIGN_SHARDS`,
//! `MEE_CAMPAIGN_DIR`, `MEE_TLB`) goes through this module so a
//! typo'd value fails loudly and identically everywhere, instead of some
//! knobs validating strictly while others silently fall back to defaults
//! (or accept `0` and fail much later with a confusing message).

use std::fmt;
use std::str::FromStr;

/// A rejected environment-knob override: which variable, the raw value
/// that failed, and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobError {
    /// The environment variable name.
    pub name: &'static str,
    /// The raw value that failed to parse.
    pub value: String,
    /// Human-readable description of the accepted grammar.
    pub expected: &'static str,
}

impl fmt::Display for EnvKnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} value {:?} (must be {}, e.g. {}=4)",
            self.name, self.value, self.expected, self.name
        )
    }
}

impl std::error::Error for EnvKnobError {}

/// Parses a *positive* integer override: `"0"`, `"-2"`, `"many"`, and a
/// 30-digit overflow all fail the same way.
///
/// # Errors
///
/// Returns an [`EnvKnobError`] echoing the variable name and value.
pub fn parse_positive<T>(name: &'static str, value: &str) -> Result<T, EnvKnobError>
where
    T: FromStr + Default + PartialOrd,
{
    match value.trim().parse::<T>() {
        Ok(n) if n > T::default() => Ok(n),
        _ => Err(EnvKnobError {
            name,
            value: value.to_owned(),
            expected: "a positive integer",
        }),
    }
}

/// Parses an unsigned integer override where zero is meaningful (seeds).
///
/// # Errors
///
/// Returns an [`EnvKnobError`] echoing the variable name and value.
pub fn parse_unsigned<T: FromStr>(name: &'static str, value: &str) -> Result<T, EnvKnobError> {
    value.trim().parse::<T>().map_err(|_| EnvKnobError {
        name,
        value: value.to_owned(),
        expected: "an unsigned integer",
    })
}

/// Parses a non-empty string override (paths, directory names). The value
/// is trimmed; whitespace-only values fail like empty ones, so
/// `MEE_CAMPAIGN_DIR=" "` cannot silently name the current directory.
///
/// # Errors
///
/// Returns an [`EnvKnobError`] echoing the variable name and value.
pub fn parse_nonempty(name: &'static str, value: &str) -> Result<String, EnvKnobError> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        Err(EnvKnobError {
            name,
            value: value.to_owned(),
            expected: "a non-empty path",
        })
    } else {
        Ok(trimmed.to_owned())
    }
}

/// Reads a non-empty-string knob from the environment. Returns `None` when
/// the variable is unset.
///
/// # Panics
///
/// Panics with the [`EnvKnobError`] message when the variable is set but
/// empty (or whitespace-only) — an override must never silently fall back
/// to a default.
pub fn nonempty_from_env(name: &'static str) -> Option<String> {
    std::env::var(name)
        .ok()
        .map(|v| parse_nonempty(name, &v).unwrap_or_else(|e| panic!("{e}")))
}

/// Reads a positive-integer knob from the environment. Returns `None` when
/// the variable is unset.
///
/// # Panics
///
/// Panics with the [`EnvKnobError`] message when the variable is set but
/// malformed — an override must never silently fall back to a default run.
pub fn positive_from_env<T>(name: &'static str) -> Option<T>
where
    T: FromStr + Default + PartialOrd,
{
    std::env::var(name)
        .ok()
        .map(|v| parse_positive(name, &v).unwrap_or_else(|e| panic!("{e}")))
}

/// Reads an unsigned-integer knob (zero allowed) from the environment.
/// Returns `None` when the variable is unset.
///
/// # Panics
///
/// Panics with the [`EnvKnobError`] message when the variable is set but
/// malformed.
pub fn unsigned_from_env<T: FromStr>(name: &'static str) -> Option<T> {
    std::env::var(name)
        .ok()
        .map(|v| parse_unsigned(name, &v).unwrap_or_else(|e| panic!("{e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_positive::<usize>("K", "4"), Ok(4));
        assert_eq!(parse_positive::<u32>("K", " 17 "), Ok(17));
        assert_eq!(parse_positive::<u64>("K", "1"), Ok(1));
    }

    #[test]
    fn rejects_zero_garbage_and_overflow() {
        for bad in ["0", "-2", "many", "", "4.5", "999999999999999999999999999999"] {
            let err = parse_positive::<usize>("MEE_TEST_KNOB", bad).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("MEE_TEST_KNOB"), "no var name in: {msg}");
            assert!(msg.contains("positive integer"), "no grammar in: {msg}");
            assert!(msg.contains(bad), "offending value not echoed in: {msg}");
        }
    }

    #[test]
    fn unsigned_accepts_zero_but_not_garbage() {
        assert_eq!(parse_unsigned::<u64>("K", "0"), Ok(0));
        assert_eq!(parse_unsigned::<u64>("K", "42"), Ok(42));
        assert!(parse_unsigned::<u64>("K", "-1").is_err());
        assert!(parse_unsigned::<u64>("K", "seed").is_err());
    }

    #[test]
    fn env_readers_return_none_when_unset() {
        assert_eq!(positive_from_env::<usize>("MEE_UNSET_KNOB_A"), None);
        assert_eq!(unsigned_from_env::<u64>("MEE_UNSET_KNOB_B"), None);
        assert_eq!(nonempty_from_env("MEE_UNSET_KNOB_C"), None);
    }

    #[test]
    fn nonempty_accepts_paths_and_rejects_blank() {
        assert_eq!(
            parse_nonempty("MEE_CAMPAIGN_DIR", "/tmp/campaign"),
            Ok("/tmp/campaign".to_owned())
        );
        assert_eq!(
            parse_nonempty("MEE_CAMPAIGN_DIR", "  rel/dir "),
            Ok("rel/dir".to_owned()),
            "whitespace trimmed"
        );
        for bad in ["", "   ", "\t"] {
            let err = parse_nonempty("MEE_CAMPAIGN_DIR", bad).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("MEE_CAMPAIGN_DIR"), "no var name in: {msg}");
            assert!(msg.contains("non-empty path"), "no grammar in: {msg}");
        }
    }
}

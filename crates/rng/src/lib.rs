#![warn(missing_docs)]
//! **mee-rng** — the workspace's only source of randomness.
//!
//! Every machine, cache, allocator, and noise model in this reproduction
//! must be bit-stable across runs: the paper's headline numbers (~35 KBps
//! at 1.7% error) and the simulator invariants are only checkable if a
//! single `u64` seed reproduces the exact same simulation. The workspace
//! also builds fully offline, so this crate replaces the external `rand`
//! and `proptest` crates with two small, audited pieces:
//!
//! * [`Rng`] — xoshiro256\*\* (Blackman & Vigna) seeded through SplitMix64,
//!   with a `rand`-shaped surface: [`Rng::seed_from_u64`],
//!   [`Rng::random`], [`Rng::random_range`], [`Rng::shuffle`],
//!   [`Rng::fill_bytes`], and stream splitting ([`Rng::split`],
//!   [`stream_seed`]) for per-core RNGs.
//! * [`prop`] — a seeded property-testing driver: deterministic case
//!   generation, an iteration-count env knob (`MEE_PROP_CASES`), and
//!   failing-seed reporting with a one-line replay recipe
//!   (`MEE_PROP_SEED`).
//!
//! xoshiro256\*\* was chosen over a cryptographic PRNG deliberately: the
//! simulator needs speed and equidistribution, not unpredictability, and
//! the generator's 256-bit state makes per-core sub-streams cheap. The
//! seed convention across the workspace is `2019` (the paper's year).

mod xoshiro;

pub mod env_knob;
pub mod prop;

pub use xoshiro::{splitmix64, stream_seed, Rng, Sample, SampleRange};

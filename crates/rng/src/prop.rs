//! A seeded property-testing driver — the workspace's in-tree `proptest`
//! replacement.
//!
//! Properties are plain closures over an [`Rng`]; the driver runs each one
//! for a configurable number of deterministically seeded cases and, when a
//! case panics, re-raises with the failing case seed and a one-line replay
//! recipe. There is no shrinking: cases are small by construction (every
//! generator in this workspace takes explicit bounds), and a failing seed
//! replays exactly.
//!
//! ```
//! use mee_rng::prop::{check, vec_of, PropConfig};
//!
//! check("sorting is idempotent", &PropConfig::from_env(32), |rng| {
//!     let mut v = vec_of(rng, 0..20, |r| r.random_range(0u64..100));
//!     v.sort_unstable();
//!     let once = v.clone();
//!     v.sort_unstable();
//!     assert_eq!(v, once);
//! });
//! ```
//!
//! Environment knobs:
//!
//! * `MEE_PROP_CASES` — overrides the case count of every property (e.g.
//!   `MEE_PROP_CASES=1000 cargo test` for a heavier run);
//! * `MEE_PROP_SEED` — replays exactly one case with the given RNG seed
//!   (printed by a failure report).

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::{env_knob, splitmix64, stream_seed, Rng};

/// Base seed from which per-case seeds are derived (the paper's year, like
/// every other default seed in the workspace).
pub const DEFAULT_SEED: u64 = 2019;

/// How a property is exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropConfig {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; per-case seeds are split from it.
    pub seed: u64,
    /// When set, run exactly one case with this RNG seed (replay mode).
    pub replay: Option<u64>,
}

impl PropConfig {
    /// A config with `cases` cases and the default seed.
    pub fn new(cases: u32) -> Self {
        PropConfig {
            cases,
            seed: DEFAULT_SEED,
            replay: None,
        }
    }

    /// Like [`PropConfig::new`], but honouring `MEE_PROP_CASES` and
    /// `MEE_PROP_SEED` overrides from the environment.
    ///
    /// # Panics
    ///
    /// Panics if either variable is set but malformed — a typo'd override
    /// must never silently fall back to a default run. `MEE_PROP_CASES=0`
    /// is rejected too: zero cases would make every property pass
    /// vacuously.
    pub fn from_env(default_cases: u32) -> Self {
        let mut cfg = Self::new(default_cases);
        if let Some(cases) = env_knob::positive_from_env::<u32>("MEE_PROP_CASES") {
            cfg.cases = cases;
        }
        if let Some(seed) = env_knob::unsigned_from_env::<u64>("MEE_PROP_SEED") {
            cfg.replay = Some(seed);
        }
        cfg
    }
}

/// Runs `body` for every configured case, panicking with the failing case
/// seed (and replay instructions) if any case panics.
///
/// The per-case seed is `stream_seed(cfg.seed, case_index)`, so case `i`
/// is stable regardless of how many cases run before or after it.
pub fn check<F>(name: &str, cfg: &PropConfig, body: F)
where
    F: Fn(&mut Rng),
{
    if let Some(seed) = cfg.replay {
        eprintln!("property `{name}`: replaying single case with seed {seed}");
        let mut rng = Rng::seed_from_u64(seed);
        body(&mut rng);
        return;
    }
    for case in 0..cfg.cases {
        let case_seed = stream_seed(cfg.seed, case as u64);
        let mut rng = Rng::seed_from_u64(case_seed);
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            // `&*`: coerce to the payload itself, not `&Box<_>` unsized to
            // `&dyn Any` (which would make both downcasts miss).
            let msg = panic_message(&*payload);
            panic!(
                "property `{name}` failed at case {case}/{} (case seed {case_seed}): {msg}\n\
                 replay with: MEE_PROP_SEED={case_seed} cargo test {name}",
                cfg.cases
            );
        }
    }
}

/// Generates a vector whose length is drawn from `len` and whose elements
/// come from `gen` — the workhorse replacing `proptest::collection::vec`.
pub fn vec_of<T>(rng: &mut Rng, len: Range<usize>, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let n = rng.random_range(len);
    (0..n).map(|_| gen(rng)).collect()
}

/// Picks one element of a non-empty slice (replacing
/// `prop::sample::select`).
pub fn pick<T: Copy>(rng: &mut Rng, choices: &[T]) -> T {
    assert!(!choices.is_empty(), "cannot pick from an empty slice");
    choices[rng.random_range(0..choices.len())]
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Deterministic helper mirroring [`splitmix64`] for tests that need a
/// quick independent seed from a case index.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ index;
    splitmix64(&mut s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let cfg = PropConfig::new(17);
        // Count via a Cell-free trick: check takes Fn, so use an atomic.
        let counter = std::sync::atomic::AtomicU32::new(0);
        check("trivially true", &cfg, |_rng| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        count += counter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_reports_case_seed() {
        let cfg = PropConfig::new(8);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always false", &cfg, |_rng| {
                panic!("intentional failure");
            })
        }));
        let msg = panic_message(&*result.unwrap_err());
        assert!(msg.contains("always false"), "message: {msg}");
        assert!(msg.contains("MEE_PROP_SEED="), "no replay recipe: {msg}");
        assert!(msg.contains("intentional failure"), "inner lost: {msg}");
    }

    #[test]
    fn case_seeds_are_stable_per_index() {
        // The same property body sees the same rng stream per case,
        // independent of total case count.
        let collect = |cases: u32| {
            let out = std::sync::Mutex::new(Vec::new());
            check("collect", &PropConfig::new(cases), |rng| {
                out.lock().unwrap().push(rng.next_u64());
            });
            out.into_inner().unwrap()
        };
        let four = collect(4);
        let eight = collect(8);
        assert_eq!(four[..], eight[..4]);
    }

    #[test]
    fn replay_runs_exactly_once_with_given_seed() {
        let cfg = PropConfig {
            cases: 100,
            seed: DEFAULT_SEED,
            replay: Some(42),
        };
        let seen = std::sync::Mutex::new(Vec::new());
        check("replay", &cfg, |rng| {
            seen.lock().unwrap().push(rng.next_u64());
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0], Rng::seed_from_u64(42).next_u64());
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = vec_of(&mut rng, 3..9, |r| r.random::<u8>());
            assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn pick_only_returns_members() {
        let mut rng = Rng::seed_from_u64(2);
        let choices = [2usize, 4, 8, 16];
        for _ in 0..100 {
            assert!(choices.contains(&pick(&mut rng, &choices)));
        }
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn pick_rejects_empty() {
        let mut rng = Rng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        let _ = pick(&mut rng, &empty);
    }
}

//! SplitMix64 seeding and the xoshiro256\*\* generator.
//!
//! Reference algorithms: Sebastiano Vigna's public-domain C versions
//! (<https://prng.di.unimi.it/>). The known-answer tests at the bottom pin
//! this implementation to those references so a refactor can never silently
//! change every experiment in the workspace.

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output.
///
/// Used for seed expansion ([`Rng::seed_from_u64`]) and stream derivation
/// ([`stream_seed`]); also handy wherever a one-shot hash of a `u64` is
/// needed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of an independent sub-stream from a base seed.
///
/// Per-core RNGs (stall generators, actor jitter) use
/// `stream_seed(base, core_index)` so that adding a core never shifts the
/// random sequence observed by existing cores, which `wrapping_add`-style
/// seed offsets cannot guarantee (they alias: `stream 1 of seed s` equals
/// `stream 0 of seed s+1`).
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed;
    let a = splitmix64(&mut s);
    let mut t = stream.wrapping_mul(0xa076_1d64_78bd_642f).wrapping_add(a);
    splitmix64(&mut t)
}

/// xoshiro256\*\* — the workspace's pseudo-random generator.
///
/// 256-bit state, period 2^256 − 1, passes BigCrush; not cryptographically
/// secure, which is fine: the simulator needs reproducibility and speed,
/// not unpredictability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` by SplitMix64 expansion —
    /// the standard recipe recommended by the xoshiro authors (also what
    /// `rand`'s `SeedableRng::seed_from_u64` did for our previous StdRng).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        Rng { s }
    }

    /// Builds a generator from raw state words (for known-answer tests).
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero — the all-zero state is the one
    /// fixed point of xoshiro256\*\* and would emit zeros forever.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be non-zero");
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of type `T` (see [`Sample`] for the
    /// distribution each type uses).
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// Integer ranges use rejection sampling (no modulo bias); `f64`
    /// ranges scale a 53-bit uniform into `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_in(self)
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator, advancing `self`.
    ///
    /// The child is seeded from the parent's next output through SplitMix64
    /// expansion, so parent and child sequences are uncorrelated.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Uniform in `[0, n)` without modulo bias (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Largest multiple of n that fits in u64, minus one: accept only
        // outputs below it so every residue is equally likely.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n).wrapping_add(1).wrapping_rem(n);
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// Types [`Rng::random`] can produce.
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut Rng) -> Self {
        // Top bit: the ** scrambler's high bits are the best-mixed.
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one value inside the range.
    fn sample_in(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_in(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_in(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_in(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = rng.random();
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_answers() {
        // Reference vectors from Vigna's splitmix64.c with seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn xoshiro_known_answers() {
        // Hand-checkable vectors for state {1, 2, 3, 4}:
        // out0 = rotl(2*5, 7) * 9 = 1280 * 9 = 11520; the update then sets
        // s[1] = 0, so out1 = 0; the next update gives s[1] = 262149, so
        // out2 = rotl(262149*5, 7) * 9 = 1310745 * 128 * 9 = 1509978240.
        let mut r = Rng::from_state([1, 2, 3, 4]);
        assert_eq!(r.next_u64(), 11520);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1_509_978_240);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(2019);
        let mut b = Rng::seed_from_u64(2019);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        let _ = Rng::from_state([0; 4]);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(10u64..=20);
            assert!((10..=20).contains(&w));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "endpoints missed: {seen:?}");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut r = Rng::seed_from_u64(5);
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _ = r.random_range(5u64..5);
    }

    #[test]
    fn below_is_unbiased_enough() {
        // Chi-squared-ish sanity check over a non-power-of-two modulus.
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.random_range(0usize..7)] += 1;
        }
        let expected = n as f64 / 7.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i}: {c} vs expected {expected}");
        }
    }

    #[test]
    fn f64_sample_is_in_unit_interval() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_sample_is_balanced() {
        let mut r = Rng::seed_from_u64(17);
        let ones = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_500..=5_500).contains(&ones), "bias: {ones}/10000");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..64).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(9).shuffle(&mut a);
        Rng::seed_from_u64(9).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..64).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::seed_from_u64(21);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut again = [0u8; 13];
        Rng::seed_from_u64(21).fill_bytes(&mut again);
        assert_eq!(buf, again);
    }

    #[test]
    fn split_decorrelates() {
        let mut parent = Rng::seed_from_u64(2019);
        let mut child = parent.split();
        // Child and advanced parent must not produce the same stream.
        assert!((0..16).any(|_| parent.next_u64() != child.next_u64()));
    }

    #[test]
    fn stream_seed_separates_streams() {
        assert_ne!(stream_seed(2019, 0), stream_seed(2019, 1));
        assert_ne!(stream_seed(2019, 1), stream_seed(2020, 0));
        // The wrapping_add aliasing problem this replaces must not occur.
        assert_ne!(stream_seed(2019, 1), stream_seed(2019 + 1, 0));
    }
}

//! Property tests for the stream-splitting guarantees the parallel sweep
//! runner's determinism rests on: sibling streams must be independent
//! (disjoint outputs), and `split`/`stream_seed` must be exactly
//! reproducible — including under `MEE_PROP_SEED` replay.

use std::collections::HashSet;

use mee_rng::prop::{check, PropConfig};
use mee_rng::{stream_seed, Rng};

#[test]
fn sibling_streams_share_no_output_prefix() {
    // Two sibling streams split from the same root: over 1k draws each,
    // not a single 64-bit output may coincide — positionally or at all.
    // (A shared prefix would mean correlated sessions in a sweep.)
    check(
        "sibling_streams_share_no_output_prefix",
        &PropConfig::from_env(16),
        |rng| {
            let root = rng.next_u64();
            let i = rng.random_range(0u64..64);
            let j = (i + 1 + rng.random_range(0u64..63)) % 64; // j ≠ i
            let draw = |stream: u64| -> Vec<u64> {
                let mut r = Rng::seed_from_u64(stream_seed(root, stream));
                (0..1_000).map(|_| r.next_u64()).collect()
            };
            let a = draw(i);
            let b = draw(j);
            assert_ne!(a[0], b[0], "streams {i} and {j} share a prefix");
            assert!(
                a.iter().zip(&b).all(|(x, y)| x != y),
                "streams {i} and {j} collide positionally"
            );
            let seen: HashSet<u64> = a.iter().copied().collect();
            let shared = b.iter().filter(|v| seen.contains(v)).count();
            assert_eq!(
                shared, 0,
                "streams {i} and {j} of root {root} share {shared} outputs"
            );
        },
    );
}

#[test]
fn split_is_deterministic_and_replayable() {
    // `split` must be a pure function of the parent's state: two parents
    // with identical state yield identical children *and* identical
    // post-split parents. Runs under the property driver, so a failure
    // prints an `MEE_PROP_SEED` recipe and the same case replays exactly.
    check(
        "split_is_deterministic_and_replayable",
        &PropConfig::from_env(32),
        |rng| {
            let seed = rng.next_u64();
            let mut a = Rng::seed_from_u64(seed);
            let mut b = Rng::seed_from_u64(seed);
            let mut child_a = a.split();
            let mut child_b = b.split();
            for _ in 0..64 {
                assert_eq!(child_a.next_u64(), child_b.next_u64(), "children diverged");
                assert_eq!(a.next_u64(), b.next_u64(), "parents diverged after split");
            }
            // The child is not a clone of the parent's continuation.
            let mut c = Rng::seed_from_u64(seed);
            let mut child_c = c.split();
            assert_ne!(child_c.next_u64(), c.next_u64());
        },
    );
}

#[test]
fn stream_seed_is_injective_over_a_sweep_sized_domain() {
    // No two (root, index) pairs a single sweep can produce may collide:
    // the per-session seeds of a 256-session sweep are pairwise distinct,
    // and distinct from the root itself.
    check(
        "stream_seed_is_injective_over_a_sweep_sized_domain",
        &PropConfig::from_env(16),
        |rng| {
            let root = rng.next_u64();
            let mut seen = HashSet::with_capacity(257);
            seen.insert(root);
            for index in 0..256u64 {
                assert!(
                    seen.insert(stream_seed(root, index)),
                    "stream_seed({root}, {index}) collided"
                );
            }
        },
    );
}

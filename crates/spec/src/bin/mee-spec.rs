//! The spec-harness CLI: runs the exhaustive and/or property tiers, replays
//! counterexample recipes, and lists the invariant registry.
//!
//! Exit codes: 0 = all invariants hold, 1 = counterexamples found,
//! 2 = usage error.

use std::process::ExitCode;

use mee_rng::prop::PropConfig;
use mee_spec::{property, replay, run_exhaustive, run_invariant, Budget, INVARIANTS};

const USAGE: &str = "\
usage: mee-spec [--tier exhaustive|property|all] [--budget smoke|full]
                [--invariant NAME] [--replay RECIPE] [--list]

  --tier       which tier(s) to run (default: all)
  --budget     exhaustive-tier size (default: full)
  --invariant  restrict the exhaustive tier to one named invariant
  --replay     re-run one counterexample recipe (`invariant|config|trace`)
  --list       print the invariant registry and exit

The property tier honors MEE_PROP_CASES (case count) and MEE_PROP_SEED
(base seed, or the single case to replay).";

struct Args {
    tier: String,
    budget: String,
    invariant: Option<String>,
    replay: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tier: "all".into(),
        budget: "full".into(),
        invariant: None,
        replay: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--tier" => args.tier = value("--tier")?,
            "--budget" => args.budget = value("--budget")?,
            "--invariant" => args.invariant = Some(value("--invariant")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for name in INVARIANTS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some(recipe) = &args.replay {
        return match replay(recipe) {
            Ok(None) => {
                println!("recipe passes: the invariant holds on this trace");
                ExitCode::SUCCESS
            }
            Ok(Some(cx)) => {
                println!("{cx}");
                ExitCode::from(1)
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        };
    }

    let budget = match args.budget.as_str() {
        "smoke" => Budget::smoke(),
        "full" => Budget::full(),
        other => {
            eprintln!("error: unknown budget {other:?} (expected smoke|full)\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (run_ex, run_prop) = match args.tier.as_str() {
        "exhaustive" => (true, false),
        "property" => (false, true),
        "all" => (true, true),
        other => {
            eprintln!(
                "error: unknown tier {other:?} (expected exhaustive|property|all)\n\n{USAGE}"
            );
            return ExitCode::from(2);
        }
    };

    let mut found = Vec::new();
    if run_ex {
        let result = match &args.invariant {
            Some(name) => match run_invariant(name, &budget) {
                Ok(cxs) => cxs,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            },
            None => run_exhaustive(&budget),
        };
        println!(
            "exhaustive tier ({}): {} counterexample(s)",
            args.budget,
            result.len()
        );
        found.extend(result);
    }
    if run_prop {
        let cfg = PropConfig::from_env(property::DEFAULT_CASES);
        let result = mee_spec::run_property_tier(&cfg);
        match cfg.replay {
            Some(seed) => println!(
                "property tier (replaying single case, seed {seed}): {} counterexample(s)",
                result.len()
            ),
            None => println!(
                "property tier ({} cases, seed {}): {} counterexample(s)",
                cfg.cases,
                cfg.seed,
                result.len()
            ),
        }
        found.extend(result);
    }

    if found.is_empty() {
        println!("all invariants hold");
        ExitCode::SUCCESS
    } else {
        for cx in &found {
            println!("{cx}");
        }
        ExitCode::from(1)
    }
}

//! Cache- and policy-level invariants.
//!
//! Three of the eight registry invariants live at this layer:
//!
//! * `plru-within-lru` — Tree-PLRU is the paper's "approximate LRU" (§5.3).
//!   The spec makes that precise in two checkable pieces: at 2 ways the tree
//!   degenerates to a single bit and must match exact LRU *move for move*
//!   (same hits, same evictions, under accesses, invalidations, and way
//!   masks); at any width a full-mask access must never evict the
//!   most-recently-used resident line.
//! * `victim-from-allowed-ways` — whatever state a policy is in, `victim`
//!   must return an allowed way for every non-empty mask (the §5.5
//!   way-partitioning mitigation depends on this).
//! * `invalidated-way-preferred` — after a fill/hit history touching every
//!   way, invalidating a way must make it the next full-mask victim (the bug
//!   class fixed in this PR: stale PLRU bits surviving `on_invalidate`).

use mee_cache::policy::{Fifo, Nru, RandomEviction, Srrip, TreePlru, TrueLru};
use mee_cache::{CacheConfig, ReplacementPolicy, SetAssocCache};
use mee_types::LineAddr;

use crate::counterexample::{parse_config, require, require_usize, Counterexample};
use crate::enumerate::for_each_program;
use crate::Budget;

/// Seed used whenever the `random` policy participates in a deterministic
/// enumeration.
pub const RANDOM_POLICY_SEED: u64 = 0xbeef;

/// Policies with deterministic victim choice (everything but `random`).
pub const DETERMINISTIC_POLICIES: [&str; 5] = ["tree-plru", "lru", "fifo", "nru", "srrip"];

/// All policy names, including the seeded `random`.
pub const ALL_POLICIES: [&str; 6] = ["tree-plru", "lru", "fifo", "nru", "srrip", "random"];

/// Instantiates a policy by its `name()` string.
///
/// # Errors
///
/// Returns a message for unknown names.
pub fn policy_by_name(name: &str) -> Result<Box<dyn ReplacementPolicy>, String> {
    Ok(match name {
        "tree-plru" => Box::new(TreePlru::new()),
        "lru" => Box::new(TrueLru::new()),
        "fifo" => Box::new(Fifo::new()),
        "nru" => Box::new(Nru::new()),
        "srrip" => Box::new(Srrip::new()),
        "random" => Box::new(RandomEviction::with_seed(RANDOM_POLICY_SEED)),
        other => return Err(format!("unknown policy {other:?}")),
    })
}

// ---------------------------------------------------------------------------
// Policy-level ops (invariants 4 and 5)
// ---------------------------------------------------------------------------

/// One operation against a bare [`ReplacementPolicy`] (always set 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyOp {
    /// `on_fill(0, way)`.
    Fill(usize),
    /// `on_hit(0, way)`.
    Hit(usize),
    /// `on_invalidate(0, way)`.
    Inval(usize),
}

/// Formats a policy trace in its compact token form (`f0 h1 i2`).
pub fn fmt_policy_ops(ops: &[PolicyOp]) -> String {
    let tokens: Vec<String> = ops
        .iter()
        .map(|op| match op {
            PolicyOp::Fill(w) => format!("f{w}"),
            PolicyOp::Hit(w) => format!("h{w}"),
            PolicyOp::Inval(w) => format!("i{w}"),
        })
        .collect();
    tokens.join(" ")
}

/// Parses the output of [`fmt_policy_ops`].
///
/// # Errors
///
/// Returns a message naming the first malformed token.
pub fn parse_policy_ops(trace: &str) -> Result<Vec<PolicyOp>, String> {
    trace
        .split_whitespace()
        .map(|tok| {
            let bad = || format!("malformed policy op {tok:?} (expected f<w>, h<w>, or i<w>)");
            let way: usize = tok[1..].parse().map_err(|_| bad())?;
            match tok.as_bytes().first() {
                Some(b'f') => Ok(PolicyOp::Fill(way)),
                Some(b'h') => Ok(PolicyOp::Hit(way)),
                Some(b'i') => Ok(PolicyOp::Inval(way)),
                _ => Err(bad()),
            }
        })
        .collect()
}

fn replay_policy(policy: &mut dyn ReplacementPolicy, ops: &[PolicyOp]) {
    for op in ops {
        match *op {
            PolicyOp::Fill(w) => policy.on_fill(0, w),
            PolicyOp::Hit(w) => policy.on_hit(0, w),
            PolicyOp::Inval(w) => policy.on_invalidate(0, w),
        }
    }
}

/// `victim-from-allowed-ways`: replays `ops`, then queries `victim` with
/// every non-empty way mask and demands an allowed answer each time.
///
/// # Errors
///
/// Returns the violation detail.
pub fn check_victim_from_allowed(
    policy_name: &str,
    ways: usize,
    ops: &[PolicyOp],
) -> Result<(), String> {
    let mut policy = policy_by_name(policy_name)?;
    policy.attach(1, ways);
    replay_policy(policy.as_mut(), ops);
    for mask_bits in 1u32..(1 << ways) {
        let allowed: Vec<bool> = (0..ways).map(|w| mask_bits & (1 << w) != 0).collect();
        let v = policy.victim(0, &allowed);
        if v >= ways || !allowed[v] {
            return Err(format!(
                "victim(allowed={mask_bits:#b}) returned way {v}, which is not allowed"
            ));
        }
    }
    Ok(())
}

/// `invalidated-way-preferred`: the trace must end in `i<w>`; after replaying
/// it, the next full-mask victim must be exactly `w`.
///
/// Holds for every deterministic policy given a fill/hit-only prefix that
/// filled each way at least once (the enumerator guarantees that shape;
/// replayed traces are checked for it).
///
/// # Errors
///
/// Returns the violation detail, or a message if the trace has the wrong
/// shape.
pub fn check_invalidated_preferred(
    policy_name: &str,
    ways: usize,
    ops: &[PolicyOp],
) -> Result<(), String> {
    let Some(&PolicyOp::Inval(target)) = ops.last() else {
        return Err("trace must end with an i<w> op".into());
    };
    if ops[..ops.len() - 1]
        .iter()
        .any(|op| matches!(op, PolicyOp::Inval(_)))
    {
        return Err("trace must contain exactly one i<w> op, at the end".into());
    }
    let mut filled = vec![false; ways];
    for op in &ops[..ops.len() - 1] {
        if let PolicyOp::Fill(w) = *op {
            filled[w] = true;
        }
    }
    if !filled.iter().all(|&f| f) {
        return Err("trace must fill every way before the invalidate".into());
    }
    let mut policy = policy_by_name(policy_name)?;
    policy.attach(1, ways);
    replay_policy(policy.as_mut(), ops);
    let allowed = vec![true; ways];
    let v = policy.victim(0, &allowed);
    if v != target {
        return Err(format!(
            "after invalidating way {target}, victim chose way {v} (stale replacement state)"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Cache-level ops (invariant 3)
// ---------------------------------------------------------------------------

/// One operation against a whole [`SetAssocCache`]. Line indices are dense
/// small integers (the line *is* its index; with one set they all collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Full-mask access.
    Access(u64),
    /// Invalidate the line if resident.
    Inval(u64),
    /// `access_in_ways` with the given mask bits (bit `w` = way `w` allowed).
    Masked(u32, u64),
}

/// Formats a cache trace (`a0 i1 m1:2` — masks in hex).
pub fn fmt_cache_ops(ops: &[CacheOp]) -> String {
    let tokens: Vec<String> = ops
        .iter()
        .map(|op| match op {
            CacheOp::Access(l) => format!("a{l}"),
            CacheOp::Inval(l) => format!("i{l}"),
            CacheOp::Masked(m, l) => format!("m{m:x}:{l}"),
        })
        .collect();
    tokens.join(" ")
}

/// Parses the output of [`fmt_cache_ops`].
///
/// # Errors
///
/// Returns a message naming the first malformed token.
pub fn parse_cache_ops(trace: &str) -> Result<Vec<CacheOp>, String> {
    trace
        .split_whitespace()
        .map(|tok| {
            let bad = || format!("malformed cache op {tok:?} (expected a<l>, i<l>, or m<mask>:<l>)");
            match tok.as_bytes().first() {
                Some(b'a') => tok[1..].parse().map(CacheOp::Access).map_err(|_| bad()),
                Some(b'i') => tok[1..].parse().map(CacheOp::Inval).map_err(|_| bad()),
                Some(b'm') => {
                    let (mask, line) = tok[1..].split_once(':').ok_or_else(bad)?;
                    let mask = u32::from_str_radix(mask, 16).map_err(|_| bad())?;
                    if mask == 0 {
                        return Err("way mask must allow at least one way".into());
                    }
                    Ok(CacheOp::Masked(mask, line.parse().map_err(|_| bad())?))
                }
                _ => Err(bad()),
            }
        })
        .collect()
}

fn mask_vec(bits: u32, ways: usize) -> Vec<bool> {
    (0..ways).map(|w| bits & (1 << w) != 0).collect()
}

/// `plru-within-lru`, exact half: at the given tiny geometry, a Tree-PLRU
/// cache and a true-LRU cache must produce identical access results (hit
/// flag *and* evicted line) on every op of the trace.
///
/// # Errors
///
/// Returns the step at which the two caches diverged.
pub fn check_plru_matches_lru(sets: usize, ways: usize, ops: &[CacheOp]) -> Result<(), String> {
    let cfg = CacheConfig {
        sets,
        ways,
        line_size: 64,
    };
    let mut plru = SetAssocCache::new(cfg, TreePlru::new());
    let mut lru = SetAssocCache::new(cfg, TrueLru::new());
    for (i, op) in ops.iter().enumerate() {
        match *op {
            CacheOp::Access(l) => {
                let line = LineAddr::new(l);
                let (a, b) = (plru.access(line), lru.access(line));
                if a != b {
                    return Err(format!(
                        "step {i} (access {l}): tree-plru {a:?} differs from lru {b:?}"
                    ));
                }
            }
            CacheOp::Masked(m, l) => {
                let line = LineAddr::new(l);
                let mask = mask_vec(m, ways);
                let (a, b) = (
                    plru.access_in_ways(line, &mask),
                    lru.access_in_ways(line, &mask),
                );
                if a != b {
                    return Err(format!(
                        "step {i} (masked {m:#x} access {l}): tree-plru {a:?} differs from lru {b:?}"
                    ));
                }
            }
            CacheOp::Inval(l) => {
                let line = LineAddr::new(l);
                let (a, b) = (plru.invalidate(line), lru.invalidate(line));
                if a != b {
                    return Err(format!(
                        "step {i} (invalidate {l}): residency disagreed ({a} vs {b})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// `plru-within-lru`, containment half: on full-mask traces the policy must
/// never evict the most-recently-used resident line of a set (the defining
/// property Tree-PLRU shares with exact LRU).
///
/// Only meaningful for `tree-plru` and `lru`; masked ops are rejected (a
/// singleton mask can legitimately force the MRU way out).
///
/// # Errors
///
/// Returns the step at which the MRU line was evicted.
pub fn check_never_evicts_mru(policy_name: &str, ways: usize, ops: &[CacheOp]) -> Result<(), String> {
    let cfg = CacheConfig {
        sets: 1,
        ways,
        line_size: 64,
    };
    let mut cache = SetAssocCache::new(cfg, policy_by_name(policy_name)?);
    let mut mru: Option<LineAddr> = None;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            CacheOp::Access(l) => {
                let line = LineAddr::new(l);
                let r = cache.access(line);
                if r.evicted.is_some() && r.evicted == mru {
                    return Err(format!(
                        "step {i} (access {l}): evicted line {} was the most recently used",
                        mru.expect("checked Some").raw()
                    ));
                }
                mru = Some(line);
            }
            CacheOp::Inval(l) => {
                let line = LineAddr::new(l);
                cache.invalidate(line);
                if mru == Some(line) {
                    mru = None;
                }
            }
            CacheOp::Masked(..) => {
                return Err("mru traces must not contain masked ops".into());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------------

fn push(out: &mut Vec<Counterexample>, budget: &Budget, cx: Counterexample) -> bool {
    out.push(cx);
    out.len() < budget.max_counterexamples
}

/// Exhaustively checks `victim-from-allowed-ways` and
/// `invalidated-way-preferred` for every policy at 2 and 4 ways.
pub fn enumerate_policy_invariants(budget: &Budget, out: &mut Vec<Counterexample>) {
    // Invariant 4: arbitrary fill/hit/invalidate histories, every mask.
    for policy in ALL_POLICIES {
        for ways in [2usize, 4] {
            let symbols = 3 * ways; // fill/hit/inval × way
            let mut go = true;
            for_each_program(symbols, budget.policy_len, |prog| {
                let ops: Vec<PolicyOp> = prog
                    .iter()
                    .map(|&s| match s / ways {
                        0 => PolicyOp::Fill(s % ways),
                        1 => PolicyOp::Hit(s % ways),
                        _ => PolicyOp::Inval(s % ways),
                    })
                    .collect();
                if let Err(detail) = check_victim_from_allowed(policy, ways, &ops) {
                    go = push(
                        out,
                        budget,
                        Counterexample {
                            invariant: "victim-from-allowed-ways",
                            config: format!("policy={policy} ways={ways}"),
                            trace: fmt_policy_ops(&ops),
                            detail,
                            seed: None,
                        },
                    );
                }
                go
            });
            if !go {
                return;
            }
        }
    }

    // Invariant 5: fill-all prefix, fill/hit suffix, single trailing inval.
    for policy in DETERMINISTIC_POLICIES {
        for ways in [2usize, 4] {
            let prefix: Vec<PolicyOp> = (0..ways).map(PolicyOp::Fill).collect();
            let symbols = 2 * ways; // fill/hit × way
            let mut go = true;
            for_each_program(symbols, budget.policy_len, |prog| {
                let mut ops = prefix.clone();
                ops.extend(prog.iter().map(|&s| {
                    if s < ways {
                        PolicyOp::Fill(s)
                    } else {
                        PolicyOp::Hit(s - ways)
                    }
                }));
                for target in 0..ways {
                    let mut trace = ops.clone();
                    trace.push(PolicyOp::Inval(target));
                    if let Err(detail) = check_invalidated_preferred(policy, ways, &trace) {
                        go = push(
                            out,
                            budget,
                            Counterexample {
                                invariant: "invalidated-way-preferred",
                                config: format!("policy={policy} ways={ways}"),
                                trace: fmt_policy_ops(&trace),
                                detail,
                                seed: None,
                            },
                        );
                        if !go {
                            break;
                        }
                    }
                }
                go
            });
            if !go {
                return;
            }
        }
    }
}

/// Exhaustively checks both halves of `plru-within-lru`.
pub fn enumerate_plru_within_lru(budget: &Budget, out: &mut Vec<Counterexample>) {
    // Exact half: 1 set × 2 ways, lines 0..4, accesses + invals + the two
    // singleton way masks.
    const LINES: u64 = 4;
    let symbols = 4 * LINES as usize; // access, inval, mask=1 access, mask=2 access
    let mut go = true;
    for_each_program(symbols, budget.cache_len, |prog| {
        let ops: Vec<CacheOp> = prog
            .iter()
            .map(|&s| {
                let line = (s as u64) % LINES;
                match s / LINES as usize {
                    0 => CacheOp::Access(line),
                    1 => CacheOp::Inval(line),
                    2 => CacheOp::Masked(0b01, line),
                    _ => CacheOp::Masked(0b10, line),
                }
            })
            .collect();
        if let Err(detail) = check_plru_matches_lru(1, 2, &ops) {
            go = push(
                out,
                budget,
                Counterexample {
                    invariant: "plru-within-lru",
                    config: "mode=equiv sets=1 ways=2".into(),
                    trace: fmt_cache_ops(&ops),
                    detail,
                    seed: None,
                },
            );
        }
        go
    });
    if !go {
        return;
    }

    // Containment half: 1 set × 4 ways, lines 0..6, accesses + invals.
    const MRU_LINES: u64 = 6;
    for policy in ["tree-plru", "lru"] {
        let mut go = true;
        for_each_program(2 * MRU_LINES as usize, budget.cache_len, |prog| {
            let ops: Vec<CacheOp> = prog
                .iter()
                .map(|&s| {
                    let line = (s as u64) % MRU_LINES;
                    if s < MRU_LINES as usize {
                        CacheOp::Access(line)
                    } else {
                        CacheOp::Inval(line)
                    }
                })
                .collect();
            if let Err(detail) = check_never_evicts_mru(policy, 4, &ops) {
                go = push(
                    out,
                    budget,
                    Counterexample {
                        invariant: "plru-within-lru",
                        config: format!("mode=mru policy={policy} ways=4"),
                        trace: fmt_cache_ops(&ops),
                        detail,
                        seed: None,
                    },
                );
            }
            go
        });
        if !go {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Replays a policy-domain recipe (invariants 4 and 5).
///
/// # Errors
///
/// Returns a message for malformed configs or traces.
pub fn replay_policy_recipe(
    invariant: &'static str,
    config: &str,
    trace: &str,
) -> Result<Option<Counterexample>, String> {
    let map = parse_config(config)?;
    let policy = require(&map, "policy")?.to_owned();
    let ways = require_usize(&map, "ways")?;
    let ops = parse_policy_ops(trace)?;
    let result = match invariant {
        "victim-from-allowed-ways" => check_victim_from_allowed(&policy, ways, &ops),
        "invalidated-way-preferred" => check_invalidated_preferred(&policy, ways, &ops),
        other => return Err(format!("{other:?} is not a policy-domain invariant")),
    };
    Ok(result.err().map(|detail| Counterexample {
        invariant,
        config: config.to_owned(),
        trace: trace.to_owned(),
        detail,
        seed: None,
    }))
}

/// Replays a `plru-within-lru` recipe.
///
/// # Errors
///
/// Returns a message for malformed configs or traces.
pub fn replay_cache_recipe(config: &str, trace: &str) -> Result<Option<Counterexample>, String> {
    let map = parse_config(config)?;
    let ops = parse_cache_ops(trace)?;
    let result = match require(&map, "mode")? {
        "equiv" => {
            check_plru_matches_lru(require_usize(&map, "sets")?, require_usize(&map, "ways")?, &ops)
        }
        "mru" => check_never_evicts_mru(require(&map, "policy")?, require_usize(&map, "ways")?, &ops),
        other => return Err(format!("unknown plru-within-lru mode {other:?}")),
    };
    Ok(result.err().map(|detail| Counterexample {
        invariant: "plru-within-lru",
        config: config.to_owned(),
        trace: trace.to_owned(),
        detail,
        seed: None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ops_round_trip() {
        let ops = vec![PolicyOp::Fill(0), PolicyOp::Hit(3), PolicyOp::Inval(1)];
        let s = fmt_policy_ops(&ops);
        assert_eq!(s, "f0 h3 i1");
        assert_eq!(parse_policy_ops(&s).unwrap(), ops);
        assert!(parse_policy_ops("x9").is_err());
    }

    #[test]
    fn cache_ops_round_trip() {
        let ops = vec![
            CacheOp::Access(2),
            CacheOp::Masked(0xd, 4),
            CacheOp::Inval(0),
        ];
        let s = fmt_cache_ops(&ops);
        assert_eq!(s, "a2 md:4 i0");
        assert_eq!(parse_cache_ops(&s).unwrap(), ops);
        assert!(parse_cache_ops("m0:1").is_err(), "empty mask must be rejected");
    }

    /// The exact trace that exposed the pre-fix Tree-PLRU bug: stale tree
    /// bits after `on_invalidate` steered the victim away from the freed way.
    #[test]
    fn pinned_plru_invalidate_traces_pass_post_fix() {
        for (ways, trace) in [(2, "f0 f1 i1"), (4, "f0 f1 f2 f3 i2")] {
            let ops = parse_policy_ops(trace).unwrap();
            check_invalidated_preferred("tree-plru", ways, &ops)
                .unwrap_or_else(|e| panic!("pinned trace {trace:?} regressed: {e}"));
        }
    }

    #[test]
    fn malformed_inval_traces_are_rejected() {
        let ops = parse_policy_ops("f0 f1").unwrap();
        assert!(check_invalidated_preferred("lru", 2, &ops).is_err());
        let ops = parse_policy_ops("f0 i0 f1 i1").unwrap();
        assert!(check_invalidated_preferred("lru", 2, &ops).is_err());
        let ops = parse_policy_ops("f0 i1").unwrap();
        assert!(check_invalidated_preferred("lru", 2, &ops).is_err());
    }

    #[test]
    fn victim_from_allowed_accepts_all_policies() {
        let ops = parse_policy_ops("f0 f1 h0 i1").unwrap();
        for policy in ALL_POLICIES {
            check_victim_from_allowed(policy, 4, &ops)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn two_way_equivalence_on_the_invalidate_trace() {
        // Access 0, access 1, invalidate 1, access 2 (fills the freed way on
        // both), access 3 (forces a victim decision): must agree.
        let ops = parse_cache_ops("a0 a1 i1 a2 a3").unwrap();
        check_plru_matches_lru(1, 2, &ops).unwrap();
    }
}

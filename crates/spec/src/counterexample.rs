//! Counterexamples and their one-line replay recipes.
//!
//! Every invariant violation found by any tier is reported as a
//! [`Counterexample`]: the invariant name, the configuration under test, the
//! exact operation trace, and a human-readable detail. Its [`Display`]
//! rendering is a **single line** ending in a copy-pasteable replay command,
//! so a CI failure log is enough to reproduce the bug locally.
//!
//! [`Display`]: std::fmt::Display

use std::collections::BTreeMap;
use std::fmt;

/// One invariant violation, with everything needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Name of the violated invariant (one of [`crate::INVARIANTS`]).
    pub invariant: &'static str,
    /// Configuration under test, as `key=value` pairs (e.g.
    /// `policy=tree-plru ways=4`).
    pub config: String,
    /// The exact operation trace, in the domain's compact token format.
    pub trace: String,
    /// What went wrong, human-readable.
    pub detail: String,
    /// For seeded-property failures: the failing case seed.
    pub seed: Option<u64>,
}

impl Counterexample {
    /// The machine-readable replay recipe: `invariant|config|trace`.
    pub fn recipe(&self) -> String {
        format!("{}|{}|{}", self.invariant, self.config, self.trace)
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counterexample: `{}` [{}] trace `{}`: {}",
            self.invariant, self.config, self.trace, self.detail
        )?;
        match self.seed {
            Some(seed) => write!(
                f,
                " | replay: MEE_PROP_SEED={seed} cargo run -q --release -p mee-spec -- --tier property"
            ),
            None => write!(
                f,
                " | replay: cargo run -q --release -p mee-spec -- --replay '{}'",
                self.recipe()
            ),
        }
    }
}

/// Splits a recipe produced by [`Counterexample::recipe`] back into its
/// `(invariant, config, trace)` parts.
///
/// # Errors
///
/// Returns a message if the recipe does not contain two `|` separators.
pub fn parse_recipe(recipe: &str) -> Result<(&str, &str, &str), String> {
    let mut parts = recipe.splitn(3, '|');
    match (parts.next(), parts.next(), parts.next()) {
        (Some(inv), Some(cfg), Some(trace)) => Ok((inv.trim(), cfg.trim(), trace.trim())),
        _ => Err(format!(
            "malformed replay recipe {recipe:?} (expected `invariant|config|trace`)"
        )),
    }
}

/// Parses a whitespace-separated `key=value` config string into a map.
///
/// # Errors
///
/// Returns a message naming the first token without a `=`.
pub fn parse_config(config: &str) -> Result<BTreeMap<&str, &str>, String> {
    let mut map = BTreeMap::new();
    for token in config.split_whitespace() {
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| format!("config token {token:?} is not `key=value`"))?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Looks up a required key in a parsed config map.
///
/// # Errors
///
/// Returns a message naming the missing key.
pub fn require<'a>(map: &BTreeMap<&str, &'a str>, key: &str) -> Result<&'a str, String> {
    map.get(key)
        .copied()
        .ok_or_else(|| format!("config is missing `{key}=`"))
}

/// Parses a required `usize` value from a parsed config map.
///
/// # Errors
///
/// Returns a message if the key is missing or not an integer.
pub fn require_usize(map: &BTreeMap<&str, &str>, key: &str) -> Result<usize, String> {
    require(map, key)?
        .parse()
        .map_err(|_| format!("config `{key}` is not an integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counterexample {
        Counterexample {
            invariant: "victim-from-allowed-ways",
            config: "policy=tree-plru ways=4".into(),
            trace: "f0 f1 i2".into(),
            detail: "victim(0b0100) returned way 0".into(),
            seed: None,
        }
    }

    #[test]
    fn display_is_one_line_with_recipe() {
        let s = sample().to_string();
        assert_eq!(s.lines().count(), 1, "not one line: {s}");
        assert!(s.contains("--replay 'victim-from-allowed-ways|policy=tree-plru ways=4|f0 f1 i2'"));
    }

    #[test]
    fn seeded_display_points_at_property_tier() {
        let cx = Counterexample {
            seed: Some(77),
            ..sample()
        };
        let s = cx.to_string();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("MEE_PROP_SEED=77"));
        assert!(s.contains("--tier property"));
    }

    #[test]
    fn recipe_round_trips() {
        let cx = sample();
        let recipe = cx.recipe();
        let (inv, cfg, trace) = parse_recipe(&recipe).unwrap();
        assert_eq!(inv, cx.invariant);
        assert_eq!(cfg, cx.config);
        assert_eq!(trace, cx.trace);
    }

    #[test]
    fn config_parsing() {
        let map = parse_config("policy=lru ways=8 mode=mru").unwrap();
        assert_eq!(require(&map, "policy").unwrap(), "lru");
        assert_eq!(require_usize(&map, "ways").unwrap(), 8);
        assert!(require(&map, "sets").is_err());
        assert!(parse_config("oops").is_err());
    }
}

//! Engine-level invariant: `walk-stops-at-first-hit`.
//!
//! The paper's covert channel exists because the MEE counter-tree walk stops
//! climbing at the first cached level (challenge 2): a cached versions line
//! is the fast path the spy decodes as bit 0. This module drives a bare
//! [`Mee`] and cross-checks every [`MeeAccess`] against the cache state
//! observed *before* the op:
//!
//! 1. a non-root hit level must have been cached before the walk;
//! 2. a pre-cached versions line forces a `Versions` hit (nothing earlier in
//!    the walk can evict it: PD_Tag lines have even parity, versions lines
//!    odd, so with ≥2 sets they never collide);
//! 3. `filled` must be *exactly* the missed PD_Tag line plus the missed path
//!    lines strictly below the hit level — no redundant fetches above the
//!    hit, no skipped fetches below;
//! 4. `evicted` lines must have been resident before the op or filled by it;
//! 5. the per-level hit histogram must grow by exactly one at the hit level.
//!
//! [`MeeAccess`]: mee_engine::MeeAccess

use std::collections::HashSet;

use mee_cache::CacheConfig;
use mee_engine::Mee;
use mee_mem::{DramConfig, DramModel, PhysLayout};
use mee_tree::TreeLevel;
use mee_types::{Cycles, LineAddr, TimingConfig};

use crate::cache_spec::policy_by_name;
use crate::counterexample::{parse_config, require, require_usize, Counterexample};
use crate::enumerate::for_each_program;
use crate::Budget;

/// Tree geometry scale for the engine tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geom {
    /// One protected page (64 data lines): every walk shares the single L0
    /// line, maximizing cache interaction at minimal tree cost.
    Tiny,
    /// ~200 protected pages: the address palette spans distinct L0, L1, and
    /// L2 lines, so walks exercise every ladder level.
    Wide,
}

impl Geom {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tiny" => Ok(Geom::Tiny),
            "wide" => Ok(Geom::Wide),
            other => Err(format!("unknown geometry {other:?} (expected tiny|wide)")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Geom::Tiny => "tiny",
            Geom::Wide => "wide",
        }
    }

    fn prm_bytes(self) -> u64 {
        match self {
            Geom::Tiny => 8192,
            Geom::Wide => 1 << 20,
        }
    }

    /// Data-line offsets of the address palette, chosen to straddle version
    /// blocks (and for [`Geom::Wide`], L0/L1/L2 node boundaries).
    fn palette_offsets(self) -> &'static [u64] {
        match self {
            Geom::Tiny => &[0, 8, 63],
            // Same block pair, next page (new L0), page 8 (new L1), page 64
            // (new L2).
            Geom::Wide => &[0, 8, 64, 512, 4096],
        }
    }
}

/// One operation against a bare [`Mee`]. Address operands are palette
/// indices, not raw lines, so traces stay geometry-portable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineOp {
    /// Protected read of palette address `k`.
    Read(usize),
    /// Protected write of palette address `k`.
    Write(usize),
    /// Whole-MEE-cache flush.
    FlushAll,
    /// Flush one MEE-cache set.
    FlushSet(usize),
    /// Drop palette address `k`'s versions + PD_Tag lines (EPC-eviction
    /// footprint).
    EvictFootprint(usize),
}

/// Formats an engine trace (`r0 w1 F s0 e2`).
pub fn fmt_engine_ops(ops: &[EngineOp]) -> String {
    let tokens: Vec<String> = ops
        .iter()
        .map(|op| match op {
            EngineOp::Read(k) => format!("r{k}"),
            EngineOp::Write(k) => format!("w{k}"),
            EngineOp::FlushAll => "F".to_string(),
            EngineOp::FlushSet(s) => format!("s{s}"),
            EngineOp::EvictFootprint(k) => format!("e{k}"),
        })
        .collect();
    tokens.join(" ")
}

/// Parses the output of [`fmt_engine_ops`].
///
/// # Errors
///
/// Returns a message naming the first malformed token.
pub fn parse_engine_ops(trace: &str) -> Result<Vec<EngineOp>, String> {
    trace
        .split_whitespace()
        .map(|tok| {
            let bad =
                || format!("malformed engine op {tok:?} (expected r<k>, w<k>, F, s<n>, or e<k>)");
            if tok == "F" {
                return Ok(EngineOp::FlushAll);
            }
            let n: usize = tok[1..].parse().map_err(|_| bad())?;
            match tok.as_bytes().first() {
                Some(b'r') => Ok(EngineOp::Read(n)),
                Some(b'w') => Ok(EngineOp::Write(n)),
                Some(b's') => Ok(EngineOp::FlushSet(n)),
                Some(b'e') => Ok(EngineOp::EvictFootprint(n)),
                _ => Err(bad()),
            }
        })
        .collect()
}

fn build_mee(geom: Geom, policy: &str, sets: usize, ways: usize) -> Result<(Mee, DramModel), String> {
    let layout = PhysLayout::new(4096, geom.prm_bytes()).map_err(|e| e.to_string())?;
    let geo = mee_tree::TreeGeometry::new(layout.prm_data(), layout.prm_tree())
        .map_err(|e| e.to_string())?;
    let cache_cfg = CacheConfig {
        sets,
        ways,
        line_size: 64,
    };
    let mee = Mee::new(
        geo,
        0x2019,
        cache_cfg,
        policy_by_name(policy)?,
        TimingConfig::noiseless(),
    );
    let dram = DramModel::new(DramConfig {
        jitter_std: 0.0,
        ..DramConfig::default()
    })
    .map_err(|e| e.to_string())?;
    Ok((mee, dram))
}

fn palette(geom: Geom, mee: &Mee) -> Vec<LineAddr> {
    let base = mee.geometry().data_region().base().line();
    geom.palette_offsets()
        .iter()
        .map(|&k| LineAddr::new(base.raw() + k))
        .collect()
}

/// Runs `ops` on a fresh [`Mee`] and checks every walk against the five
/// clauses in the module docs.
///
/// Requires `sets >= 2` (clause 2 relies on PD_Tag/versions parity
/// separation).
///
/// # Errors
///
/// Returns the violation detail, or a message for out-of-range operands.
pub fn check_walk_program(
    geom: Geom,
    policy: &str,
    sets: usize,
    ways: usize,
    ops: &[EngineOp],
) -> Result<(), String> {
    if sets < 2 {
        return Err("walk specs need sets >= 2 (PD_Tag/versions parity separation)".into());
    }
    let (mut mee, mut dram) = build_mee(geom, policy, sets, ways)?;
    let pal = palette(geom, &mee);
    let mut now = 0u64;
    for (i, op) in ops.iter().enumerate() {
        // Arrival times far apart: pipeline queueing never perturbs latency.
        now += 1_000_000;
        let addr = |k: usize| -> Result<LineAddr, String> {
            pal.get(k)
                .copied()
                .ok_or_else(|| format!("step {i}: palette index {k} out of range"))
        };
        match *op {
            EngineOp::Read(k) | EngineOp::Write(k) => {
                let line = addr(k)?;
                let geo = *mee.geometry();
                let path = geo.walk_path(line);
                let tag_line = geo.pd_tag_line(path.version);
                let ladder_lines = [
                    geo.version_line(path.version),
                    geo.level_line(TreeLevel::L0, path.node_at(TreeLevel::L0)),
                    geo.level_line(TreeLevel::L1, path.node_at(TreeLevel::L1)),
                    geo.level_line(TreeLevel::L2, path.node_at(TreeLevel::L2)),
                ];
                let pre_tag = mee.cache().contains(tag_line);
                let pre: Vec<bool> = ladder_lines
                    .iter()
                    .map(|&l| mee.cache().contains(l))
                    .collect();
                let resident_before: HashSet<LineAddr> = mee.cache().resident_lines().collect();
                let stats_before = mee.stats();

                let access = match *op {
                    EngineOp::Read(_) => mee
                        .read(line, Cycles::new(now), &mut dram)
                        .map(|r| r.access),
                    _ => mee.write(line, 0xd1 + i as u64, Cycles::new(now), &mut dram),
                }
                .map_err(|e| format!("step {i}: unexpected walk error: {e}"))?;

                let hl = access.hit_level.ladder_index();
                // (1) the hit level's line must have been cached already.
                if hl < 4 && !pre[hl] {
                    return Err(format!(
                        "step {i}: walk claimed a {} but that line was not cached",
                        access.hit_level
                    ));
                }
                // (2) a cached versions line must stop the walk immediately.
                if pre[0] && hl != 0 {
                    return Err(format!(
                        "step {i}: versions line was cached but the walk climbed to {}",
                        access.hit_level
                    ));
                }
                // (3) filled = missed tag + missed levels strictly below the
                // hit, nothing else.
                let mut expected: Vec<LineAddr> = Vec::new();
                if !pre_tag {
                    expected.push(tag_line);
                }
                expected.extend_from_slice(&ladder_lines[..hl.min(4)]);
                let mut got = access.filled.to_vec();
                got.sort_unstable();
                expected.sort_unstable();
                if got != expected {
                    return Err(format!(
                        "step {i}: hit at {} but filled {:?}, expected exactly {:?}",
                        access.hit_level, access.filled, expected
                    ));
                }
                // (4) evictions must come from somewhere real.
                for e in &access.evicted {
                    if !resident_before.contains(e) && !access.filled.contains(e) {
                        return Err(format!(
                            "step {i}: evicted line {} was neither resident nor filled",
                            e.raw()
                        ));
                    }
                }
                // (5) histogram bumps exactly once, at the hit level.
                let stats = mee.stats();
                for level in 0..5 {
                    let delta = stats.hits_by_level[level] - stats_before.hits_by_level[level];
                    let want = u64::from(level == hl);
                    if delta != want {
                        return Err(format!(
                            "step {i}: hit histogram level {level} moved by {delta}, expected {want}"
                        ));
                    }
                }
            }
            EngineOp::FlushAll => {
                mee.flush_cache();
                if mee.cache().occupancy() != 0 {
                    return Err(format!("step {i}: flush_cache left lines resident"));
                }
            }
            EngineOp::FlushSet(s) => {
                if s >= sets {
                    return Err(format!("step {i}: set {s} out of range"));
                }
                mee.flush_cache_set(s);
                if mee.cache().set_occupancy(s) != 0 {
                    return Err(format!("step {i}: flush_cache_set left lines in set {s}"));
                }
            }
            EngineOp::EvictFootprint(k) => {
                let line = addr(k)?;
                mee.evict_walk_footprint(line);
                let geo = *mee.geometry();
                let path = geo.walk_path(line);
                if mee.cache().contains(geo.version_line(path.version))
                    || mee.cache().contains(geo.pd_tag_line(path.version))
                {
                    return Err(format!(
                        "step {i}: walk footprint of palette {k} still cached after eviction"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Exhaustively checks `walk-stops-at-first-hit` on both geometries with a
/// 2-set × 2-way MEE cache (small enough that walks constantly evict each
/// other's lines).
pub fn enumerate_walk_invariant(budget: &Budget, out: &mut Vec<Counterexample>) {
    for (geom, max_len) in [
        (Geom::Tiny, budget.engine_tiny_len),
        (Geom::Wide, budget.engine_wide_len),
    ] {
        let pal = geom.palette_offsets().len();
        let sets = 2;
        // Symbols: reads, writes, flush-all, per-set flush, footprint evict.
        let symbols = 2 * pal + 1 + sets + pal;
        let decode = |s: usize| -> EngineOp {
            if s < pal {
                EngineOp::Read(s)
            } else if s < 2 * pal {
                EngineOp::Write(s - pal)
            } else if s == 2 * pal {
                EngineOp::FlushAll
            } else if s < 2 * pal + 1 + sets {
                EngineOp::FlushSet(s - 2 * pal - 1)
            } else {
                EngineOp::EvictFootprint(s - 2 * pal - 1 - sets)
            }
        };
        let mut go = true;
        for_each_program(symbols, max_len, |prog| {
            let ops: Vec<EngineOp> = prog.iter().map(|&s| decode(s)).collect();
            if let Err(detail) = check_walk_program(geom, "tree-plru", sets, 2, &ops) {
                out.push(Counterexample {
                    invariant: "walk-stops-at-first-hit",
                    config: format!("geom={} policy=tree-plru sets={sets} ways=2", geom.name()),
                    trace: fmt_engine_ops(&ops),
                    detail,
                    seed: None,
                });
                go = out.len() < budget.max_counterexamples;
            }
            go
        });
        if !go {
            return;
        }
    }
}

/// Replays a `walk-stops-at-first-hit` recipe.
///
/// # Errors
///
/// Returns a message for malformed configs or traces.
pub fn replay_engine_recipe(config: &str, trace: &str) -> Result<Option<Counterexample>, String> {
    let map = parse_config(config)?;
    let geom = Geom::parse(require(&map, "geom")?)?;
    let policy = require(&map, "policy")?.to_owned();
    let sets = require_usize(&map, "sets")?;
    let ways = require_usize(&map, "ways")?;
    let ops = parse_engine_ops(trace)?;
    Ok(check_walk_program(geom, &policy, sets, ways, &ops)
        .err()
        .map(|detail| Counterexample {
            invariant: "walk-stops-at-first-hit",
            config: config.to_owned(),
            trace: trace.to_owned(),
            detail,
            seed: None,
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_ops_round_trip() {
        let ops = vec![
            EngineOp::Read(0),
            EngineOp::Write(2),
            EngineOp::FlushAll,
            EngineOp::FlushSet(1),
            EngineOp::EvictFootprint(0),
        ];
        let s = fmt_engine_ops(&ops);
        assert_eq!(s, "r0 w2 F s1 e0");
        assert_eq!(parse_engine_ops(&s).unwrap(), ops);
        assert!(parse_engine_ops("q3").is_err());
    }

    #[test]
    fn cold_then_warm_walk_passes() {
        // Cold read climbs to the root; the immediate re-read (after the
        // first walk filled the versions line) must stop at Versions.
        let ops = parse_engine_ops("r0 r0").unwrap();
        check_walk_program(Geom::Tiny, "tree-plru", 2, 2, &ops).unwrap();
    }

    #[test]
    fn footprint_eviction_then_read_passes() {
        let ops = parse_engine_ops("r0 e0 r0 F r0").unwrap();
        check_walk_program(Geom::Tiny, "tree-plru", 2, 2, &ops).unwrap();
    }

    #[test]
    fn wide_palette_spans_distinct_tree_nodes() {
        let (mee, _) = build_mee(Geom::Wide, "tree-plru", 2, 2).unwrap();
        let pal = palette(Geom::Wide, &mee);
        let geo = mee.geometry();
        let l0: Vec<u64> = pal
            .iter()
            .map(|&l| geo.walk_path(l).node_at(TreeLevel::L0))
            .collect();
        let l2: Vec<u64> = pal
            .iter()
            .map(|&l| geo.walk_path(l).node_at(TreeLevel::L2))
            .collect();
        assert!(l0[2] != l0[0], "palette[2] should sit under a new L0 node");
        assert!(l2[4] != l2[0], "palette[4] should sit under a new L2 node");
    }

    #[test]
    fn single_set_config_is_rejected() {
        let ops = parse_engine_ops("r0").unwrap();
        assert!(check_walk_program(Geom::Tiny, "tree-plru", 1, 2, &ops).is_err());
    }
}

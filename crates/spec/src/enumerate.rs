//! Exhaustive program enumeration.
//!
//! The model-checking-lite tier does not sample: it walks *every* program up
//! to a length bound over a small op alphabet. The domain modules map each
//! symbol index to a concrete operation.

/// Calls `f` with every program of length `1..=max_len` over an alphabet of
/// `symbols` symbols, in lexicographic order. Each program is a slice of
/// symbol indices. Enumeration stops early when `f` returns `false`.
///
/// # Panics
///
/// Panics if `symbols` is zero (an empty alphabet has no programs).
pub fn for_each_program(symbols: usize, max_len: usize, mut f: impl FnMut(&[usize]) -> bool) {
    assert!(symbols > 0, "empty op alphabet");
    let mut program = Vec::with_capacity(max_len);
    for len in 1..=max_len {
        program.clear();
        program.resize(len, 0);
        loop {
            if !f(&program) {
                return;
            }
            // Odometer increment, least-significant digit last.
            let mut pos = len;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                program[pos] += 1;
                if program[pos] < symbols {
                    break;
                }
                program[pos] = 0;
            }
            if program.iter().all(|&s| s == 0) {
                break; // wrapped around: this length is exhausted
            }
        }
    }
}

/// Number of programs [`for_each_program`] visits: `Σ symbols^k` for
/// `k = 1..=max_len`.
pub fn program_count(symbols: usize, max_len: usize) -> u64 {
    (1..=max_len)
        .map(|len| (symbols as u64).pow(len as u32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_program_once() {
        let mut seen = Vec::new();
        for_each_program(3, 2, |p| {
            seen.push(p.to_vec());
            true
        });
        assert_eq!(seen.len() as u64, program_count(3, 2));
        assert_eq!(seen.len(), 3 + 9);
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "duplicate programs emitted");
        assert!(seen.contains(&vec![2, 2]));
        assert!(seen.contains(&vec![0]));
    }

    #[test]
    fn early_stop_is_respected() {
        let mut count = 0;
        for_each_program(4, 3, |_| {
            count += 1;
            count < 7
        });
        assert_eq!(count, 7);
    }
}

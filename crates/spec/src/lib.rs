#![warn(missing_docs)]
//! **mee-spec** — executable invariant specs for the MEE covert-channel
//! model: a model-checking-lite harness that exhaustively enumerates every
//! short program over tiny configurations, a seeded property tier that
//! drives the same checkers at full-size geometries, and a differential
//! oracle for engine rewrites.
//!
//! # The invariant registry
//!
//! Eight named invariants, each with an executable oracle:
//!
//! | invariant | domain | statement |
//! |---|---|---|
//! | `walk-stops-at-first-hit` | engine | an MEE walk fills exactly the missed prefix of its ladder and stops at the first cached level |
//! | `clflush-spares-mee-cache` | machine | `clflush` evicts from L1/L2/LLC but never perturbs the MEE cache (the paper's channel premise) |
//! | `plru-within-lru` | cache | Tree-PLRU is exactly LRU at 2 ways and never evicts the MRU way |
//! | `victim-from-allowed-ways` | cache | `victim` respects any non-empty way mask, after any history |
//! | `invalidated-way-preferred` | cache | a freshly invalidated way is the next victim under every deterministic policy |
//! | `prm-bounds-enforced` | machine | tree lines stay off-chip, LLC inclusion holds, MEE-cached lines stay inside the PRM tree region, and bad inputs fault with typed errors |
//! | `tree-consistency` | tree | verified reads are last-write-wins and tampers are detected with exact blast radii |
//! | `replay-identity` | machine | identically configured machines produce identical transcripts |
//!
//! # Tiers
//!
//! * **Exhaustive** ([`run_exhaustive`]): walks *every* program up to a
//!   [`Budget`]-bounded length over small op alphabets — no sampling, no
//!   seeds, total coverage of the small-configuration space.
//! * **Property** ([`run_property_tier`]): seeded random programs at
//!   geometries the exhaustive tier cannot afford, honoring the workspace's
//!   `MEE_PROP_CASES` / `MEE_PROP_SEED` knobs.
//!
//! Every violation is a [`Counterexample`] whose [`Display`] rendering is a
//! single line ending in a copy-pasteable replay command; [`replay`] runs a
//! recipe straight back through the same checker.
//!
//! [`Display`]: std::fmt::Display

pub mod cache_spec;
pub mod counterexample;
pub mod engine_spec;
pub mod enumerate;
pub mod machine_spec;
pub mod oracle;
pub mod property;
pub mod tree_spec;

pub use counterexample::{parse_recipe, Counterexample};
pub use oracle::{diff_transcripts, run_trace, DifferentialOracle, Transcript, TranscriptDiff};
pub use property::run_property_tier;

/// The eight named invariants, in walk order.
pub const INVARIANTS: [&str; 8] = [
    "walk-stops-at-first-hit",
    "clflush-spares-mee-cache",
    "plru-within-lru",
    "victim-from-allowed-ways",
    "invalidated-way-preferred",
    "prm-bounds-enforced",
    "tree-consistency",
    "replay-identity",
];

/// Per-domain program-length bounds for the exhaustive tier. Lengths are
/// exponents: one extra step multiplies a domain's program count by its
/// alphabet size.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Max program length for bare-policy traces (invariants 4 and 5).
    pub policy_len: usize,
    /// Max program length for PLRU/LRU cache traces.
    pub cache_len: usize,
    /// Max program length for engine walks on the one-page tree.
    pub engine_tiny_len: usize,
    /// Max program length for engine walks on the wide tree.
    pub engine_wide_len: usize,
    /// Max program length for integrity-tree traces.
    pub tree_len: usize,
    /// Max program length for two-machine traces.
    pub machine_len: usize,
    /// Stop enumerating after this many counterexamples.
    pub max_counterexamples: usize,
}

impl Budget {
    /// Small budget sized for debug-mode `cargo test`: a few thousand
    /// programs per domain, a couple of seconds total.
    pub fn smoke() -> Self {
        Budget {
            policy_len: 3,
            cache_len: 3,
            engine_tiny_len: 3,
            engine_wide_len: 2,
            tree_len: 3,
            machine_len: 2,
            max_counterexamples: 5,
        }
    }

    /// CI budget sized for a release binary: every domain gains one program
    /// step (an alphabet-size multiplier in coverage).
    pub fn full() -> Self {
        Budget {
            policy_len: 4,
            cache_len: 4,
            engine_tiny_len: 4,
            engine_wide_len: 3,
            tree_len: 4,
            machine_len: 3,
            max_counterexamples: 10,
        }
    }
}

/// Runs every domain's exhaustive pass and collects all counterexamples
/// (up to `budget.max_counterexamples`).
pub fn run_exhaustive(budget: &Budget) -> Vec<Counterexample> {
    let mut out = Vec::new();
    type Pass = fn(&Budget, &mut Vec<Counterexample>);
    let passes: [Pass; 5] = [
        cache_spec::enumerate_policy_invariants,
        cache_spec::enumerate_plru_within_lru,
        engine_spec::enumerate_walk_invariant,
        tree_spec::enumerate_tree_invariant,
        machine_spec::enumerate_machine_invariants,
    ];
    for pass in passes {
        if out.len() >= budget.max_counterexamples {
            break;
        }
        pass(budget, &mut out);
    }
    out
}

/// Runs only the exhaustive pass that checks the named invariant and
/// returns its counterexamples.
///
/// # Errors
///
/// Returns a message for names outside [`INVARIANTS`].
pub fn run_invariant(name: &str, budget: &Budget) -> Result<Vec<Counterexample>, String> {
    let mut out = Vec::new();
    match name {
        "victim-from-allowed-ways" | "invalidated-way-preferred" => {
            cache_spec::enumerate_policy_invariants(budget, &mut out);
        }
        "plru-within-lru" => cache_spec::enumerate_plru_within_lru(budget, &mut out),
        "walk-stops-at-first-hit" => engine_spec::enumerate_walk_invariant(budget, &mut out),
        "tree-consistency" => tree_spec::enumerate_tree_invariant(budget, &mut out),
        "clflush-spares-mee-cache" | "prm-bounds-enforced" | "replay-identity" => {
            machine_spec::enumerate_machine_invariants(budget, &mut out);
        }
        other => {
            return Err(format!(
                "unknown invariant {other:?} (see `mee-spec --list`)"
            ))
        }
    }
    out.retain(|cx| cx.invariant == name);
    Ok(out)
}

/// Replays a recipe produced by [`Counterexample::recipe`] through the same
/// checker that generated it. Returns `None` when the trace now passes
/// (i.e. the bug is fixed).
///
/// # Errors
///
/// Returns a message for malformed recipes, configs, or traces.
pub fn replay(recipe: &str) -> Result<Option<Counterexample>, String> {
    let (invariant, config, trace) = parse_recipe(recipe)?;
    match invariant {
        "victim-from-allowed-ways" => {
            cache_spec::replay_policy_recipe("victim-from-allowed-ways", config, trace)
        }
        "invalidated-way-preferred" => {
            cache_spec::replay_policy_recipe("invalidated-way-preferred", config, trace)
        }
        "plru-within-lru" => cache_spec::replay_cache_recipe(config, trace),
        "walk-stops-at-first-hit" => engine_spec::replay_engine_recipe(config, trace),
        "tree-consistency" => tree_spec::replay_tree_recipe(config, trace),
        "clflush-spares-mee-cache" | "prm-bounds-enforced" | "replay-identity" => {
            machine_spec::replay_machine_recipe(config, trace)
        }
        other => Err(format!("unknown invariant {other:?} in recipe")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_names_are_unique_and_routable() {
        let mut names = INVARIANTS.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), INVARIANTS.len());
        for name in INVARIANTS {
            // Every name must route somewhere (tiny budget keeps this fast).
            let budget = Budget {
                policy_len: 1,
                cache_len: 1,
                engine_tiny_len: 1,
                engine_wide_len: 1,
                tree_len: 1,
                machine_len: 1,
                max_counterexamples: 1,
            };
            run_invariant(name, &budget).unwrap();
        }
        assert!(run_invariant("nope", &Budget::smoke()).is_err());
    }

    #[test]
    fn replay_rejects_garbage() {
        assert!(replay("no separators here").is_err());
        assert!(replay("unknown-inv|a=b|f0").is_err());
    }

    #[test]
    fn replay_round_trips_a_passing_recipe() {
        let cx = replay("victim-from-allowed-ways|policy=tree-plru ways=4|f0 h1 i2").unwrap();
        assert!(cx.is_none(), "clean trace reported: {cx:?}");
    }
}

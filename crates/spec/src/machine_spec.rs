//! Machine-level invariants: `clflush-spares-mee-cache`,
//! `prm-bounds-enforced`, and `replay-identity`.
//!
//! One exhaustive pass drives *two* identically configured machines through
//! every short program over a palette of enclave and regular addresses and
//! checks, after every op:
//!
//! - **`replay-identity`** — the machines agree op-for-op (latency, value,
//!   MEE hit level, faults) and end with identical MEE/LLC statistics. The
//!   whole model must be a deterministic function of its config.
//! - **`clflush-spares-mee-cache`** — `clflush` removes the target line from
//!   every on-chip data cache but leaves the MEE cache's resident set and
//!   statistics untouched (the paper's §4 observation that makes the covert
//!   channel possible).
//! - **`prm-bounds-enforced`** — tree lines never appear in L1/L2/LLC, the
//!   inclusive-LLC oracle holds, and every line in the MEE cache lies inside
//!   the PRM tree region. A separate set of fixed cases pins the error paths:
//!   over-mapping returns `OutOfMemory`, invalid configs are rejected, and
//!   foreign core/process handles fault instead of indexing out of bounds.

use mee_machine::{CoreId, Machine, MachineConfig, PolicyKind, ProcId};
use mee_mem::AddressSpaceKind;
use mee_types::{ModelError, VirtAddr};

use crate::counterexample::Counterexample;
use crate::enumerate::for_each_program;
use crate::oracle::{exec_op, OpKind, OracleOp};
use crate::Budget;

/// Base of the enclave mapping (process 0, two pages).
pub const ENCLAVE_BASE: u64 = 0x100_0000;
/// Base of the regular mapping (process 1, one page).
pub const REGULAR_BASE: u64 = 0x200_0000;

/// The machine address palette: `(process index, virtual address)`. Entries
/// 0–2 are enclave lines (same version block, a sibling block, and the
/// second page); entry 3 is an unprotected regular line.
pub const MACH_PALETTE: [(usize, u64); 4] = [
    (0, ENCLAVE_BASE),
    (0, ENCLAVE_BASE + 512),
    (0, ENCLAVE_BASE + 4096),
    (1, REGULAR_BASE),
];

/// Which machine configuration a program runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSize {
    /// [`tiny_config`]: 2 cores, 64 KiB PRM, 2×2 MEE cache. Exhaustive tier.
    Tiny,
    /// [`MachineConfig::small`] with the chosen MEE policy. Property tier.
    Small,
}

impl MachineSize {
    /// Parses `tiny` / `small`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "tiny" => Ok(MachineSize::Tiny),
            "small" => Ok(MachineSize::Small),
            other => Err(format!("unknown machine size {other:?}")),
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            MachineSize::Tiny => "tiny",
            MachineSize::Small => "small",
        }
    }
}

/// Maps the spec harness's policy names onto [`PolicyKind`].
///
/// # Errors
///
/// Returns a message for unknown names.
pub fn policy_kind_by_name(name: &str) -> Result<PolicyKind, String> {
    match name {
        "tree-plru" => Ok(PolicyKind::TreePlru),
        "lru" => Ok(PolicyKind::TrueLru),
        "fifo" => Ok(PolicyKind::Fifo),
        "nru" => Ok(PolicyKind::Nru),
        "srrip" => Ok(PolicyKind::Srrip),
        "random" => Ok(PolicyKind::Random {
            seed: crate::cache_spec::RANDOM_POLICY_SEED,
        }),
        other => Err(format!("unknown policy {other:?}")),
    }
}

/// Canonical name of a [`PolicyKind`] in recipe configs.
pub fn policy_kind_name(kind: PolicyKind) -> &'static str {
    match kind {
        PolicyKind::TreePlru => "tree-plru",
        PolicyKind::TrueLru => "lru",
        PolicyKind::Fifo => "fifo",
        PolicyKind::Nru => "nru",
        PolicyKind::Srrip => "srrip",
        PolicyKind::Random { .. } => "random",
    }
}

/// A noiseless 2-core machine small enough that exhaustive machine programs
/// exercise real MEE-cache evictions: 64 KiB PRM (12 protected pages) and a
/// 2-set × 2-way MEE cache.
pub fn tiny_config(mee_policy: PolicyKind) -> MachineConfig {
    use mee_cache::CacheConfig;
    use mee_mem::DramConfig;
    use mee_types::TimingConfig;
    MachineConfig {
        cores: 2,
        general_bytes: 64 << 10,
        prm_bytes: 64 << 10,
        l1: CacheConfig {
            sets: 8,
            ways: 2,
            line_size: 64,
        },
        l2: CacheConfig {
            sets: 16,
            ways: 2,
            line_size: 64,
        },
        llc: CacheConfig {
            sets: 32,
            ways: 4,
            line_size: 64,
        },
        mee_cache: CacheConfig {
            sets: 2,
            ways: 2,
            line_size: 64,
        },
        mee_policy,
        timing: TimingConfig::noiseless(),
        dram: DramConfig {
            jitter_std: 0.0,
            ..DramConfig::default()
        },
        ..MachineConfig::default()
    }
}

fn config_for(size: MachineSize, policy: PolicyKind) -> MachineConfig {
    match size {
        MachineSize::Tiny => tiny_config(policy),
        MachineSize::Small => MachineConfig {
            mee_policy: policy,
            ..MachineConfig::small()
        },
    }
}

/// Builds a machine of the given size with the two palette processes mapped:
/// process 0 an enclave (2 pages at [`ENCLAVE_BASE`]), process 1 regular
/// (1 page at [`REGULAR_BASE`]).
///
/// # Errors
///
/// Propagates construction/mapping failures.
pub fn build_machine(
    size: MachineSize,
    policy: PolicyKind,
) -> Result<(Machine, Vec<ProcId>), ModelError> {
    let mut m = Machine::new(config_for(size, policy))?;
    let enclave = m.create_process(AddressSpaceKind::Enclave);
    m.map_pages(enclave, VirtAddr::new(ENCLAVE_BASE), 2)?;
    let regular = m.create_process(AddressSpaceKind::Regular);
    m.map_pages(regular, VirtAddr::new(REGULAR_BASE), 1)?;
    Ok((m, vec![enclave, regular]))
}

/// One machine-program operation. Operands are a core index and a
/// [`MACH_PALETTE`] index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachOp {
    /// `read_value` of palette entry `k` from `core`.
    Read(usize, usize),
    /// `write` to palette entry `k` from `core`.
    Write(usize, usize),
    /// `clflush` of palette entry `k` from `core`.
    Clflush(usize, usize),
}

impl MachOp {
    fn to_oracle(self) -> OracleOp {
        let (core, k, mk) = match self {
            MachOp::Read(c, k) => (c, k, 0),
            MachOp::Write(c, k) => (c, k, 1),
            MachOp::Clflush(c, k) => (c, k, 2),
        };
        let (proc, va) = MACH_PALETTE[k];
        let va = VirtAddr::new(va);
        let kind = match mk {
            0 => OpKind::Read(va),
            1 => OpKind::Write(va, 0xa0 + k as u64),
            _ => OpKind::Clflush(va),
        };
        OracleOp { core, proc, kind }
    }
}

/// Formats a machine trace (`r0.1 w1.2 c0.3`).
pub fn fmt_mach_ops(ops: &[MachOp]) -> String {
    let tokens: Vec<String> = ops
        .iter()
        .map(|op| match op {
            MachOp::Read(c, k) => format!("r{c}.{k}"),
            MachOp::Write(c, k) => format!("w{c}.{k}"),
            MachOp::Clflush(c, k) => format!("c{c}.{k}"),
        })
        .collect();
    tokens.join(" ")
}

/// Parses the output of [`fmt_mach_ops`].
///
/// # Errors
///
/// Returns a message naming the first malformed token.
pub fn parse_mach_ops(trace: &str) -> Result<Vec<MachOp>, String> {
    trace
        .split_whitespace()
        .map(|tok| {
            let bad =
                || format!("malformed machine op {tok:?} (expected r/w/c<core>.<palette>)");
            let (head, rest) = tok.split_at(1);
            let (c, k) = rest.split_once('.').ok_or_else(bad)?;
            let c: usize = c.parse().map_err(|_| bad())?;
            let k: usize = k.parse().map_err(|_| bad())?;
            if k >= MACH_PALETTE.len() {
                return Err(format!("palette index {k} out of range"));
            }
            match head {
                "r" => Ok(MachOp::Read(c, k)),
                "w" => Ok(MachOp::Write(c, k)),
                "c" => Ok(MachOp::Clflush(c, k)),
                _ => Err(bad()),
            }
        })
        .collect()
}

fn mee_resident_sorted(m: &Machine) -> Vec<u64> {
    let mut v: Vec<u64> = m.mee().cache().resident_lines().map(|l| l.raw()).collect();
    v.sort_unstable();
    v
}

/// Runs `ops` on two identically configured machines and checks the three
/// machine invariants after every op. On violation returns the invariant
/// name plus the detail.
///
/// # Errors
///
/// `Err((invariant, detail))` describes the first violation.
pub fn check_machine_program(
    size: MachineSize,
    policy: PolicyKind,
    ops: &[MachOp],
) -> Result<(), (&'static str, String)> {
    let build = |m: &str| {
        build_machine(size, policy)
            .map_err(|e| ("replay-identity", format!("machine {m} failed to build: {e}")))
    };
    let (mut ma, procs_a) = build("A")?;
    let (mut mb, procs_b) = build("B")?;
    let tree_region = ma.layout().prm_tree();
    for (i, op) in ops.iter().enumerate() {
        let oop = op.to_oracle();
        let flush_snapshot = if matches!(op, MachOp::Clflush(..)) {
            Some((mee_resident_sorted(&ma), ma.mee().stats()))
        } else {
            None
        };
        let ra = exec_op(&mut ma, &procs_a, &oop);
        let rb = exec_op(&mut mb, &procs_b, &oop);
        if let Some(e) = &ra.error {
            return Err((
                "replay-identity",
                format!("step {i}: well-formed op faulted: {e}"),
            ));
        }
        if ra != rb {
            return Err((
                "replay-identity",
                format!("step {i}: machines diverged: A {ra:?} vs B {rb:?}"),
            ));
        }
        if let Some((resident_before, stats_before)) = flush_snapshot {
            if mee_resident_sorted(&ma) != resident_before || ma.mee().stats() != stats_before {
                return Err((
                    "clflush-spares-mee-cache",
                    format!("step {i}: clflush perturbed the MEE cache or its stats"),
                ));
            }
            let MachOp::Clflush(_, k) = op else { unreachable!() };
            let (pi, va) = MACH_PALETTE[*k];
            let pa = ma
                .translate(procs_a[pi], VirtAddr::new(va))
                .map_err(|e| ("replay-identity", format!("step {i}: translate failed: {e}")))?;
            if ma.line_cached_anywhere(pa.line()) {
                return Err((
                    "clflush-spares-mee-cache",
                    format!("step {i}: flushed line {} still cached on-chip", pa.line().raw()),
                ));
            }
        }
        if let Some(line) = ma.check_no_tree_lines_on_chip() {
            return Err((
                "prm-bounds-enforced",
                format!("step {i}: tree line {} leaked into a data cache", line.raw()),
            ));
        }
        if let Some((core, line)) = ma.check_inclusion() {
            return Err((
                "prm-bounds-enforced",
                format!(
                    "step {i}: inclusion violated: core {core:?} caches line {} absent from LLC",
                    line.raw()
                ),
            ));
        }
        if let Some(line) = ma
            .mee()
            .cache()
            .resident_lines()
            .find(|l| !tree_region.contains(l.base()))
        {
            return Err((
                "prm-bounds-enforced",
                format!(
                    "step {i}: MEE cache holds line {} outside the PRM tree region",
                    line.raw()
                ),
            ));
        }
    }
    if ma.mee().stats() != mb.mee().stats() {
        return Err((
            "replay-identity",
            format!(
                "final MEE stats diverged: {:?} vs {:?}",
                ma.mee().stats(),
                mb.mee().stats()
            ),
        ));
    }
    if ma.llc().stats() != mb.llc().stats() {
        return Err((
            "replay-identity",
            format!(
                "final LLC stats diverged: {:?} vs {:?}",
                ma.llc().stats(),
                mb.llc().stats()
            ),
        ));
    }
    Ok(())
}

/// Exhaustively checks the three machine invariants on the tiny machine.
pub fn enumerate_machine_invariants(budget: &Budget, out: &mut Vec<Counterexample>) {
    // Symbols: reads and writes from both cores, clflush from core 0.
    let symbols = 2 * MACH_PALETTE.len() * 2 + MACH_PALETTE.len();
    let pal = MACH_PALETTE.len();
    let decode = |s: usize| -> MachOp {
        if s < 2 * pal {
            MachOp::Read(s / pal, s % pal)
        } else if s < 4 * pal {
            let s = s - 2 * pal;
            MachOp::Write(s / pal, s % pal)
        } else {
            MachOp::Clflush(0, s - 4 * pal)
        }
    };
    let mut go = true;
    for_each_program(symbols, budget.machine_len, |prog| {
        let ops: Vec<MachOp> = prog.iter().map(|&s| decode(s)).collect();
        if let Err((invariant, detail)) =
            check_machine_program(MachineSize::Tiny, PolicyKind::TreePlru, &ops)
        {
            out.push(Counterexample {
                invariant,
                config: "machine=tiny mee=tree-plru".into(),
                trace: fmt_mach_ops(&ops),
                detail,
                seed: None,
            });
            go = out.len() < budget.max_counterexamples;
        }
        go
    });
    if go {
        check_fixed_prm_cases(out);
    }
}

/// Runs one named `prm-bounds-enforced` error-path case. These pin the typed
/// error contract: bad inputs fault with the right [`ModelError`], never by
/// panicking or silently succeeding.
///
/// # Errors
///
/// Returns a message for unknown case names.
pub fn run_fixed_prm_case(name: &str) -> Result<Option<Counterexample>, String> {
    let fail = |detail: String| Counterexample {
        invariant: "prm-bounds-enforced",
        config: format!("case={name}"),
        trace: "-".into(),
        detail,
        seed: None,
    };
    let outcome: Option<String> = match name {
        "overmap-oom" => {
            let (mut m, procs) = build_machine(MachineSize::Tiny, PolicyKind::TreePlru)
                .map_err(|e| e.to_string())?;
            match m.map_pages(procs[0], VirtAddr::new(0x800_0000), 10_000) {
                Err(ModelError::OutOfMemory { .. }) => None,
                other => Some(format!(
                    "mapping 10000 pages into a 12-page PRM returned {other:?}, \
                     expected OutOfMemory"
                )),
            }
        }
        "zero-cores" => {
            let cfg = MachineConfig {
                cores: 0,
                ..tiny_config(PolicyKind::TreePlru)
            };
            match Machine::new(cfg) {
                Err(ModelError::InvalidConfig { .. }) => None,
                Ok(_) => Some("a zero-core machine was accepted".into()),
                Err(e) => Some(format!("zero-core machine failed with {e}, expected InvalidConfig")),
            }
        }
        "bad-mee-geometry" => {
            let mut cfg = tiny_config(PolicyKind::TreePlru);
            cfg.mee_cache.sets = 3;
            match Machine::new(cfg) {
                Err(ModelError::InvalidConfig { .. }) => None,
                Ok(_) => Some("a 3-set MEE cache was accepted".into()),
                Err(e) => Some(format!("3-set MEE cache failed with {e}, expected InvalidConfig")),
            }
        }
        "foreign-core" => {
            let (mut m, procs) = build_machine(MachineSize::Tiny, PolicyKind::TreePlru)
                .map_err(|e| e.to_string())?;
            match m.read(CoreId::new(99), procs[0], VirtAddr::new(ENCLAVE_BASE)) {
                Err(ModelError::NoSuchCore { .. }) => None,
                other => Some(format!(
                    "read on core 99 of a 2-core machine returned {other:?}, \
                     expected NoSuchCore"
                )),
            }
        }
        "foreign-proc" => {
            let (mut m1, _) = build_machine(MachineSize::Tiny, PolicyKind::TreePlru)
                .map_err(|e| e.to_string())?;
            // Mint a ProcId the first machine has never issued by creating a
            // third process on a second machine.
            let (mut m2, _) = build_machine(MachineSize::Tiny, PolicyKind::TreePlru)
                .map_err(|e| e.to_string())?;
            let foreign = m2.create_process(AddressSpaceKind::Regular);
            match m1.read(CoreId::new(0), foreign, VirtAddr::new(ENCLAVE_BASE)) {
                Err(ModelError::NoSuchProcess { .. }) => None,
                other => Some(format!(
                    "read with a foreign ProcId returned {other:?}, expected NoSuchProcess"
                )),
            }
        }
        other => return Err(format!("unknown prm-bounds case {other:?}")),
    };
    Ok(outcome.map(fail))
}

/// All fixed `prm-bounds-enforced` case names.
pub const FIXED_PRM_CASES: [&str; 5] = [
    "overmap-oom",
    "zero-cores",
    "bad-mee-geometry",
    "foreign-core",
    "foreign-proc",
];

fn check_fixed_prm_cases(out: &mut Vec<Counterexample>) {
    for name in FIXED_PRM_CASES {
        match run_fixed_prm_case(name) {
            Ok(Some(cx)) => out.push(cx),
            Ok(None) => {}
            Err(e) => unreachable!("fixed case {name}: {e}"),
        }
    }
}

/// Replays a machine-domain recipe (any of the three invariant names).
///
/// # Errors
///
/// Returns a message for malformed configs or traces.
pub fn replay_machine_recipe(
    config: &str,
    trace: &str,
) -> Result<Option<Counterexample>, String> {
    let kv = crate::counterexample::parse_config(config)?;
    if let Some(case) = kv.get("case") {
        return run_fixed_prm_case(case);
    }
    let size = MachineSize::parse(crate::counterexample::require(&kv, "machine")?)?;
    let policy = policy_kind_by_name(crate::counterexample::require(&kv, "mee")?)?;
    let ops = parse_mach_ops(trace)?;
    Ok(check_machine_program(size, policy, &ops)
        .err()
        .map(|(invariant, detail)| Counterexample {
            invariant,
            config: config.to_owned(),
            trace: trace.to_owned(),
            detail,
            seed: None,
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mach_ops_round_trip() {
        let ops = vec![MachOp::Read(0, 1), MachOp::Write(1, 2), MachOp::Clflush(0, 3)];
        let s = fmt_mach_ops(&ops);
        assert_eq!(s, "r0.1 w1.2 c0.3");
        assert_eq!(parse_mach_ops(&s).unwrap(), ops);
        assert!(parse_mach_ops("r0.9").is_err());
        assert!(parse_mach_ops("x0.1").is_err());
    }

    #[test]
    fn clean_programs_pass_all_three_invariants() {
        let ops = parse_mach_ops("w0.0 r0.0 c0.0 r0.0 w1.3 r1.3 c0.2 r0.2 r0.1").unwrap();
        check_machine_program(MachineSize::Tiny, PolicyKind::TreePlru, &ops)
            .unwrap_or_else(|(inv, d)| panic!("{inv}: {d}"));
    }

    #[test]
    fn fixed_prm_cases_all_hold() {
        for name in FIXED_PRM_CASES {
            assert_eq!(run_fixed_prm_case(name).unwrap(), None, "case {name}");
        }
    }

    #[test]
    fn replay_dispatches_fixed_cases() {
        let cx = replay_machine_recipe("case=overmap-oom", "-").unwrap();
        assert!(cx.is_none());
        assert!(replay_machine_recipe("case=nope", "-").is_err());
    }
}

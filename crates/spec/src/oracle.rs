//! The differential oracle: run one trace on two machine builds and diff
//! the observable transcripts.
//!
//! This is the gate for any future engine rewrite (e.g. an event-driven
//! core): build the current machine and the candidate from the same config,
//! drive both with the same instruction trace, and demand an empty
//! [`TranscriptDiff`]. The transcript records everything an attacker-level
//! observer can see — per-op latency, loaded values, faults, and the
//! ground-truth MEE hit level — plus end-of-trace cache statistics.
//!
//! The module also ships a miniature two-actor covert-channel session
//! ([`covert_exchange_trace`]) so the oracle can be exercised on the exact
//! access pattern the paper's attack produces.

use std::fmt;

use mee_cache::CacheStats;
use mee_engine::MeeStats;
use mee_machine::{CoreId, Machine, PolicyKind, ProcId};
use mee_mem::AddressSpaceKind;
use mee_types::{Cycles, ModelError, VirtAddr};

/// One instruction of a machine trace. `proc` indexes the process vector
/// returned by the machine builder, so traces stay portable across builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOp {
    /// Issuing core index.
    pub core: usize,
    /// Index into the builder's process vector.
    pub proc: usize,
    /// What to execute.
    pub kind: OpKind,
}

/// The instruction itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `read_value` at the address.
    Read(VirtAddr),
    /// `write` of the digest to the address.
    Write(VirtAddr, u64),
    /// `clflush` of the address.
    Clflush(VirtAddr),
    /// Serializing fence.
    Mfence,
    /// Pure computation for the given cycle count.
    Advance(u64),
    /// Establishment sweep: read-then-`clflush` over `pages` 4 KiB-strided
    /// addresses starting at the base (reverse order when `rev`), issued
    /// through the batched `sweep_read_flush` path. One record carries the
    /// batch's total latency, so a trace mixing sweeps with per-op loops
    /// pins the batch APIs into the differential tier.
    Sweep {
        /// First (lowest) address of the 4 KiB-strided run.
        base: VirtAddr,
        /// Number of strided addresses.
        pages: u16,
        /// Sweep in descending address order (the backward pass).
        rev: bool,
    },
}

impl OracleOp {
    /// Shorthand for a read op.
    pub fn read(core: usize, proc: usize, va: u64) -> Self {
        OracleOp {
            core,
            proc,
            kind: OpKind::Read(VirtAddr::new(va)),
        }
    }

    /// Shorthand for a write op.
    pub fn write(core: usize, proc: usize, va: u64, digest: u64) -> Self {
        OracleOp {
            core,
            proc,
            kind: OpKind::Write(VirtAddr::new(va), digest),
        }
    }

    /// Shorthand for a clflush op.
    pub fn clflush(core: usize, proc: usize, va: u64) -> Self {
        OracleOp {
            core,
            proc,
            kind: OpKind::Clflush(VirtAddr::new(va)),
        }
    }

    /// Shorthand for an advance op.
    pub fn advance(core: usize, cycles: u64) -> Self {
        OracleOp {
            core,
            proc: 0,
            kind: OpKind::Advance(cycles),
        }
    }

    /// Shorthand for a forward establishment sweep.
    pub fn sweep(core: usize, proc: usize, base: u64, pages: u16) -> Self {
        OracleOp {
            core,
            proc,
            kind: OpKind::Sweep {
                base: VirtAddr::new(base),
                pages,
                rev: false,
            },
        }
    }

    /// Shorthand for a backward establishment sweep.
    pub fn sweep_rev(core: usize, proc: usize, base: u64, pages: u16) -> Self {
        OracleOp {
            core,
            proc,
            kind: OpKind::Sweep {
                base: VirtAddr::new(base),
                pages,
                rev: true,
            },
        }
    }

    /// The per-op expansion of a [`OpKind::Sweep`]: the equivalent
    /// read + `clflush` loop, for holding the batched path and the split
    /// path observationally identical on the same machine.
    pub fn expand_sweep(&self) -> Vec<OracleOp> {
        let OpKind::Sweep { base, pages, rev } = self.kind else {
            return vec![*self];
        };
        let mut ops = Vec::with_capacity(2 * pages as usize);
        let mut order: Vec<u64> = (0..u64::from(pages)).collect();
        if rev {
            order.reverse();
        }
        for i in order {
            let va = base.raw() + i * 4096;
            ops.push(OracleOp::read(self.core, self.proc, va));
            ops.push(OracleOp::clflush(self.core, self.proc, va));
        }
        ops
    }
}

/// Everything observable about one executed op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Latency charged to the issuing core (0 for failed ops).
    pub latency: u64,
    /// Value loaded by a read.
    pub value: Option<u64>,
    /// Ladder index where the MEE walk stopped, if the op reached the MEE.
    pub mee_hit: Option<usize>,
    /// Rendered error, if the op faulted.
    pub error: Option<String>,
}

/// Executes one op against a machine, capturing its observable outcome.
pub fn exec_op(m: &mut Machine, procs: &[ProcId], op: &OracleOp) -> OpRecord {
    let core = CoreId::new(op.core);
    let mut rec = OpRecord {
        latency: 0,
        value: None,
        mee_hit: None,
        error: None,
    };
    let Some(&proc) = procs.get(op.proc) else {
        rec.error = Some(format!("trace proc index {} out of range", op.proc));
        return rec;
    };
    match op.kind {
        OpKind::Read(va) => match m.read_value(core, proc, va) {
            Ok((lat, value)) => {
                rec.latency = lat.raw();
                rec.value = Some(value);
                rec.mee_hit = m.last_mee_hit().map(|h| h.ladder_index());
            }
            Err(e) => rec.error = Some(e.to_string()),
        },
        OpKind::Write(va, digest) => match m.write(core, proc, va, digest) {
            Ok(lat) => {
                rec.latency = lat.raw();
                rec.mee_hit = m.last_mee_hit().map(|h| h.ladder_index());
            }
            Err(e) => rec.error = Some(e.to_string()),
        },
        OpKind::Clflush(va) => match m.clflush(core, proc, va) {
            Ok(lat) => rec.latency = lat.raw(),
            Err(e) => rec.error = Some(e.to_string()),
        },
        OpKind::Mfence => rec.latency = m.mfence(core).raw(),
        OpKind::Advance(cycles) => rec.latency = m.advance(core, Cycles::new(cycles)).raw(),
        OpKind::Sweep { base, pages, rev } => {
            let addrs: Vec<VirtAddr> = (0..u64::from(pages))
                .map(|i| VirtAddr::new(base.raw() + i * 4096))
                .collect();
            match m.sweep_read_flush(core, proc, &addrs, rev) {
                Ok(total) => {
                    rec.latency = total.raw();
                    rec.mee_hit = m.last_mee_hit().map(|h| h.ladder_index());
                }
                Err(e) => rec.error = Some(e.to_string()),
            }
        }
    }
    rec
}

/// The observable outcome of a whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// Per-op records, in trace order.
    pub records: Vec<OpRecord>,
    /// Final MEE statistics.
    pub mee_stats: MeeStats,
    /// Final LLC statistics.
    pub llc_stats: CacheStats,
    /// Sorted raw line addresses resident in the MEE cache at the end.
    pub mee_resident: Vec<u64>,
}

/// Runs a trace against a machine and returns the transcript.
pub fn run_trace(m: &mut Machine, procs: &[ProcId], trace: &[OracleOp]) -> Transcript {
    let records = trace.iter().map(|op| exec_op(m, procs, op)).collect();
    let mut mee_resident: Vec<u64> = m.mee().cache().resident_lines().map(|l| l.raw()).collect();
    mee_resident.sort_unstable();
    Transcript {
        records,
        mee_stats: m.mee().stats(),
        llc_stats: m.llc().stats(),
        mee_resident,
    }
}

/// One step where the two transcripts disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Trace index of the disagreeing op.
    pub index: usize,
    /// Outcome on machine A.
    pub a: OpRecord,
    /// Outcome on machine B.
    pub b: OpRecord,
}

/// The diff of two transcripts. Empty means the machines are observationally
/// identical on this trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptDiff {
    /// Per-op disagreements.
    pub divergences: Vec<Divergence>,
    /// End-state disagreement (stats or residency), if any.
    pub summary: Option<String>,
}

impl TranscriptDiff {
    /// True when the transcripts matched op-for-op and in final state.
    pub fn is_empty(&self) -> bool {
        self.divergences.is_empty() && self.summary.is_none()
    }
}

impl fmt::Display for TranscriptDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "transcripts identical");
        }
        for d in &self.divergences {
            writeln!(f, "op {}: A {:?} != B {:?}", d.index, d.a, d.b)?;
        }
        if let Some(s) = &self.summary {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Structurally compares two transcripts.
pub fn diff_transcripts(a: &Transcript, b: &Transcript) -> TranscriptDiff {
    let divergences = a
        .records
        .iter()
        .zip(&b.records)
        .enumerate()
        .filter(|(_, (ra, rb))| ra != rb)
        .map(|(index, (ra, rb))| Divergence {
            index,
            a: ra.clone(),
            b: rb.clone(),
        })
        .collect();
    let mut summary = None;
    if a.records.len() != b.records.len() {
        summary = Some(format!(
            "record counts differ: {} vs {}",
            a.records.len(),
            b.records.len()
        ));
    } else if a.mee_stats != b.mee_stats {
        summary = Some(format!(
            "MEE stats differ: {:?} vs {:?}",
            a.mee_stats, b.mee_stats
        ));
    } else if a.llc_stats != b.llc_stats {
        summary = Some(format!(
            "LLC stats differ: {:?} vs {:?}",
            a.llc_stats, b.llc_stats
        ));
    } else if a.mee_resident != b.mee_resident {
        summary = Some(format!(
            "MEE cache residency differs: {:?} vs {:?}",
            a.mee_resident, b.mee_resident
        ));
    }
    TranscriptDiff {
        divergences,
        summary,
    }
}

/// Runs one trace on two independently built machines and diffs the
/// transcripts — the gate for engine rewrites.
pub struct DifferentialOracle<A, B> {
    build_a: A,
    build_b: B,
}

impl<A, B> DifferentialOracle<A, B>
where
    A: Fn() -> Result<(Machine, Vec<ProcId>), ModelError>,
    B: Fn() -> Result<(Machine, Vec<ProcId>), ModelError>,
{
    /// Creates an oracle from two machine builders. Each builder returns the
    /// machine plus the process vector trace ops index into.
    pub fn new(build_a: A, build_b: B) -> Self {
        DifferentialOracle { build_a, build_b }
    }

    /// Builds both machines, runs the trace on each, and diffs.
    ///
    /// # Errors
    ///
    /// Propagates builder failures (trace-level faults are recorded in the
    /// transcripts instead).
    pub fn run(&self, trace: &[OracleOp]) -> Result<TranscriptDiff, ModelError> {
        let (ta, tb) = (self.transcript_a(trace)?, self.transcript_b(trace)?);
        Ok(diff_transcripts(&ta, &tb))
    }

    /// Runs the trace on a fresh A build only.
    ///
    /// # Errors
    ///
    /// Propagates builder failures.
    pub fn transcript_a(&self, trace: &[OracleOp]) -> Result<Transcript, ModelError> {
        let (mut m, procs) = (self.build_a)()?;
        Ok(run_trace(&mut m, &procs, trace))
    }

    /// Runs the trace on a fresh B build only.
    ///
    /// # Errors
    ///
    /// Propagates builder failures.
    pub fn transcript_b(&self, trace: &[OracleOp]) -> Result<Transcript, ModelError> {
        let (mut m, procs) = (self.build_b)()?;
        Ok(run_trace(&mut m, &procs, trace))
    }
}

// ---------------------------------------------------------------------------
// A miniature two-actor covert-channel session
// ---------------------------------------------------------------------------

/// Spy enclave base address in the channel builder.
pub const SPY_BASE: u64 = 0x100_0000;
/// Trojan enclave base address in the channel builder.
pub const TROJAN_BASE: u64 = 0x200_0000;

/// Builds the two-enclave machine for [`covert_exchange_trace`]: process 0
/// is the spy (2 pages at [`SPY_BASE`]), process 1 the trojan (2 pages at
/// [`TROJAN_BASE`]), over a 2-set × 2-way MEE cache so three trojan walks
/// always thrash the versions set.
///
/// # Errors
///
/// Propagates machine construction/mapping failures.
pub fn channel_machine(mee_policy: PolicyKind) -> Result<(Machine, Vec<ProcId>), ModelError> {
    let mut m = Machine::new(crate::machine_spec::tiny_config(mee_policy))?;
    let spy = m.create_process(AddressSpaceKind::Enclave);
    m.map_pages(spy, VirtAddr::new(SPY_BASE), 2)?;
    let trojan = m.create_process(AddressSpaceKind::Enclave);
    m.map_pages(trojan, VirtAddr::new(TROJAN_BASE), 2)?;
    Ok((m, vec![spy, trojan]))
}

/// A covert exchange trace plus the probe indices needed to decode it.
#[derive(Debug, Clone)]
pub struct ExchangeTrace {
    /// The full instruction trace for both actors.
    pub trace: Vec<OracleOp>,
    /// Probe index of the calibration round with an idle trojan (bit 0).
    pub ref0: usize,
    /// Probe index of the calibration round with a thrashing trojan (bit 1).
    pub ref1: usize,
    /// Probe indices of the data rounds, one per message bit.
    pub probes: Vec<usize>,
}

/// Builds the paper-shaped covert exchange: per round, the spy flushes and
/// re-reads its monitor line while the trojan either walks three distinct
/// version blocks — thrashing the MEE cache (bit 1) — or stays idle
/// (bit 0). Two calibration rounds with known bits precede the message, so
/// [`decode_exchange`] can threshold probe latencies without any
/// out-of-band timing model.
pub fn covert_exchange_trace(bits: &[bool]) -> ExchangeTrace {
    let mut trace = Vec::new();
    let mut probes = Vec::new();
    // Warm-up: establish the monitor line's walk footprint.
    trace.push(OracleOp::read(0, 0, SPY_BASE));
    let round = |trace: &mut Vec<OracleOp>, bit: bool| -> usize {
        trace.push(OracleOp::clflush(0, 0, SPY_BASE));
        trace.push(OracleOp {
            core: 0,
            proc: 0,
            kind: OpKind::Mfence,
        });
        if bit {
            // Three distinct version blocks: guaranteed eviction of the
            // monitor's walk footprint from the tiny MEE cache.
            for off in [0u64, 512, 1024] {
                trace.push(OracleOp::clflush(1, 1, TROJAN_BASE + off));
                trace.push(OracleOp::read(1, 1, TROJAN_BASE + off));
            }
        } else {
            trace.push(OracleOp::advance(1, 4000));
        }
        let probe = trace.len();
        trace.push(OracleOp::read(0, 0, SPY_BASE));
        probe
    };
    let ref0 = round(&mut trace, false);
    let ref1 = round(&mut trace, true);
    for &bit in bits {
        let probe = round(&mut trace, bit);
        probes.push(probe);
    }
    ExchangeTrace {
        trace,
        ref0,
        ref1,
        probes,
    }
}

/// Decodes a transcript of [`covert_exchange_trace`]: a probe slower than
/// the idle calibration latency plus an eighth of the calibration gap is a
/// thrashed walk, bit 1. The threshold hugs the idle reference because in
/// the noiseless model an idle-round probe reproduces it *exactly*, while
/// thrashed probes vary (upward) with DRAM bank state.
pub fn decode_exchange(t: &Transcript, x: &ExchangeTrace) -> Vec<bool> {
    let (r0, r1) = (t.records[x.ref0].latency, t.records[x.ref1].latency);
    let threshold = r0 + r1.saturating_sub(r0) / 8;
    x.probes
        .iter()
        .map(|&i| t.records[i].latency > threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_builds_have_empty_diff() {
        let x = covert_exchange_trace(&[true, false, true]);
        let oracle = DifferentialOracle::new(
            || channel_machine(PolicyKind::TreePlru),
            || channel_machine(PolicyKind::TreePlru),
        );
        let diff = oracle.run(&x.trace).unwrap();
        assert!(diff.is_empty(), "self-diff not empty: {diff}");
    }

    #[test]
    fn exchange_decodes_exactly() {
        let sent = [true, false, true, true, false, false, true, false];
        let x = covert_exchange_trace(&sent);
        let (mut m, procs) = channel_machine(PolicyKind::TreePlru).unwrap();
        let t = run_trace(&mut m, &procs, &x.trace);
        assert_eq!(decode_exchange(&t, &x), sent);
    }

    #[test]
    fn trace_errors_are_recorded_not_fatal() {
        let (mut m, procs) = channel_machine(PolicyKind::TreePlru).unwrap();
        let bad = OracleOp::read(0, 0, 0xdead_0000); // unmapped
        let t = run_trace(&mut m, &procs, &[bad]);
        assert!(t.records[0].error.as_deref().unwrap().contains("page fault"));
    }
}

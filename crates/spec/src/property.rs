//! The seeded property tier: the same domain checkers as the exhaustive
//! tier, but driven by random programs at full-size geometries the
//! exhaustive tier cannot afford (8-way policies, a wide tree, the
//! `MachineConfig::small` machine).
//!
//! Case generation reuses the workspace's in-tree property driver
//! conventions: per-case seeds derive from [`mee_rng::stream_seed`], the
//! case count and base seed come from `MEE_PROP_CASES` / `MEE_PROP_SEED`
//! (via [`PropConfig::from_env`]), and `MEE_PROP_SEED=<case seed>` replays a
//! single failing case exactly. Every counterexample carries its case seed,
//! so its one-line recipe points back here.

use mee_rng::prop::{pick, vec_of, PropConfig};
use mee_rng::{stream_seed, Rng};

use crate::cache_spec::{
    check_invalidated_preferred, check_plru_matches_lru, check_victim_from_allowed,
    fmt_cache_ops, fmt_policy_ops, CacheOp, PolicyOp, ALL_POLICIES, DETERMINISTIC_POLICIES,
};
use crate::counterexample::Counterexample;
use crate::engine_spec::{check_walk_program, fmt_engine_ops, EngineOp, Geom};
use crate::machine_spec::{
    check_machine_program, fmt_mach_ops, MachOp, MachineSize, MACH_PALETTE,
};
use crate::tree_spec::{check_tree_program, fmt_tree_ops, TreeOp, PALETTE};
use mee_machine::PolicyKind;

/// Default case count when `MEE_PROP_CASES` is unset.
pub const DEFAULT_CASES: u32 = 24;

/// Runs every seeded property once per case and collects the failures.
///
/// Honors `cfg.replay`: with `MEE_PROP_SEED=<seed>` set, runs exactly one
/// case with that seed (the failing-case replay path).
pub fn run_property_tier(cfg: &PropConfig) -> Vec<Counterexample> {
    let mut out = Vec::new();
    if let Some(seed) = cfg.replay {
        run_case(seed, &mut out);
        return out;
    }
    for case in 0..cfg.cases {
        run_case(stream_seed(cfg.seed, case as u64), &mut out);
    }
    out
}

fn run_case(case_seed: u64, out: &mut Vec<Counterexample>) {
    let mut rng = Rng::seed_from_u64(case_seed);
    policy_properties(&mut rng, case_seed, out);
    cache_properties(&mut rng, case_seed, out);
    engine_property(&mut rng, case_seed, out);
    tree_property(&mut rng, case_seed, out);
    machine_property(&mut rng, case_seed, out);
}

fn random_policy_op(rng: &mut Rng, ways: usize) -> PolicyOp {
    let way = rng.random_range(0..ways);
    match rng.random_range(0..3u32) {
        0 => PolicyOp::Fill(way),
        1 => PolicyOp::Hit(way),
        _ => PolicyOp::Inval(way),
    }
}

/// `victim-from-allowed-ways` and `invalidated-way-preferred` at 8 ways.
fn policy_properties(rng: &mut Rng, seed: u64, out: &mut Vec<Counterexample>) {
    let ways = 8;
    let policy = pick(rng, &ALL_POLICIES);
    let ops = vec_of(rng, 50..200, |r| random_policy_op(r, ways));
    if let Err(detail) = check_victim_from_allowed(policy, ways, &ops) {
        out.push(Counterexample {
            invariant: "victim-from-allowed-ways",
            config: format!("policy={policy} ways={ways}"),
            trace: fmt_policy_ops(&ops),
            detail,
            seed: Some(seed),
        });
    }

    // Shape required by the checker: fill-all prefix, fill/hit-only body,
    // one trailing invalidate.
    let policy = pick(rng, &DETERMINISTIC_POLICIES);
    let mut ops: Vec<PolicyOp> = (0..ways).map(PolicyOp::Fill).collect();
    ops.extend(vec_of(rng, 10..60, |r| {
        let way = r.random_range(0..ways);
        if r.random_range(0..2u32) == 0 {
            PolicyOp::Fill(way)
        } else {
            PolicyOp::Hit(way)
        }
    }));
    ops.push(PolicyOp::Inval(rng.random_range(0..ways)));
    if let Err(detail) = check_invalidated_preferred(policy, ways, &ops) {
        out.push(Counterexample {
            invariant: "invalidated-way-preferred",
            config: format!("policy={policy} ways={ways}"),
            trace: fmt_policy_ops(&ops),
            detail,
            seed: Some(seed),
        });
    }
}

/// `plru-within-lru`, exact half only: the 2-way PLRU/LRU equivalence is
/// geometry-wide, so the property tier stretches it to 2 sets and long
/// traces (the MRU-containment half needs curated alphabets and stays in
/// the exhaustive tier).
fn cache_properties(rng: &mut Rng, seed: u64, out: &mut Vec<Counterexample>) {
    const LINES: u64 = 8;
    let sets = 2;
    let ops = vec_of(rng, 40..160, |r| {
        // Even/odd lines spread across both sets.
        let line = r.random_range(0..LINES);
        match r.random_range(0..4u32) {
            0 | 1 => CacheOp::Access(line),
            2 => CacheOp::Inval(line),
            _ => CacheOp::Masked(1 << r.random_range(0..2u32), line),
        }
    });
    if let Err(detail) = check_plru_matches_lru(sets, 2, &ops) {
        out.push(Counterexample {
            invariant: "plru-within-lru",
            config: format!("mode=equiv sets={sets} ways=2"),
            trace: fmt_cache_ops(&ops),
            detail,
            seed: Some(seed),
        });
    }
}

/// `walk-stops-at-first-hit` on the wide tree with a realistic MEE cache
/// shape (8 sets × 8 ways) and all five op kinds.
fn engine_property(rng: &mut Rng, seed: u64, out: &mut Vec<Counterexample>) {
    let (sets, ways) = (8usize, 8usize);
    let pal = 5usize; // Geom::Wide palette size
    let ops = vec_of(rng, 16..48, |r| {
        let k = r.random_range(0..pal);
        match r.random_range(0..8u32) {
            0..=2 => EngineOp::Read(k),
            3 | 4 => EngineOp::Write(k),
            5 => EngineOp::FlushSet(r.random_range(0..sets)),
            6 => EngineOp::EvictFootprint(k),
            _ => EngineOp::FlushAll,
        }
    });
    if let Err(detail) = check_walk_program(Geom::Wide, "tree-plru", sets, ways, &ops) {
        out.push(Counterexample {
            invariant: "walk-stops-at-first-hit",
            config: format!("geom=wide policy=tree-plru sets={sets} ways={ways}"),
            trace: fmt_engine_ops(&ops),
            detail,
            seed: Some(seed),
        });
    }
}

/// `tree-consistency` on long random write/read histories with occasional
/// tampers.
fn tree_property(rng: &mut Rng, seed: u64, out: &mut Vec<Counterexample>) {
    let pal = PALETTE.len();
    let mut ops = vec_of(rng, 30..90, |r| {
        let k = r.random_range(0..pal);
        match r.random_range(0..16u32) {
            0..=7 => TreeOp::Write(k, r.next_u64() & 0xffff),
            8..=13 => TreeOp::Read(k),
            14 => TreeOp::TamperDigest(k),
            _ => TreeOp::TamperCounter(r.random_range(0..4usize)),
        }
    });
    // Always observe the final state.
    ops.extend((0..pal).map(TreeOp::Read));
    if let Err(detail) = check_tree_program(&ops) {
        out.push(Counterexample {
            invariant: "tree-consistency",
            config: "geom=tiny".into(),
            trace: fmt_tree_ops(&ops),
            detail,
            seed: Some(seed),
        });
    }
}

/// The three machine invariants on `MachineConfig::small`, random policy.
fn machine_property(rng: &mut Rng, seed: u64, out: &mut Vec<Counterexample>) {
    let policy = pick(
        rng,
        &[
            PolicyKind::TreePlru,
            PolicyKind::TrueLru,
            PolicyKind::Fifo,
            PolicyKind::Nru,
            PolicyKind::Srrip,
        ],
    );
    let pal = MACH_PALETTE.len();
    let ops = vec_of(rng, 8..24, |r| {
        let core = r.random_range(0..2usize);
        let k = r.random_range(0..pal);
        match r.random_range(0..5u32) {
            0 | 1 => MachOp::Read(core, k),
            2 | 3 => MachOp::Write(core, k),
            _ => MachOp::Clflush(core, k),
        }
    });
    if let Err((invariant, detail)) = check_machine_program(MachineSize::Small, policy, &ops) {
        out.push(Counterexample {
            invariant,
            config: format!(
                "machine=small mee={}",
                crate::machine_spec::policy_kind_name(policy)
            ),
            trace: fmt_mach_ops(&ops),
            detail,
            seed: Some(seed),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_tier_is_clean_and_deterministic() {
        let cfg = PropConfig::new(3);
        let a = run_property_tier(&cfg);
        assert!(a.is_empty(), "property tier found: {a:?}");
        let b = run_property_tier(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn replay_runs_exactly_one_case() {
        let cfg = PropConfig {
            replay: Some(stream_seed(2019, 1)),
            ..PropConfig::new(100)
        };
        // Clean model: replaying any case finds nothing, quickly.
        assert!(run_property_tier(&cfg).is_empty());
    }
}

//! Tree-level invariant: `tree-consistency`.
//!
//! The SGX-style counter tree must stay MAC/version-consistent under
//! arbitrary interleavings of writes and verified reads: every untampered
//! read returns the last value written (last-write-wins) and verifies at
//! every level. After a tamper at any level, verified reads of every line
//! whose walk crosses the flipped counter must fail with an integrity
//! violation, while lines outside the blast radius keep verifying.
//!
//! Programs run against a one-page tree (8 version blocks sharing a single
//! L0/L1/L2 spine), so a counter tamper at L0 or above poisons the whole
//! page while a versions-level tamper poisons only block 0 — both blast
//! radii are asserted exactly. A write *after* a tamper re-MACs the written
//! path and can legitimately "heal" parts of the damage, so from that point
//! the checker only requires the tree not to panic.

use mee_mem::PhysLayout;
use mee_tree::{IntegrityTree, TreeGeometry, TreeLevel};
use mee_types::{LineAddr, ModelError};

use crate::counterexample::Counterexample;
use crate::enumerate::for_each_program;
use crate::Budget;

/// Data-line offsets of the palette: both ends of block 0, the start of
/// block 1, and the last line of the page (block 7).
pub const PALETTE: [u64; 4] = [0, 7, 8, 63];

/// One operation against a bare [`IntegrityTree`]. Address operands are
/// palette indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeOp {
    /// Write `value` to palette address `k`.
    Write(usize, u64),
    /// Verified read of palette address `k`.
    Read(usize),
    /// Flip the stored digest of palette address `k`.
    TamperDigest(usize),
    /// Flip a counter at ladder level `0..4` (versions, L0, L1, L2), node 0.
    TamperCounter(usize),
}

/// Formats a tree trace (`w0.1 r2 td1 tc0`).
pub fn fmt_tree_ops(ops: &[TreeOp]) -> String {
    let tokens: Vec<String> = ops
        .iter()
        .map(|op| match op {
            TreeOp::Write(k, v) => format!("w{k}.{v}"),
            TreeOp::Read(k) => format!("r{k}"),
            TreeOp::TamperDigest(k) => format!("td{k}"),
            TreeOp::TamperCounter(l) => format!("tc{l}"),
        })
        .collect();
    tokens.join(" ")
}

/// Parses the output of [`fmt_tree_ops`].
///
/// # Errors
///
/// Returns a message naming the first malformed token.
pub fn parse_tree_ops(trace: &str) -> Result<Vec<TreeOp>, String> {
    trace
        .split_whitespace()
        .map(|tok| {
            let bad = || {
                format!("malformed tree op {tok:?} (expected w<k>.<v>, r<k>, td<k>, or tc<level>)")
            };
            if let Some(rest) = tok.strip_prefix("td") {
                return rest.parse().map(TreeOp::TamperDigest).map_err(|_| bad());
            }
            if let Some(rest) = tok.strip_prefix("tc") {
                let level: usize = rest.parse().map_err(|_| bad())?;
                if level > 3 {
                    return Err(format!("tamper level {level} out of range (0..=3)"));
                }
                return Ok(TreeOp::TamperCounter(level));
            }
            if let Some(rest) = tok.strip_prefix('w') {
                let (k, v) = rest.split_once('.').ok_or_else(bad)?;
                return Ok(TreeOp::Write(
                    k.parse().map_err(|_| bad())?,
                    v.parse().map_err(|_| bad())?,
                ));
            }
            if let Some(rest) = tok.strip_prefix('r') {
                return rest.parse().map(TreeOp::Read).map_err(|_| bad());
            }
            Err(bad())
        })
        .collect()
}

fn ladder_level(l: usize) -> TreeLevel {
    match l {
        0 => TreeLevel::Version,
        1 => TreeLevel::L0,
        2 => TreeLevel::L1,
        _ => TreeLevel::L2,
    }
}

fn build_tree() -> Result<(IntegrityTree, Vec<LineAddr>), String> {
    let layout = PhysLayout::new(4096, 8192).map_err(|e| e.to_string())?;
    let geo =
        TreeGeometry::new(layout.prm_data(), layout.prm_tree()).map_err(|e| e.to_string())?;
    let base = geo.data_region().base().line();
    let pal = PALETTE
        .iter()
        .map(|&k| LineAddr::new(base.raw() + k))
        .collect();
    Ok((IntegrityTree::new(geo, 0x2019), pal))
}

/// Runs `ops` on a fresh one-page tree and checks last-write-wins plus the
/// exact tamper blast radius described in the module docs.
///
/// # Errors
///
/// Returns the violation detail, or a message for out-of-range operands.
pub fn check_tree_program(ops: &[TreeOp]) -> Result<(), String> {
    let (mut tree, pal) = build_tree()?;
    let mut shadow = [0u64; PALETTE.len()];
    // Both tamper primitives XOR a single bit, so two flips of the same spot
    // cancel: track parities, not sticky flags.
    let mut digest_flips = [0u32; PALETTE.len()];
    let mut counter_flips = [0u32; 4];
    // A write after a tamper re-MACs its path; blast-radius assertions are
    // unsound from then on.
    let mut muddied = false;
    let index_ok = |i: usize, k: usize| -> Result<(), String> {
        if k < PALETTE.len() {
            Ok(())
        } else {
            Err(format!("step {i}: palette index {k} out of range"))
        }
    };
    fn is_affected(digest_flips: &[u32], counter_flips: &[u32; 4], k: usize) -> bool {
        digest_flips[k] % 2 == 1
            // Versions node 0 covers data block 0 only.
            || (counter_flips[0] % 2 == 1 && PALETTE[k] < 8)
            // The single L0/L1/L2 spine covers the whole page.
            || counter_flips[1..].iter().any(|&f| f % 2 == 1)
    }
    for (i, op) in ops.iter().enumerate() {
        let tampered =
            digest_flips.iter().chain(&counter_flips).any(|&f| f % 2 == 1);
        match *op {
            TreeOp::Write(k, v) => {
                index_ok(i, k)?;
                tree.write(pal[k], v)
                    .map_err(|e| format!("step {i}: write failed: {e}"))?;
                shadow[k] = v;
                if tampered {
                    muddied = true;
                }
            }
            TreeOp::Read(k) => {
                index_ok(i, k)?;
                let result = tree.read_verified(pal[k]);
                if muddied {
                    continue;
                }
                if is_affected(&digest_flips, &counter_flips, k) {
                    match result {
                        Err(ModelError::IntegrityViolation { .. }) => {}
                        Err(e) => {
                            return Err(format!(
                                "step {i}: tampered read of palette {k} failed with {e}, \
                                 expected an integrity violation"
                            ));
                        }
                        Ok(v) => {
                            return Err(format!(
                                "step {i}: read of palette {k} returned {v:#x} despite a tamper \
                                 on its walk (forgery accepted)"
                            ));
                        }
                    }
                } else {
                    match result {
                        Ok(v) if v == shadow[k] => {}
                        Ok(v) => {
                            return Err(format!(
                                "step {i}: read of palette {k} returned {v:#x}, expected {:#x} \
                                 (last-write-wins broken)",
                                shadow[k]
                            ));
                        }
                        Err(e) => {
                            return Err(format!(
                                "step {i}: clean read of palette {k} failed verification: {e}"
                            ));
                        }
                    }
                }
            }
            TreeOp::TamperDigest(k) => {
                index_ok(i, k)?;
                tree.tamper_digest(pal[k])
                    .map_err(|e| format!("step {i}: tamper_digest failed: {e}"))?;
                digest_flips[k] += 1;
            }
            TreeOp::TamperCounter(l) => {
                tree.tamper_counter(ladder_level(l), 0);
                counter_flips[l] += 1;
            }
        }
    }
    Ok(())
}

/// Exhaustively checks `tree-consistency`.
pub fn enumerate_tree_invariant(budget: &Budget, out: &mut Vec<Counterexample>) {
    let pal = PALETTE.len();
    // Symbols: writes of two distinct values, reads, digest tampers, counter
    // tampers at each level.
    let symbols = 2 * pal + pal + pal + 4;
    let decode = |s: usize| -> TreeOp {
        if s < 2 * pal {
            TreeOp::Write(s % pal, 1 + (s / pal) as u64)
        } else if s < 3 * pal {
            TreeOp::Read(s - 2 * pal)
        } else if s < 4 * pal {
            TreeOp::TamperDigest(s - 3 * pal)
        } else {
            TreeOp::TamperCounter(s - 4 * pal)
        }
    };
    let mut go = true;
    for_each_program(symbols, budget.tree_len, |prog| {
        let mut ops: Vec<TreeOp> = prog.iter().map(|&s| decode(s)).collect();
        // Cap the cost of each case by ending with a full palette sweep —
        // it also guarantees every program *observes* its final state.
        ops.extend((0..pal).map(TreeOp::Read));
        if let Err(detail) = check_tree_program(&ops) {
            out.push(Counterexample {
                invariant: "tree-consistency",
                config: "geom=tiny".into(),
                trace: fmt_tree_ops(&ops),
                detail,
                seed: None,
            });
            go = out.len() < budget.max_counterexamples;
        }
        go
    });
}

/// Replays a `tree-consistency` recipe.
///
/// # Errors
///
/// Returns a message for malformed traces.
pub fn replay_tree_recipe(config: &str, trace: &str) -> Result<Option<Counterexample>, String> {
    let ops = parse_tree_ops(trace)?;
    Ok(check_tree_program(&ops).err().map(|detail| Counterexample {
        invariant: "tree-consistency",
        config: config.to_owned(),
        trace: trace.to_owned(),
        detail,
        seed: None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_ops_round_trip() {
        let ops = vec![
            TreeOp::Write(0, 2),
            TreeOp::Read(3),
            TreeOp::TamperDigest(1),
            TreeOp::TamperCounter(2),
        ];
        let s = fmt_tree_ops(&ops);
        assert_eq!(s, "w0.2 r3 td1 tc2");
        assert_eq!(parse_tree_ops(&s).unwrap(), ops);
        assert!(parse_tree_ops("tc4").is_err());
    }

    #[test]
    fn last_write_wins_and_verifies() {
        let ops = parse_tree_ops("w0.1 w0.2 r0 w3.1 r3 r1").unwrap();
        check_tree_program(&ops).unwrap();
    }

    #[test]
    fn version_tamper_blast_radius_is_block_zero() {
        // tc0 poisons lines 0 and 7 (block 0) but not 8 or 63.
        let ops = parse_tree_ops("w0.1 w2.1 tc0 r0 r1 r2 r3").unwrap();
        check_tree_program(&ops).unwrap();
    }

    #[test]
    fn upper_level_tamper_poisons_the_whole_page() {
        for level in 1..=3 {
            let trace = format!("w0.1 tc{level} r0 r1 r2 r3");
            let ops = parse_tree_ops(&trace).unwrap();
            check_tree_program(&ops).unwrap_or_else(|e| panic!("level {level}: {e}"));
        }
    }

    #[test]
    fn digest_tamper_hits_one_line_only() {
        let ops = parse_tree_ops("w1.2 td1 r1 r0 r2 r3").unwrap();
        check_tree_program(&ops).unwrap();
    }

    #[test]
    fn double_tampers_cancel() {
        // Both tamper primitives are XOR flips: applying one twice restores
        // the tree, and the checker's parity tracking must agree.
        for trace in ["td0 td0 r0 r1 r2 r3", "tc1 tc1 r0 r3", "w0.1 tc0 tc0 r0"] {
            let ops = parse_tree_ops(trace).unwrap();
            check_tree_program(&ops).unwrap_or_else(|e| panic!("{trace:?}: {e}"));
        }
    }
}
